//! Offline shim for the `serde` facade.
//!
//! Exposes `Serialize`/`Deserialize` as marker traits plus the no-op
//! derive macros from the sibling `serde_derive` shim (trait and macro
//! share a name in different namespaces, exactly like real serde).

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
