//! Offline shim for `serde_derive`: the derives expand to nothing.
//!
//! Nothing in the workspace serializes yet, so `#[derive(Serialize)]`
//! and `#[derive(Deserialize)]` only need to be *accepted*, not to
//! generate impls. See `vendor/README.md` for the upgrade path.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
