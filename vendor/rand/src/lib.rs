//! Offline shim for the `rand` crate.
//!
//! Implements the subset of the rand 0.10 API used by this workspace:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] extension methods `random`, `random_range`, and
//! `random_bool`. The generator is xoshiro256++ seeded via splitmix64 —
//! deterministic given a seed, which is the only property the workspace
//! relies on (all determinism contracts are against this shim, not
//! against upstream `rand` value streams).

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Rngs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Creates an rng deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an rng's raw bits.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Unbiased uniform draw in `[0, width)` via threshold rejection.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    // Reject the low `u64::MAX % width + 1` values' wrap-around zone.
    let threshold = width.wrapping_neg() % width;
    loop {
        let x = rng.next_u64();
        if x >= threshold {
            return x % width;
        }
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let width = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = hi as i128 - lo as i128 + 1;
                if span > u64::MAX as i128 {
                    // Full-width range: every bit pattern is valid.
                    return u64::sample(rng) as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i64, u64, i32, u32, usize, isize, u8, i8, u16, i16);

/// Extension methods over any [`RngCore`] (the rand 0.10 `Rng`-successor
/// surface this workspace uses).
pub trait RngExt: RngCore {
    /// Draws a value of type `T` (uniform over `T`'s standard domain;
    /// `[0, 1)` for floats).
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Draws a standard-normal variate via Box-Muller (two uniform draws
    /// per sample; the paired cosine/sine variate is discarded so the
    /// stream stays position-independent).
    #[inline]
    fn random_standard_normal(&mut self) -> f64
    where
        Self: Sized,
    {
        // u1 in (0, 1] so ln(u1) is finite.
        let u1 = ((self.next_u64() >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64);
        let u2 = f64::sample(self);
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Draws from `N(mean, std_dev²)`.
    ///
    /// # Panics
    /// Panics if `std_dev` is negative.
    #[inline]
    fn random_normal(&mut self, mean: f64, std_dev: f64) -> f64
    where
        Self: Sized,
    {
        assert!(std_dev >= 0.0, "negative standard deviation");
        mean + std_dev * self.random_standard_normal()
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Slice extensions driven by an rng (the rand 0.10 `IndexedMutRandom`
/// surface this workspace uses).
pub trait SliceRandomExt {
    /// Shuffles the slice in place (Fisher-Yates). Deterministic given
    /// the rng state.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandomExt for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

/// Concrete rng implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic rng (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// The full generator state, for checkpointing mid-stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at a previously captured [`state`].
        ///
        /// [`state`]: SmallRng::state
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(
            SmallRng::seed_from_u64(7).random::<u64>(),
            c.random::<u64>()
        );
    }

    #[test]
    fn state_roundtrip_resumes_mid_stream() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..17 {
            rng.random::<u64>();
        }
        let snapshot = rng.state();
        let tail: Vec<u64> = (0..32).map(|_| rng.random::<u64>()).collect();
        let mut resumed = SmallRng::from_state(snapshot);
        let resumed_tail: Vec<u64> = (0..32).map(|_| resumed.random::<u64>()).collect();
        assert_eq!(tail, resumed_tail);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.random_range(-5..5i64);
            assert!((-5..5).contains(&v));
            let w = rng.random_range(0..=3usize);
            assert!(w <= 3);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.random_normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
        for x in &xs {
            assert!(x.is_finite());
        }
    }

    #[test]
    fn normal_is_deterministic_and_zero_std_is_constant() {
        let a: Vec<f64> = {
            let mut rng = SmallRng::seed_from_u64(11);
            (0..50).map(|_| rng.random_standard_normal()).collect()
        };
        let b: Vec<f64> = {
            let mut rng = SmallRng::seed_from_u64(11);
            (0..50).map(|_| rng.random_standard_normal()).collect()
        };
        assert_eq!(a, b);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(rng.random_normal(7.5, 0.0), 7.5);
    }

    #[test]
    fn shuffle_permutes_deterministically() {
        use super::SliceRandomExt;
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        a.shuffle(&mut SmallRng::seed_from_u64(9));
        b.shuffle(&mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..100).collect::<Vec<_>>(),
            "must be a permutation"
        );
        assert_ne!(a, sorted, "100 elements should not shuffle to identity");
        let mut c: Vec<u32> = (0..100).collect();
        c.shuffle(&mut SmallRng::seed_from_u64(10));
        assert_ne!(a, c, "different seeds should differ");
        // Degenerate slices are fine.
        let mut empty: [u32; 0] = [];
        empty.shuffle(&mut SmallRng::seed_from_u64(1));
        let mut one = [42u32];
        one.shuffle(&mut SmallRng::seed_from_u64(1));
        assert_eq!(one, [42]);
    }
}
