//! Offline shim for `parking_lot`: the same non-poisoning lock API,
//! implemented over `std::sync` (a poisoned std lock is recovered into
//! its inner value, matching parking_lot's no-poisoning semantics).

use std::sync::PoisonError;

/// A mutex whose `lock` never fails (parking_lot semantics).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the lock only if it is free right now (parking_lot's
    /// `try_lock`: `Option`, not `Result`).
    pub fn try_lock(&self) -> Option<std::sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates an rwlock holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contends_without_blocking() {
        let m = Mutex::new(5);
        {
            let held = m.lock();
            assert!(m.try_lock().is_none(), "held lock must not be acquired");
            assert_eq!(*held, 5);
        }
        assert_eq!(*m.try_lock().expect("free lock"), 5);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
