//! Planner benchmark: DP (DPccp) vs the submask-scan reference DP vs
//! beam-k ∈ {5, 10, 20} over the 113-query JOB-like workload, in
//! expert-model cost *and* executed latency.
//!
//! Planning runs on the [`WorkerPool`] (`BALSA_PLAN_THREADS`, default =
//! available parallelism): each planner's queries are planned in
//! parallel, then executed serially against its own `ExecutionEnv`
//! (PostgresSim). Planning is charged to the environment's clock as the
//! **parallel makespan** via `ExecutionEnv::charge_planning_parallel`,
//! so the reported `sim_clock_secs` totals include search wall-clock
//! plus execution — the same accounting the learning loop uses. The
//! report also records the measured parallel speedup
//! (`plan_secs_total / plan_wall_secs`; suppressed as `null` on a
//! serial pool *or* when nothing actually fanned out —
//! `parallel_items_total == 0` — where it is pure noise), the mean
//! persistent-pool dispatch overhead (`pool_dispatch_secs`; null on a
//! serial pool), the threads actually used,
//! the DP enumeration breakdown (csg–cmp pairs, Pareto states,
//! candidate cost calls, enumerate vs cost seconds), and the beam
//! hot-path breakdown (`score_secs_total` / `dedup_secs_total` —
//! batched scoring vs signature dedup + state assembly). Results land
//! in `BENCH_planner.json`
//! (JSON written by hand — the serde shim does not serialize; see
//! vendor/README.md).
//!
//! **Resource governance:** when `BALSA_PLAN_BUDGET`
//! (`work=<u64>,memo=<usize>`) is set, every planner runs under that
//! [`PlanBudget`] and the report lands in `BENCH_planner_budget.json`
//! instead, so a budgeted run never overwrites the clean baseline.
//! Each planner row always carries `degraded_levels_total` (summed
//! fallback depth across queries), `budget_exhausted_queries` (queries
//! whose search hit a budget boundary), and `verify_secs_total` (time
//! in the independent plan verifier; `null` when the verifier is off —
//! release builds without `BALSA_VERIFY_PLANS=1`). The top-level
//! `plan_budget` field echoes the armed budget, or `null`.
//!
//! When the pool is parallel, an extra `dp-par-bushy/expert` row runs
//! the DP with **intra-query** parallelism (outer query loop serial,
//! each query's heavy DP levels fanned across the pool) — bit-identical
//! plans to `dp-bushy/expert`, so the two rows' `plan_secs_total` ratio
//! is a direct same-run measure of the intra-query win; that row's
//! `plan_parallel_speedup` reports it. Phase totals a planner never
//! enters (the DP's `score_secs`, the beam's `enumerate_secs`, the
//! submask DP's unmeasurable split) are emitted as `null`, not a
//! misleading measured `0.000000`.
//!
//! Run with: `cargo run --release -p balsa-search --example bench_planner`

use balsa_card::HistogramEstimator;
use balsa_cost::{CostScorer, ExpertCostModel, OpWeights};
use balsa_engine::ExecutionEnv;
use balsa_query::workloads::job_workload;
use balsa_search::{
    BeamPlanner, DpPlanner, PlanBudget, Planner, SearchMode, SubmaskDpPlanner, WorkerPool,
};
use balsa_storage::{mini_imdb, DataGenConfig};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

struct PlannerReport {
    name: String,
    plan_secs: Vec<f64>,
    costs: Vec<f64>,
    exec_secs: Vec<f64>,
    /// Measured wall-clock of the parallel planning phase.
    plan_wall_secs: f64,
    /// Simulated clock total: planning makespan + execution.
    sim_clock_secs: f64,
    /// Summed search stats across queries.
    pairs: usize,
    states: usize,
    candidates: usize,
    cost_calls: usize,
    enumerate_secs: f64,
    cost_secs: f64,
    score_secs: f64,
    dedup_secs: f64,
    /// Work items that actually fanned out on a pool — queries when the
    /// outer loop is parallel, plus the planners' own intra-query
    /// fan-outs (`SearchStats::parallel_items`). When this is 0 the
    /// row's speedup field is suppressed: nothing ran in parallel, so a
    /// "speedup" would be pure measurement noise.
    parallel_items: usize,
    /// Threads reported for this row (the outer pool's width, or the
    /// intra-query pool's for the `dp-par` row).
    threads: usize,
    /// Cross-row speedup override (serial-DP total / this row's total)
    /// for rows whose outer pool is serial but planning is internally
    /// parallel.
    speedup_override: Option<f64>,
    /// Summed fallback-chain depth across queries (0 = no query
    /// degraded; each degraded query adds its chain depth).
    degraded_levels: usize,
    /// Queries whose search hit a `PlanBudget` boundary check.
    budget_exhausted: usize,
    /// Time spent in the independent plan verifier (0.0 when off).
    verify_secs: f64,
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".into()
    }
}

/// Phase totals: a planner that never enters a phase reports exactly
/// `0.0` (the DP never scores or dedups, the beam never enumerates
/// csg–cmp pairs, the submask DP's interleaved split is unmeasurable).
/// Emit those as `null` so consumers can tell "structurally absent
/// phase" from "fast phase" — a measured phase is never exactly zero.
fn json_phase(x: f64) -> String {
    if x == 0.0 {
        "null".into()
    } else {
        json_f(x)
    }
}

/// Plans the workload on the pool — each worker thread builds its own
/// planner via `make`, so per-planner scratch amortizes across that
/// worker's queries — then executes every chosen plan serially on a
/// fresh environment, charging the planning phase's parallel makespan
/// to the environment's clock.
fn run_planner<'a>(
    db: &Arc<balsa_storage::Database>,
    w: &balsa_query::Workload,
    pool: &WorkerPool,
    make: &(dyn Fn() -> Box<dyn Planner + 'a> + Sync),
) -> PlannerReport {
    let env = ExecutionEnv::postgres_sim(db.clone());
    let t_plan = Instant::now();
    let planned = pool.map_init(&w.queries, make, |planner, _, q| planner.plan(q));
    let plan_wall_secs = t_plan.elapsed().as_secs_f64();

    let mut rep = PlannerReport {
        name: make().name(),
        plan_secs: Vec::new(),
        costs: Vec::new(),
        exec_secs: Vec::new(),
        plan_wall_secs,
        sim_clock_secs: 0.0,
        pairs: 0,
        states: 0,
        candidates: 0,
        cost_calls: 0,
        enumerate_secs: 0.0,
        cost_secs: 0.0,
        score_secs: 0.0,
        dedup_secs: 0.0,
        parallel_items: if pool.threads().min(w.queries.len()) > 1 {
            w.queries.len()
        } else {
            0
        },
        threads: pool.threads(),
        speedup_override: None,
        degraded_levels: 0,
        budget_exhausted: 0,
        verify_secs: 0.0,
    };
    let plan_times: Vec<f64> = planned.iter().map(|p| p.planning_secs).collect();
    env.charge_planning_parallel(&plan_times, pool.threads());
    for (q, out) in w.queries.iter().zip(&planned) {
        let exec = env
            .execute(q, &out.plan, None)
            .expect("planner output must be executable");
        rep.plan_secs.push(out.planning_secs);
        rep.costs.push(out.cost);
        rep.exec_secs.push(exec.latency_secs);
        rep.pairs += out.stats.pairs;
        rep.states += out.stats.states;
        rep.candidates += out.stats.candidates;
        rep.cost_calls += out.stats.cost_calls;
        rep.enumerate_secs += out.stats.enumerate_secs;
        rep.cost_secs += out.stats.cost_secs;
        rep.score_secs += out.stats.score_secs;
        rep.dedup_secs += out.stats.dedup_secs;
        rep.parallel_items += out.stats.parallel_items;
        rep.degraded_levels += out.stats.degraded_levels;
        rep.budget_exhausted += usize::from(out.stats.budget_exhausted);
        rep.verify_secs += out.stats.verify_secs;
    }
    rep.sim_clock_secs = env.elapsed_secs();
    eprintln!(
        "{}: planning {:.2}s over {} threads (wall {:.2}s), executed {:.2}s, sim clock {:.2}s over {} queries",
        rep.name,
        rep.plan_secs.iter().sum::<f64>(),
        pool.threads(),
        rep.plan_wall_secs,
        rep.exec_secs.iter().sum::<f64>(),
        rep.sim_clock_secs,
        w.queries.len()
    );
    rep
}

fn main() {
    let t_total = Instant::now();
    let db = Arc::new(mini_imdb(DataGenConfig::default()));
    let w = job_workload(db.catalog(), 7);
    assert_eq!(
        w.queries.len(),
        113,
        "JOB-like workload must have 113 queries"
    );
    let est = HistogramEstimator::new(&db);
    let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
    let scorer = CostScorer::new(&model, &est);
    let pool = WorkerPool::from_env();
    // Resource governance: an armed `BALSA_PLAN_BUDGET` puts every
    // planner under the budget (fallback chain active) and routes the
    // report to a separate artifact so the clean baseline survives.
    let budget_env = PlanBudget::from_env();
    let budget = budget_env.unwrap_or(PlanBudget::UNLIMITED);
    if let Some(b) = budget_env {
        eprintln!(
            "bench_planner: BALSA_PLAN_BUDGET armed (work={}, memo={})",
            b.work, b.memo
        );
    }

    // Dispatch-overhead probe: mean wall time of one trivial pool
    // dispatch — persistent workers woken, a no-op task run, the job
    // joined. This is the per-level cost the DP's fan-out cutoff
    // exists to amortize (it used to be a `thread::spawn` per worker,
    // tens of microseconds each). Null on a serial pool, which never
    // dispatches.
    let pool_dispatch_secs = (pool.threads() > 1).then(|| {
        let items = vec![0u8; 4 * pool.threads()];
        let _ = pool.map(&items, |i, _| i); // warm: spawn the workers
        let reps = 4096u32;
        let t = Instant::now();
        for _ in 0..reps {
            let _ = pool.map(&items, |i, _| i);
        }
        t.elapsed().as_secs_f64() / f64::from(reps)
    });

    let widths = [5usize, 10, 20];
    let mut reports: Vec<PlannerReport> = Vec::new();

    // DP first: its costs are the per-query baselines.
    reports.push(run_planner(&db, &w, &pool, &|| {
        Box::new(DpPlanner::new(&db, &model, &est, SearchMode::Bushy).with_budget(budget))
    }));
    let dp_costs = reports[0].costs.clone();

    // Intra-query parallel DP, run adjacent to the baseline DP so the
    // same-run CI ratio gate compares like machine conditions: the
    // outer query loop is serial, each query's heavy DP levels fan out
    // across the env pool. Plans are bit-identical to `dp-bushy`, so
    // the rows' `plan_secs_total` ratio is a pure speed measure. The
    // row is appended after the classic rows to keep their order (and
    // every anchor-based reader) stable.
    let dp_par = (pool.threads() > 1).then(|| {
        let outer = WorkerPool::new(1);
        let mut rep = run_planner(&db, &w, &outer, &|| {
            Box::new(
                DpPlanner::new(&db, &model, &est, SearchMode::Bushy)
                    .with_budget(budget)
                    .with_pool(pool.clone()),
            )
        });
        rep.name = rep.name.replacen("dp-", "dp-par-", 1);
        rep.threads = pool.threads();
        rep
    });

    // The retired submask-scan DP rides along as the regression
    // yardstick: same plans, 3^n enumeration.
    reports.push(run_planner(&db, &w, &pool, &|| {
        Box::new(SubmaskDpPlanner::new(&db, &model, &est, SearchMode::Bushy).with_budget(budget))
    }));

    for &k in &widths {
        reports.push(run_planner(&db, &w, &pool, &|| {
            Box::new(BeamPlanner::new(&db, &scorer, SearchMode::Bushy, k).with_budget(budget))
        }));
    }

    if let Some(mut rep) = dp_par {
        // The intra-query speedup: serial-DP planning total over the
        // intra-parallel total, same machine, same run. This is the
        // non-null `plan_parallel_speedup` the CI gate checks. If no
        // level actually crossed the fan-out cutoff the ratio is two
        // serial runs racing each other, not a speedup — suppress it
        // under the same `parallel_items > 0` rule as the plain field.
        let dp_total: f64 = reports[0].plan_secs.iter().sum();
        let par_total: f64 = rep.plan_secs.iter().sum();
        rep.speedup_override = (rep.parallel_items > 0).then(|| dp_total / par_total.max(1e-12));
        reports.push(rep);
    }

    // Hand-rolled JSON.
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"planner\",\n");
    let _ = writeln!(out, "  \"workload\": \"job_like\",");
    let _ = writeln!(out, "  \"num_queries\": {},", w.queries.len());
    let _ = writeln!(out, "  \"planning_threads\": {},", pool.threads());
    let _ = writeln!(
        out,
        "  \"plan_budget\": {},",
        match budget_env {
            Some(b) => format!("{{\"work\": {}, \"memo\": {}}}", b.work, b.memo),
            None => "null".into(),
        }
    );
    let _ = writeln!(
        out,
        "  \"pool_dispatch_secs\": {},",
        match pool_dispatch_secs {
            Some(s) => format!("{s:.9}"),
            None => "null".into(),
        }
    );
    let _ = writeln!(
        out,
        "  \"wall_secs_total\": {},",
        json_f(t_total.elapsed().as_secs_f64())
    );
    out.push_str("  \"planners\": [\n");
    for (pi, rep) in reports.iter().enumerate() {
        let mut secs = rep.plan_secs.clone();
        secs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut execs = rep.exec_secs.clone();
        execs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut ratios: Vec<f64> = rep
            .costs
            .iter()
            .zip(&dp_costs)
            .map(|(c, d)| c / d)
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let plan_total: f64 = rep.plan_secs.iter().sum();
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", rep.name);
        let _ = writeln!(out, "      \"plan_secs_total\": {},", json_f(plan_total));
        let _ = writeln!(
            out,
            "      \"plan_secs_median\": {},",
            json_f(median(&secs))
        );
        let _ = writeln!(
            out,
            "      \"plan_secs_max\": {},",
            json_f(secs.last().copied().unwrap_or(f64::NAN))
        );
        let _ = writeln!(
            out,
            "      \"plan_wall_secs\": {},",
            json_f(rep.plan_wall_secs)
        );
        // With one (outer) thread, or a parallel pool where nothing
        // actually fanned out (`parallel_items == 0`), the "speedup" is
        // pure measurement noise (~0.99x); `parallel_speedup`
        // suppresses both. Rows whose parallelism is intra-query
        // instead carry a cross-row override (serial-DP total / own
        // total), gated on the same fan-out condition.
        let speedup = match rep.speedup_override.or_else(|| {
            balsa_search::parallel_speedup(
                plan_total,
                rep.plan_wall_secs,
                rep.threads,
                rep.parallel_items,
            )
        }) {
            Some(s) => json_f(s),
            None => "null".into(),
        };
        let _ = writeln!(out, "      \"plan_parallel_speedup\": {speedup},");
        let _ = writeln!(out, "      \"planning_threads\": {},", rep.threads);
        let _ = writeln!(
            out,
            "      \"parallel_items_total\": {},",
            rep.parallel_items
        );
        let _ = writeln!(out, "      \"pairs_total\": {},", rep.pairs);
        let _ = writeln!(out, "      \"states_total\": {},", rep.states);
        let _ = writeln!(out, "      \"candidates_total\": {},", rep.candidates);
        let _ = writeln!(out, "      \"cost_calls_total\": {},", rep.cost_calls);
        let _ = writeln!(
            out,
            "      \"enumerate_secs_total\": {},",
            json_phase(rep.enumerate_secs)
        );
        let _ = writeln!(
            out,
            "      \"cost_secs_total\": {},",
            json_phase(rep.cost_secs)
        );
        let _ = writeln!(
            out,
            "      \"score_secs_total\": {},",
            json_phase(rep.score_secs)
        );
        let _ = writeln!(
            out,
            "      \"dedup_secs_total\": {},",
            json_phase(rep.dedup_secs)
        );
        let _ = writeln!(
            out,
            "      \"degraded_levels_total\": {},",
            rep.degraded_levels
        );
        let _ = writeln!(
            out,
            "      \"budget_exhausted_queries\": {},",
            rep.budget_exhausted
        );
        let _ = writeln!(
            out,
            "      \"verify_secs_total\": {},",
            json_phase(rep.verify_secs)
        );
        let _ = writeln!(
            out,
            "      \"exec_secs_total\": {},",
            json_f(rep.exec_secs.iter().sum())
        );
        let _ = writeln!(
            out,
            "      \"exec_secs_median\": {},",
            json_f(median(&execs))
        );
        let _ = writeln!(
            out,
            "      \"sim_clock_secs\": {},",
            json_f(rep.sim_clock_secs)
        );
        let _ = writeln!(
            out,
            "      \"cost_ratio_vs_dp_median\": {},",
            json_f(median(&ratios))
        );
        let _ = writeln!(
            out,
            "      \"cost_ratio_vs_dp_p90\": {},",
            json_f(ratios[(ratios.len() as f64 * 0.9) as usize % ratios.len()])
        );
        let _ = writeln!(
            out,
            "      \"cost_ratio_vs_dp_max\": {}",
            json_f(ratios.last().copied().unwrap_or(f64::NAN))
        );
        let _ = writeln!(
            out,
            "    }}{}",
            if pi + 1 < reports.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");

    let artifact = if budget_env.is_some() {
        "BENCH_planner_budget.json"
    } else {
        "BENCH_planner.json"
    };
    std::fs::write(artifact, &out).unwrap_or_else(|e| panic!("write {artifact}: {e}"));
    println!("{out}");
    eprintln!(
        "wrote {artifact} in {:.1}s",
        t_total.elapsed().as_secs_f64()
    );
}
