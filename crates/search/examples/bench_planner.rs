//! Planner benchmark: DP vs beam-k ∈ {5, 10, 20} over the 113-query
//! JOB-like workload, in expert-model cost *and* executed latency.
//!
//! Each planner runs against its own `ExecutionEnv` (PostgresSim):
//! planning wall-clock time is charged through
//! `ExecutionEnv::charge_planning` and every chosen plan is executed, so
//! the reported `sim_clock_secs` totals include **search effort plus
//! execution** — the same accounting the learning loop uses — not just
//! plan quality. Per-planner aggregates report total/median planning
//! time, cost ratios versus the DP optimum, and executed-latency
//! statistics. Results land in `BENCH_planner.json` (JSON written by
//! hand — the serde shim does not serialize; see vendor/README.md).
//!
//! Run with: `cargo run --release -p balsa-search --example bench_planner`

use balsa_card::HistogramEstimator;
use balsa_cost::{CostScorer, ExpertCostModel, OpWeights};
use balsa_engine::ExecutionEnv;
use balsa_query::workloads::job_workload;
use balsa_search::{BeamPlanner, DpPlanner, Planner, SearchMode};
use balsa_storage::{mini_imdb, DataGenConfig};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

struct PlannerReport {
    name: String,
    plan_secs: Vec<f64>,
    costs: Vec<f64>,
    exec_secs: Vec<f64>,
    /// Simulated clock total: planning + execution.
    sim_clock_secs: f64,
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".into()
    }
}

/// Runs one planner over the workload on a fresh environment, charging
/// planning time to the environment's clock and executing every plan.
fn run_planner(
    db: &Arc<balsa_storage::Database>,
    w: &balsa_query::Workload,
    planner: &dyn Planner,
) -> PlannerReport {
    let env = ExecutionEnv::postgres_sim(db.clone());
    let mut rep = PlannerReport {
        name: planner.name(),
        plan_secs: Vec::new(),
        costs: Vec::new(),
        exec_secs: Vec::new(),
        sim_clock_secs: 0.0,
    };
    for q in &w.queries {
        let out = planner.plan(q);
        env.charge_planning(out.planning_secs);
        let exec = env
            .execute(q, &out.plan, None)
            .expect("planner output must be executable");
        rep.plan_secs.push(out.planning_secs);
        rep.costs.push(out.cost);
        rep.exec_secs.push(exec.latency_secs);
    }
    rep.sim_clock_secs = env.elapsed_secs();
    eprintln!(
        "{}: planning {:.2}s, executed {:.2}s, sim clock {:.2}s over {} queries",
        rep.name,
        rep.plan_secs.iter().sum::<f64>(),
        rep.exec_secs.iter().sum::<f64>(),
        rep.sim_clock_secs,
        w.queries.len()
    );
    rep
}

fn main() {
    let t_total = Instant::now();
    let db = Arc::new(mini_imdb(DataGenConfig::default()));
    let w = job_workload(db.catalog(), 7);
    assert_eq!(
        w.queries.len(),
        113,
        "JOB-like workload must have 113 queries"
    );
    let est = HistogramEstimator::new(&db);
    let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
    let scorer = CostScorer::new(&model, &est);

    let widths = [5usize, 10, 20];
    let mut reports: Vec<PlannerReport> = Vec::new();

    // DP first: its costs are the per-query baselines.
    let dp_planner = DpPlanner::new(&db, &model, &est, SearchMode::Bushy);
    reports.push(run_planner(&db, &w, &dp_planner));
    let dp_costs = reports[0].costs.clone();

    for &k in &widths {
        let planner = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, k);
        reports.push(run_planner(&db, &w, &planner));
    }

    // Hand-rolled JSON.
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"planner\",\n");
    let _ = writeln!(out, "  \"workload\": \"job_like\",");
    let _ = writeln!(out, "  \"num_queries\": {},", w.queries.len());
    let _ = writeln!(
        out,
        "  \"wall_secs_total\": {},",
        json_f(t_total.elapsed().as_secs_f64())
    );
    out.push_str("  \"planners\": [\n");
    for (pi, rep) in reports.iter().enumerate() {
        let mut secs = rep.plan_secs.clone();
        secs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut execs = rep.exec_secs.clone();
        execs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut ratios: Vec<f64> = rep
            .costs
            .iter()
            .zip(&dp_costs)
            .map(|(c, d)| c / d)
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", rep.name);
        let _ = writeln!(
            out,
            "      \"plan_secs_total\": {},",
            json_f(rep.plan_secs.iter().sum())
        );
        let _ = writeln!(
            out,
            "      \"plan_secs_median\": {},",
            json_f(median(&secs))
        );
        let _ = writeln!(
            out,
            "      \"plan_secs_max\": {},",
            json_f(secs.last().copied().unwrap_or(f64::NAN))
        );
        let _ = writeln!(
            out,
            "      \"exec_secs_total\": {},",
            json_f(rep.exec_secs.iter().sum())
        );
        let _ = writeln!(
            out,
            "      \"exec_secs_median\": {},",
            json_f(median(&execs))
        );
        let _ = writeln!(
            out,
            "      \"sim_clock_secs\": {},",
            json_f(rep.sim_clock_secs)
        );
        let _ = writeln!(
            out,
            "      \"cost_ratio_vs_dp_median\": {},",
            json_f(median(&ratios))
        );
        let _ = writeln!(
            out,
            "      \"cost_ratio_vs_dp_p90\": {},",
            json_f(ratios[(ratios.len() as f64 * 0.9) as usize % ratios.len()])
        );
        let _ = writeln!(
            out,
            "      \"cost_ratio_vs_dp_max\": {}",
            json_f(ratios.last().copied().unwrap_or(f64::NAN))
        );
        let _ = writeln!(
            out,
            "    }}{}",
            if pi + 1 < reports.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");

    std::fs::write("BENCH_planner.json", &out).expect("write BENCH_planner.json");
    println!("{out}");
    eprintln!(
        "wrote BENCH_planner.json in {:.1}s",
        t_total.elapsed().as_secs_f64()
    );
}
