//! End-to-end integration of the planning spine:
//! workload generation → cardinalities → cost models → DP / beam / random
//! search → simulated execution.
//!
//! Covers the PR's acceptance criteria:
//! * DP with the expert cost model on true cardinalities equals
//!   brute-force enumeration on every ≤5-table workload query;
//! * beam-search cost stays within a bounded ratio of the DP optimum
//!   across the JOB-like training split;
//! * `ExecutionEnv` timeout and plan-cache behavior;
//! * the DP plan executes strictly faster than the median of 20 random
//!   valid plans.

use balsa_card::CardEstimator;
use balsa_cost::{CostModel, CostScorer, ExpertCostModel, OpWeights, SubtreeCost};
use balsa_engine::{EnvError, ExecError, ExecutionEnv};
use balsa_query::workloads::ext_job_workload;
use balsa_query::workloads::job_workload;
use balsa_query::{Plan, Split, TableMask};
use balsa_search::{
    random_plan, BeamPlanner, CandidateSpace, DpPlanner, MemoEstimator, Planner, SearchMode,
    SubmaskDpPlanner, WorkerPool,
};
use balsa_storage::{mini_imdb, DataGenConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

fn small_db() -> Arc<balsa_storage::Database> {
    Arc::new(mini_imdb(DataGenConfig {
        scale: 0.02,
        ..Default::default()
    }))
}

/// All (plan, cost summary) pairs covering one table subset.
type PlanSet = Arc<Vec<(Arc<Plan>, SubtreeCost)>>;

/// Exhaustively enumerates every plan for `mask`, each paired with its
/// compositional cost summary — the independent reference the DP's
/// pruned search is checked against. Returns all (plan, summary) pairs.
fn brute_force(
    space: &CandidateSpace<'_>,
    model: &dyn CostModel,
    est: &dyn CardEstimator,
    mask: u32,
    memo: &mut HashMap<u32, PlanSet>,
) -> PlanSet {
    if let Some(v) = memo.get(&mask) {
        return v.clone();
    }
    let q = space.query();
    let mut out: Vec<(Arc<Plan>, SubtreeCost)> = Vec::new();
    if mask.count_ones() == 1 {
        let qt = mask.trailing_zeros() as usize;
        for p in space.scan_plans(qt) {
            let sc = model.scan_summary(q, &p, est);
            out.push((p, sc));
        }
    } else {
        let mut a = (mask - 1) & mask;
        while a != 0 {
            let b = mask & !a;
            if b != 0 && q.subgraph_connected(TableMask(a)) && q.subgraph_connected(TableMask(b)) {
                let ls = brute_force(space, model, est, a, memo);
                let rs = brute_force(space, model, est, b, memo);
                for (lp, lc) in ls.iter() {
                    for (rp, rc) in rs.iter() {
                        if !space.allows_join(lp, rp) {
                            continue;
                        }
                        for &op in space.join_ops() {
                            let plan = Plan::join(op, lp.clone(), rp.clone());
                            let sc = model.join_summary(q, &plan, lc, rc, est);
                            out.push((plan, sc));
                        }
                    }
                }
            }
            a = (a - 1) & mask;
        }
    }
    let out = Arc::new(out);
    memo.insert(mask, out.clone());
    out
}

/// (a) On every ≤5-table JOB-like query, the DP planner's chosen plan
/// cost equals the brute-force optimum — in both search modes, with the
/// expert model on **true** cardinalities.
#[test]
fn dp_matches_brute_force_on_small_queries() {
    let db = small_db();
    let w = job_workload(db.catalog(), 7);
    let truth = balsa_engine::TrueCards::new(db.clone());
    let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
    let mut checked = 0;
    for q in w.queries.iter().filter(|q| q.num_tables() <= 5) {
        for mode in [SearchMode::Bushy, SearchMode::LeftDeep] {
            let est = MemoEstimator::new(&truth as &dyn CardEstimator);
            let space = CandidateSpace::new(&db, q, mode);
            let mut memo = HashMap::new();
            let all = brute_force(&space, &model, &est, q.all_mask().0, &mut memo);
            let brute_best = all
                .iter()
                .map(|(_, sc)| sc.work)
                .fold(f64::INFINITY, f64::min);
            let dp = DpPlanner::new(&db, &model, &est, mode).plan(q);
            let rel = (dp.cost - brute_best).abs() / brute_best.max(1.0);
            assert!(
                rel <= 1e-9,
                "{} ({mode:?}): dp {} != brute-force optimum {} over {} plans",
                q.name,
                dp.cost,
                brute_best,
                all.len()
            );
            // And the compositional summary agrees with a full re-cost.
            let recost = model.plan_cost(q, &dp.plan, &est);
            assert!((dp.cost - recost).abs() <= 1e-6 * recost.abs().max(1.0));
        }
        checked += 1;
    }
    assert!(
        checked >= 40,
        "expected many ≤5-table queries, got {checked}"
    );
}

/// (b) Beam-search cost stays within a bounded ratio of the DP optimum
/// across the whole JOB-like training split (the paper's random split:
/// 94 train / 19 test). Measured headroom: worst observed ratio for
/// k=10 is ~1.09; the bound asserts 1.5.
#[test]
fn beam_cost_is_within_bounded_ratio_of_dp_on_training_split() {
    let db = small_db();
    let w = job_workload(db.catalog(), 7);
    let split = Split::random(w.queries.len(), 19, 42);
    assert_eq!(split.train.len(), 94);
    let est = balsa_card::HistogramEstimator::new(&db);
    let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
    let scorer = CostScorer::new(&model, &est);
    const BOUND: f64 = 1.5;
    for &i in &split.train {
        let q = &w.queries[i];
        let dp = DpPlanner::new(&db, &model, &est, SearchMode::Bushy).plan(q);
        let bm = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 10).plan(q);
        assert!(
            bm.cost <= dp.cost * BOUND && bm.cost >= dp.cost * (1.0 - 1e-9),
            "{}: beam {} vs dp {} breaks ratio bound {BOUND}",
            q.name,
            bm.cost,
            dp.cost
        );
    }
}

/// (c) Plan-cache behavior: a reissued fingerprint hits the cache,
/// returns the identical latency, and advances no simulated time.
#[test]
fn execution_env_plan_cache_round_trip() {
    let db = small_db();
    let w = job_workload(db.catalog(), 7);
    let env = ExecutionEnv::postgres_sim(db.clone());
    let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
    let q = w.queries.iter().find(|q| q.num_tables() <= 6).unwrap();
    let dp = DpPlanner::new(&db, &model, env.truth(), SearchMode::Bushy).plan(q);

    let first = env.execute(q, &dp.plan, None).unwrap();
    assert!(!first.from_cache);
    let elapsed = env.elapsed_secs();
    let second = env.execute(q, &dp.plan, None).unwrap();
    assert!(second.from_cache);
    assert_eq!(second.latency_secs, first.latency_secs);
    assert_eq!(env.elapsed_secs(), elapsed);
    let (hits, misses) = env.cache_stats();
    assert_eq!((hits, misses), (1, 1));
}

/// (c) Timeout behavior: an over-budget plan early-terminates at the
/// budget, and the clock only advances by the budget.
#[test]
fn execution_env_timeout_early_terminates() {
    let db = small_db();
    let w = job_workload(db.catalog(), 7);
    let q = w.queries.iter().find(|q| q.num_tables() >= 5).unwrap();
    // A random (likely disastrous) plan with a microscopic budget.
    let mut rng = SmallRng::seed_from_u64(3);
    let plan = random_plan(&db, q, SearchMode::Bushy, &mut rng);
    let env = ExecutionEnv::postgres_sim(db.clone());
    let budget = 1e-9;
    let out = env.execute(q, &plan, Some(budget)).unwrap();
    assert!(out.timed_out);
    assert_eq!(out.latency_secs, budget);
    assert!((env.elapsed_secs() - budget).abs() < 1e-12);
}

/// CommDbSim's hint space rejects bushy plans end-to-end, and the
/// left-deep DP planner's output is always accepted.
#[test]
fn commdb_hint_space_round_trip() {
    let db = small_db();
    let w = job_workload(db.catalog(), 7);
    let env = ExecutionEnv::commdb_sim(db.clone());
    let model = ExpertCostModel::new(db.clone(), OpWeights::commdb_like());
    let q = w.queries.iter().find(|q| q.num_tables() >= 4).unwrap();
    let ld = DpPlanner::new(&db, &model, env.truth(), SearchMode::LeftDeep).plan(q);
    assert!(env.execute(q, &ld.plan, None).is_ok());
    // Find a bushy plan (right subtree joins) and watch it bounce.
    let mut rng = SmallRng::seed_from_u64(11);
    for _ in 0..50 {
        let p = random_plan(&db, q, SearchMode::Bushy, &mut rng);
        if !p.is_left_deep() {
            assert!(matches!(
                env.execute(q, &p, None),
                Err(ExecError::Env(EnvError::BushyHintRejected))
            ));
            return;
        }
    }
    panic!("never sampled a bushy plan in 50 draws");
}

/// Acceptance: on every ≤5-table JOB-like query, `execute(dp_plan)`
/// returns a finite latency strictly lower than the median of 20 random
/// valid plans for the same query.
#[test]
fn dp_plan_beats_median_random_plan_latency() {
    let db = small_db();
    let w = job_workload(db.catalog(), 7);
    let env = ExecutionEnv::postgres_sim(db.clone());
    // The oracle planner: expert weights matching the engine, true cards.
    let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
    for q in w.queries.iter().filter(|q| q.num_tables() <= 5) {
        let dp = DpPlanner::new(&db, &model, env.truth(), SearchMode::Bushy).plan(q);
        let dp_out = env.execute(q, &dp.plan, None).unwrap();
        assert!(
            dp_out.latency_secs.is_finite() && dp_out.latency_secs > 0.0,
            "{}: non-finite dp latency",
            q.name
        );
        let mut rng = SmallRng::seed_from_u64(0xBA15A ^ q.id as u64);
        let mut latencies: Vec<f64> = (0..20)
            .map(|_| {
                let p = random_plan(&db, q, SearchMode::Bushy, &mut rng);
                env.execute(q, &p, None).unwrap().latency_secs
            })
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = (latencies[9] + latencies[10]) / 2.0;
        assert!(
            dp_out.latency_secs < median,
            "{}: dp latency {} not below median random {}",
            q.name,
            dp_out.latency_secs,
            median
        );
    }
}

/// Tentpole property test: the DPccp enumerator is **bit-identical** to
/// the original submask-scan DP on every JOB-like and ext-JOB query —
/// best-plan cost, full-mask Pareto frontier, retained-state count,
/// candidate count, and ordered csg–cmp pair count all match exactly.
#[test]
fn dpccp_matches_submask_dp_on_all_workload_queries() {
    let db = small_db();
    let est = balsa_card::HistogramEstimator::new(&db);
    let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
    let job = job_workload(db.catalog(), 7);
    let ext = ext_job_workload(db.catalog(), 7);
    assert_eq!(job.queries.len() + ext.queries.len(), 137);
    let mut biggest = 0usize;
    for q in job.queries.iter().chain(&ext.queries) {
        biggest = biggest.max(q.num_tables());
        for mode in [SearchMode::Bushy, SearchMode::LeftDeep] {
            let (new, new_frontier) = DpPlanner::new(&db, &model, &est, mode).plan_with_frontier(q);
            let (old, old_frontier) =
                SubmaskDpPlanner::new(&db, &model, &est, mode).plan_with_frontier(q);
            assert_eq!(
                new.cost.to_bits(),
                old.cost.to_bits(),
                "{} ({mode:?}): dpccp cost {} != submask cost {}",
                q.name,
                new.cost,
                old.cost
            );
            assert_eq!(
                new_frontier, old_frontier,
                "{} ({mode:?}): Pareto frontiers diverge",
                q.name
            );
            assert_eq!(new.stats.states, old.stats.states, "{} states", q.name);
            assert_eq!(
                new.stats.candidates, old.stats.candidates,
                "{} candidates",
                q.name
            );
            assert_eq!(new.stats.pairs, old.stats.pairs, "{} pairs", q.name);
            assert_eq!(new.plan.mask(), q.all_mask());
        }
    }
    assert!(
        biggest >= 14,
        "workloads must include 14-table queries, saw max {biggest}"
    );
}

/// The same bit-identity contract for the other bundled cost models —
/// `C_out` (monotone, orderless) and `C_mm` (whose nested-loop formula
/// is **not** child-monotone, exercising the DP's pruning opt-out).
#[test]
fn dpccp_matches_submask_dp_on_cout_and_cmm() {
    let db = small_db();
    let est = balsa_card::HistogramEstimator::new(&db);
    let job = job_workload(db.catalog(), 7);
    let models: [&dyn CostModel; 2] = [&balsa_cost::CoutModel, &balsa_cost::CmmModel];
    for model in models {
        for q in job.queries.iter().step_by(4) {
            for mode in [SearchMode::Bushy, SearchMode::LeftDeep] {
                let (new, new_frontier) =
                    DpPlanner::new(&db, model, &est, mode).plan_with_frontier(q);
                let (old, old_frontier) =
                    SubmaskDpPlanner::new(&db, model, &est, mode).plan_with_frontier(q);
                assert_eq!(
                    new.cost.to_bits(),
                    old.cost.to_bits(),
                    "{} {} ({mode:?}): dpccp {} != submask {}",
                    model.name(),
                    q.name,
                    new.cost,
                    old.cost
                );
                assert_eq!(new_frontier, old_frontier, "{} {}", model.name(), q.name);
                assert_eq!(new.stats.candidates, old.stats.candidates);
                assert_eq!(new.stats.states, old.stats.states);
            }
        }
    }
}

/// Tentpole property test: the **intra-query parallel** DP (heavy
/// levels fanned across a worker pool, pair-local Pareto sets replayed
/// in enumeration order) is bit-identical to the serial DP on every
/// JOB-like and ext-JOB query — plan fingerprint, best cost bits, full
/// Pareto frontier, retained states, candidates, and pair counts — for
/// pools of 2 and 4 workers, in both search modes. `cost_calls` is the
/// one deliberately partition-dependent stat and is only sanity-checked.
/// The cutoff is forced to 0 so even small queries exercise the
/// parallel path rather than falling back to the serial sweep.
#[test]
fn parallel_dp_is_bit_identical_to_serial_dp_on_all_workload_queries() {
    let db = small_db();
    let est = balsa_card::HistogramEstimator::new(&db);
    let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
    let job = job_workload(db.catalog(), 7);
    let ext = ext_job_workload(db.catalog(), 7);
    assert_eq!(job.queries.len() + ext.queries.len(), 137);
    for q in job.queries.iter().chain(&ext.queries) {
        for mode in [SearchMode::Bushy, SearchMode::LeftDeep] {
            let (serial, sf) = DpPlanner::new(&db, &model, &est, mode).plan_with_frontier(q);
            for threads in [2usize, 4] {
                let (par, pf) = DpPlanner::new(&db, &model, &est, mode)
                    .with_pool(WorkerPool::new(threads))
                    .with_parallel_cutoff(0)
                    .plan_with_frontier(q);
                assert_eq!(
                    par.cost.to_bits(),
                    serial.cost.to_bits(),
                    "{} ({mode:?}, {threads} threads): parallel cost {} != serial {}",
                    q.name,
                    par.cost,
                    serial.cost
                );
                assert_eq!(
                    par.plan.fingerprint(),
                    serial.plan.fingerprint(),
                    "{} ({mode:?}, {threads} threads): plans diverge",
                    q.name
                );
                assert_eq!(pf, sf, "{} ({mode:?}, {threads} threads): frontier", q.name);
                assert_eq!(par.stats.states, serial.stats.states, "{} states", q.name);
                assert_eq!(par.stats.pairs, serial.stats.pairs, "{} pairs", q.name);
                assert_eq!(
                    par.stats.candidates, serial.stats.candidates,
                    "{} candidates",
                    q.name
                );
                assert!(
                    par.stats.cost_calls >= serial.stats.cost_calls,
                    "{}: pair-local pruning can only add cost calls",
                    q.name
                );
            }
        }
    }
}

/// The same parallel-vs-serial contract under the default cutoff (the
/// production configuration: only genuinely heavy levels fan out) and
/// under a non-monotone cost model (`C_mm`, pruning opt-out) with the
/// forced-parallel cutoff. Strided to keep the debug-profile runtime
/// proportionate.
#[test]
fn parallel_dp_bit_identity_holds_for_default_cutoff_and_cmm() {
    let db = small_db();
    let est = balsa_card::HistogramEstimator::new(&db);
    let job = job_workload(db.catalog(), 7);
    let expert = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
    // Default cutoff, biggest queries only (small ones never fan out).
    for q in job.queries.iter().filter(|q| q.num_tables() >= 10) {
        for mode in [SearchMode::Bushy, SearchMode::LeftDeep] {
            let (serial, sf) = DpPlanner::new(&db, &expert, &est, mode).plan_with_frontier(q);
            let (par, pf) = DpPlanner::new(&db, &expert, &est, mode)
                .with_pool(WorkerPool::new(4))
                .plan_with_frontier(q);
            assert_eq!(par.cost.to_bits(), serial.cost.to_bits(), "{}", q.name);
            assert_eq!(
                par.plan.fingerprint(),
                serial.plan.fingerprint(),
                "{}",
                q.name
            );
            assert_eq!(pf, sf, "{} default-cutoff frontier", q.name);
            assert_eq!(par.stats.candidates, serial.stats.candidates, "{}", q.name);
        }
    }
    // C_mm: child_monotone() == false disables the pre-cost early
    // reject, the other costing path through `combine`.
    let cmm: &dyn CostModel = &balsa_cost::CmmModel;
    for q in job.queries.iter().step_by(6) {
        for mode in [SearchMode::Bushy, SearchMode::LeftDeep] {
            let (serial, sf) = DpPlanner::new(&db, cmm, &est, mode).plan_with_frontier(q);
            let (par, pf) = DpPlanner::new(&db, cmm, &est, mode)
                .with_pool(WorkerPool::new(4))
                .with_parallel_cutoff(0)
                .plan_with_frontier(q);
            assert_eq!(par.cost.to_bits(), serial.cost.to_bits(), "C_mm {}", q.name);
            assert_eq!(
                par.plan.fingerprint(),
                serial.plan.fingerprint(),
                "C_mm {}",
                q.name
            );
            assert_eq!(pf, sf, "C_mm {} frontier", q.name);
            assert_eq!(par.stats.states, serial.stats.states, "C_mm {}", q.name);
            assert_eq!(
                par.stats.candidates, serial.stats.candidates,
                "C_mm {}",
                q.name
            );
        }
    }
}

/// The worker pool planning queries in parallel produces exactly the
/// serial results (plans, costs, stats) in input order.
#[test]
fn parallel_planning_matches_serial_planning() {
    let db = small_db();
    let est = balsa_card::HistogramEstimator::new(&db);
    let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
    let w = job_workload(db.catalog(), 7);
    let queries: Vec<_> = w.queries.iter().take(24).collect();
    let outs: Vec<Vec<(u64, u64)>> = [1usize, 4]
        .iter()
        .map(|&threads| {
            let pool = WorkerPool::new(threads);
            // One planner per worker invocation is the pool's intended
            // pattern; a single shared planner must also be safe.
            let planner = DpPlanner::new(&db, &model, &est, SearchMode::Bushy);
            pool.map(&queries, |_, q| {
                let out = planner.plan(q);
                (out.plan.fingerprint(), out.cost.to_bits())
            })
        })
        .collect();
    assert_eq!(outs[0], outs[1], "parallel planning diverged from serial");
}

/// The planning layer end-to-end on one mid-size query: DP on estimated
/// cardinalities (the classical expert optimizer) still lands within a
/// sane factor of the true-cardinality oracle plan.
#[test]
fn estimated_card_planner_is_reasonable() {
    let db = small_db();
    let w = job_workload(db.catalog(), 7);
    let env = ExecutionEnv::postgres_sim(db.clone());
    let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
    let hist = balsa_card::HistogramEstimator::new(&db);
    let q = w.queries.iter().find(|q| q.num_tables() == 7).unwrap();
    let expert = DpPlanner::new(&db, &model, &hist, SearchMode::Bushy).plan(q);
    let oracle = DpPlanner::new(&db, &model, env.truth(), SearchMode::Bushy).plan(q);
    let l_expert = env.execute(q, &expert.plan, None).unwrap().latency_secs;
    let l_oracle = env.execute(q, &oracle.plan, None).unwrap().latency_secs;
    assert!(
        l_expert < l_oracle * 1000.0,
        "expert plan latency {l_expert} catastrophically above oracle {l_oracle}"
    );
    assert!(l_oracle <= l_expert * 1.05, "oracle should be (near-)best");
}
