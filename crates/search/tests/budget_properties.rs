//! Property suite for the resource-governance layer (anytime planning):
//!
//! * **Generous-budget bit-identity** — on all 137 JOB + ext-JOB
//!   queries, in both search modes, a DP run under a budget too large to
//!   fire is **bit-identical** to the unbudgeted run: same plan
//!   fingerprint, same cost bits, same enumeration counters, same
//!   Pareto frontier, zero degradations. Budget checks are pure
//!   comparisons on counters the planner already keeps; this test is
//!   the proof.
//! * **Tight-budget degradation** — every budget level yields a
//!   complete, verifier-clean plan with the degradation honestly
//!   recorded: a `work=0` budget exhausts DP *and* the beam and lands
//!   on the greedy floor (level 2, equal to the greedy planner's own
//!   answer bit-for-bit); a budget sized between the beam's work and
//!   the DP's exhausts only the DP (level 1, equal to the width-8
//!   fallback beam's answer).
//! * **Greedy sanity** — `GreedyLeftDeepPlanner` is deterministic and
//!   stays within a sanity cost factor of the DP optimum.
//! * **Error taxonomy** — disconnected join graphs surface
//!   [`PlanError::DisconnectedGraph`] from every planner's `try_plan`,
//!   and the raw chain-free entry points surface
//!   [`PlanError::BudgetExhausted`] with the exhausting stage named.
//!
//! The independent plan verifier runs inside every planner here (debug
//! assertions are on in tests), so each emitted plan in this file is
//! re-checked structurally by construction.

use balsa_cost::{CostScorer, ExpertCostModel, OpWeights};
use balsa_query::workloads::{ext_job_workload, job_workload};
use balsa_query::Query;
use balsa_search::{
    BeamPlanner, DpPlanner, GreedyLeftDeepPlanner, PlanBudget, PlanError, Planner, RandomPlanner,
    SearchMode, SubmaskDpPlanner, FALLBACK_BEAM_WIDTH,
};
use balsa_storage::{mini_imdb, DataGenConfig};
use std::sync::Arc;

fn small_db() -> Arc<balsa_storage::Database> {
    Arc::new(mini_imdb(DataGenConfig {
        scale: 0.02,
        ..Default::default()
    }))
}

/// The full 137-query property workload (113 JOB + 24 ext-JOB).
fn all_queries(db: &balsa_storage::Database) -> Vec<Query> {
    let job = job_workload(db.catalog(), 7);
    let ext = ext_job_workload(db.catalog(), 7);
    let all: Vec<Query> = job.queries.into_iter().chain(ext.queries).collect();
    assert_eq!(all.len(), 137, "JOB + ext-JOB property universe");
    all
}

/// A budget far beyond any planning run in this workload — large enough
/// to never fire, finite enough that the checking code path runs.
const GENEROUS: PlanBudget = PlanBudget {
    work: 1 << 60,
    memo: 1 << 40,
};

/// Generous-budget runs are bit-identical to unbudgeted runs, and the
/// greedy floor is deterministic and within a sanity factor of the DP
/// optimum — across all 137 queries, both modes.
#[test]
fn generous_budget_is_bit_identical_and_greedy_is_sane() {
    let db = small_db();
    let est = balsa_card::HistogramEstimator::new(&db);
    let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
    let scorer = CostScorer::new(&model, &est);
    for q in &all_queries(&db) {
        for mode in [SearchMode::Bushy, SearchMode::LeftDeep] {
            let (base, base_frontier) = DpPlanner::new(&db, &model, &est, mode)
                .try_plan_with_frontier(q)
                .expect("connected query must plan");
            let (budgeted, budgeted_frontier) = DpPlanner::new(&db, &model, &est, mode)
                .with_budget(GENEROUS)
                .try_plan_with_frontier(q)
                .expect("generous budget must not fire");
            assert_eq!(
                budgeted.plan.fingerprint(),
                base.plan.fingerprint(),
                "{} {mode:?}: generous budget changed the plan",
                q.name
            );
            assert_eq!(
                budgeted.cost.to_bits(),
                base.cost.to_bits(),
                "{} {mode:?}: generous budget changed the cost bits",
                q.name
            );
            assert_eq!(
                budgeted.stats.candidates, base.stats.candidates,
                "{}",
                q.name
            );
            assert_eq!(budgeted.stats.pairs, base.stats.pairs, "{}", q.name);
            assert_eq!(budgeted.stats.states, base.stats.states, "{}", q.name);
            assert_eq!(budgeted_frontier, base_frontier, "{} {mode:?}", q.name);
            for s in [&base.stats, &budgeted.stats] {
                assert_eq!(s.degraded_levels, 0, "{}: phantom degradation", q.name);
                assert!(!s.budget_exhausted, "{}: phantom exhaustion", q.name);
            }

            // Greedy floor: deterministic, complete, sane cost.
            let greedy = GreedyLeftDeepPlanner::new(&db, &scorer, mode);
            let a = greedy.try_plan(q).expect("connected query must plan");
            let b = greedy.try_plan(q).expect("connected query must plan");
            assert_eq!(a.plan.fingerprint(), b.plan.fingerprint(), "{}", q.name);
            assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "{}", q.name);
            assert_eq!(a.plan.mask(), q.all_mask(), "{}", q.name);
            // The DP optimum lower-bounds any plan in its space; the
            // greedy left-deep answer must be no better than the
            // left-deep DP optimum and within a sanity factor of it.
            assert!(
                a.cost.is_finite() && a.cost > 0.0,
                "{}: greedy cost {}",
                q.name,
                a.cost
            );
            if mode == SearchMode::LeftDeep {
                assert!(
                    a.cost >= base.cost * (1.0 - 1e-9),
                    "{}: greedy {} beat the DP optimum {}",
                    q.name,
                    a.cost,
                    base.cost
                );
            }
            assert!(
                a.cost <= base.cost * 1e6,
                "{}: greedy {} catastrophically above DP {}",
                q.name,
                a.cost,
                base.cost
            );
        }
    }
}

/// Every budget tier yields a complete plan with the degradation
/// recorded, and the chain's answers equal the fallback planners' own:
/// `work=0` exhausts every search stage and lands on greedy (level 2);
/// a budget between the beam's total work and the DP's exhausts only
/// the DP (level 1, answer identical to the width-8 fallback beam).
#[test]
fn tight_budgets_degrade_honestly_through_the_chain() {
    let db = small_db();
    let est = balsa_card::HistogramEstimator::new(&db);
    let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
    let scorer = CostScorer::new(&model, &est);
    let queries = all_queries(&db);
    let mut level1 = 0usize;
    let mut level2 = 0usize;
    for q in &queries {
        for mode in [SearchMode::Bushy, SearchMode::LeftDeep] {
            // Tier 1: zero work budget — nothing can search, greedy
            // answers. The plan still verifies (the verifier runs
            // inside try_plan) and the degradation is recorded.
            let zero = PlanBudget {
                work: 0,
                memo: usize::MAX,
            };
            let floor = DpPlanner::new(&db, &model, &est, mode)
                .with_budget(zero)
                .try_plan(q)
                .expect("the greedy floor always answers connected queries");
            assert_eq!(floor.stats.degraded_levels, 2, "{} {mode:?}", q.name);
            assert!(floor.stats.budget_exhausted, "{} {mode:?}", q.name);
            assert_eq!(floor.plan.mask(), q.all_mask(), "{}", q.name);
            let greedy = GreedyLeftDeepPlanner::new(&db, &scorer, mode)
                .try_plan(q)
                .expect("connected");
            assert_eq!(
                floor.plan.fingerprint(),
                greedy.plan.fingerprint(),
                "{} {mode:?}: level-2 answer must be the greedy planner's",
                q.name
            );
            level2 += 1;

            // Tier 2 (sampled; needs an unbudgeted DP run to size the
            // budget): work between the fallback beam's total and the
            // DP's total exhausts exactly one level.
            if q.id % 8 != 0 {
                continue;
            }
            let base = DpPlanner::new(&db, &model, &est, mode).plan(q);
            let dp_work = (base.stats.candidates + base.stats.pairs) as u64;
            let beam = BeamPlanner::new(&db, &scorer, mode, FALLBACK_BEAM_WIDTH)
                .try_plan_raw(q)
                .expect("connected");
            let beam_work = beam.stats.candidates as u64;
            if beam_work >= dp_work {
                continue; // tiny query: the beam does no less work
            }
            let between = PlanBudget {
                work: dp_work - 1,
                memo: usize::MAX,
            };
            let degraded = DpPlanner::new(&db, &model, &est, mode)
                .with_budget(between)
                .try_plan(q)
                .expect("beam fallback must answer");
            assert_eq!(degraded.stats.degraded_levels, 1, "{} {mode:?}", q.name);
            assert!(degraded.stats.budget_exhausted, "{} {mode:?}", q.name);
            assert_eq!(
                degraded.plan.fingerprint(),
                beam.plan.fingerprint(),
                "{} {mode:?}: level-1 answer must be the fallback beam's",
                q.name
            );
            assert_eq!(degraded.cost.to_bits(), beam.cost.to_bits(), "{}", q.name);
            level1 += 1;
        }
    }
    assert_eq!(level2, queries.len() * 2, "level 2 must cover every query");
    assert!(level1 > 0, "no query exercised the DP -> beam degradation");
}

/// Disconnected join graphs surface [`PlanError::DisconnectedGraph`]
/// from every planner's `try_plan` — never a panic, never a bogus plan.
#[test]
fn disconnected_graphs_error_from_every_planner() {
    let db = small_db();
    let est = balsa_card::HistogramEstimator::new(&db);
    let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
    let scorer = CostScorer::new(&model, &est);
    // A real multi-table query with every join edge removed: n >= 2
    // tables, no edges — the canonical disconnected graph.
    let mut q = all_queries(&db)
        .into_iter()
        .find(|q| q.num_tables() >= 3)
        .expect("multi-table query exists");
    q.joins.clear();
    q.name = "disconnected".into();

    for mode in [SearchMode::Bushy, SearchMode::LeftDeep] {
        let planners: Vec<Box<dyn Planner + '_>> = vec![
            Box::new(DpPlanner::new(&db, &model, &est, mode)),
            Box::new(SubmaskDpPlanner::new(&db, &model, &est, mode)),
            Box::new(BeamPlanner::new(&db, &scorer, mode, 4)),
            Box::new(GreedyLeftDeepPlanner::new(&db, &scorer, mode)),
            Box::new(RandomPlanner::new(&db, &model, &est, mode, 7)),
        ];
        for p in &planners {
            match p.try_plan(&q) {
                Err(PlanError::DisconnectedGraph { query }) => {
                    assert_eq!(query, "disconnected", "{}", p.name());
                }
                other => panic!("{}: expected DisconnectedGraph, got {other:?}", p.name()),
            }
            // A finite budget must not change the taxonomy: there is
            // nothing to degrade *to* when no plan exists.
            match DpPlanner::new(&db, &model, &est, mode)
                .with_budget(PlanBudget { work: 0, memo: 0 })
                .try_plan(&q)
            {
                Err(PlanError::DisconnectedGraph { .. }) => {}
                other => panic!("budgeted DP on disconnected graph: {other:?}"),
            }
        }
    }
}

/// The raw, chain-free entry points surface budget exhaustion as a
/// typed error naming the stage — the opt-in for callers that want to
/// observe exhaustion instead of degrading.
#[test]
fn raw_entry_points_surface_budget_exhaustion() {
    let db = small_db();
    let est = balsa_card::HistogramEstimator::new(&db);
    let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
    let scorer = CostScorer::new(&model, &est);
    let q = all_queries(&db)
        .into_iter()
        .find(|q| q.num_tables() >= 4)
        .expect("multi-table query exists");
    let zero = PlanBudget {
        work: 0,
        memo: usize::MAX,
    };
    for mode in [SearchMode::Bushy, SearchMode::LeftDeep] {
        match DpPlanner::new(&db, &model, &est, mode)
            .with_budget(zero)
            .try_plan_with_frontier(&q)
        {
            Err(PlanError::BudgetExhausted { stage, budget, .. }) => {
                assert_eq!(stage, "dp");
                assert_eq!(budget, zero);
            }
            other => panic!("dp: expected BudgetExhausted, got {:?}", other.map(|_| ())),
        }
        match SubmaskDpPlanner::new(&db, &model, &est, mode)
            .with_budget(zero)
            .try_plan_with_frontier(&q)
        {
            Err(PlanError::BudgetExhausted { stage, .. }) => assert_eq!(stage, "submask-dp"),
            other => panic!(
                "submask-dp: expected BudgetExhausted, got {:?}",
                other.map(|_| ())
            ),
        }
        match BeamPlanner::new(&db, &scorer, mode, 4)
            .with_budget(zero)
            .try_plan_raw(&q)
        {
            Err(PlanError::BudgetExhausted { stage, .. }) => assert_eq!(stage, "beam"),
            other => panic!(
                "beam: expected BudgetExhausted, got {:?}",
                other.map(|_| ())
            ),
        }
    }
}
