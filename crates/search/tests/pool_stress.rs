//! Persistent-pool stress: one long-lived [`WorkerPool`] instance is
//! reused across interleaved `map`, `steal_map_spans`, and *nested*
//! planner dispatches (an outer query map whose tasks fan DP levels
//! out on the same pool), and every output must be bit-identical to
//! fresh-pool and serial runs. This is the reuse half of the pool's
//! determinism contract — the per-call bit-identity half lives in
//! `planner_integration.rs` and the unit tests.

use balsa_cost::{CostScorer, ExpertCostModel, OpWeights};
use balsa_query::workloads::job_workload;
use balsa_search::{BeamPlanner, DpPlanner, Planner, SearchMode, WorkerPool};
use balsa_storage::{mini_imdb, DataGenConfig};
use std::sync::Arc;

fn small_db() -> Arc<balsa_storage::Database> {
    Arc::new(mini_imdb(DataGenConfig {
        scale: 0.02,
        ..Default::default()
    }))
}

/// Fingerprint/cost bits from one round: DP plans, beam plans, numbers.
type RoundBits = (Vec<(u64, u64)>, Vec<(u64, u64)>, Vec<u64>);

/// One "round" of mixed work on `pool`: plan a query slice with the DP
/// (outer map on the pool, every multi-pair level fanned out on the
/// *same* pool — cutoff 0 — so the nested inline fallback is
/// exercised), score the same slice through the beam (span stealing),
/// and run a plain numeric span map. Returns everything as bits.
fn mixed_round(
    pool: &WorkerPool,
    db: &Arc<balsa_storage::Database>,
    est: &balsa_card::HistogramEstimator,
    model: &ExpertCostModel,
    queries: &[&balsa_query::Query],
) -> RoundBits {
    let dp: Vec<(u64, u64)> = pool.map(queries, |_, q| {
        let planner = DpPlanner::new(db, model, est, SearchMode::Bushy)
            .with_pool(pool.clone())
            .with_parallel_cutoff(0);
        let out = planner.plan(q);
        (out.plan.fingerprint(), out.cost.to_bits())
    });
    let scorer = CostScorer::new(model, est);
    let beam: Vec<(u64, u64)> = queries
        .iter()
        .map(|q| {
            let out = BeamPlanner::new(db, &scorer, SearchMode::Bushy, 5)
                .with_pool(pool.clone())
                .plan(q);
            (out.plan.fingerprint(), out.cost.to_bits())
        })
        .collect();
    let nums: Vec<u64> = pool.steal_map_spans(397, 7, |lo, hi, out| {
        for i in lo..hi {
            out.push((i as u64).wrapping_mul(0x9E3779B97F4A7C15).rotate_left(9));
        }
    });
    (dp, beam, nums)
}

/// Interleaved reuse across {1,2,4,8} threads: round after round on one
/// persistent pool must match a fresh pool per round, and every thread
/// count must match the serial reference bit-for-bit.
#[test]
fn persistent_pool_reuse_is_bit_identical_to_fresh_pools() {
    let db = small_db();
    let est = balsa_card::HistogramEstimator::new(&db);
    let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
    let w = job_workload(db.catalog(), 7);
    let queries: Vec<&balsa_query::Query> = w.queries.iter().take(12).collect();

    let serial = mixed_round(&WorkerPool::new(1), &db, &est, &model, &queries);
    for threads in [1usize, 2, 4, 8] {
        let pool = WorkerPool::new(threads);
        for round in 0..3 {
            let reused = mixed_round(&pool, &db, &est, &model, &queries);
            let fresh = mixed_round(&WorkerPool::new(threads), &db, &est, &model, &queries);
            assert_eq!(
                reused, fresh,
                "{threads} threads, round {round}: reused pool diverged from fresh pool"
            );
            assert_eq!(
                reused, serial,
                "{threads} threads, round {round}: diverged from serial reference"
            );
        }
    }
}
