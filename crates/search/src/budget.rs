//! Planner resource governance: deterministic plan budgets and the
//! planner error taxonomy.
//!
//! A [`PlanBudget`] bounds a single planning call in two dimensions:
//!
//! * **work** — a deadline in *planner-work units*: candidates examined
//!   plus csg–cmp pairs enumerated. Both counters are thread-invariant
//!   (unlike `cost_calls`, which deliberately depends on how a level
//!   was partitioned across workers), and planners check them only at
//!   deterministic boundaries (DP level starts/ends, beam level
//!   starts, submask-DP mask ends) — so whether a budget fires, and
//!   where, is bit-reproducible and independent of thread count or
//!   wall clock.
//! * **memo** — a cap on live memo entries / Pareto slots (DP memo
//!   slots for connected subsets, Pareto entries per level, beam
//!   states per level).
//!
//! Exhausting a budget is not an error the caller usually sees:
//! planners degrade through a fallback chain (DPccp → width-k beam →
//! [`crate::GreedyLeftDeepPlanner`]), recording each step in
//! [`crate::SearchStats::degraded_levels`]. A [`PlanError`] only
//! escapes when no planner can answer at all (disconnected join
//! graph), or when a caller opts into the raw, chain-free entry points.

use balsa_query::Query;
use std::fmt;
use std::sync::OnceLock;

/// Beam width used when DPccp exhausts its budget and degrades to beam
/// search (fallback level 1 of the chain).
pub const FALLBACK_BEAM_WIDTH: usize = 8;

/// Why a planning call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The query's join graph is not connected: no cross-product-free
    /// plan exists, so no planner (including the greedy floor of the
    /// fallback chain) can answer.
    DisconnectedGraph {
        /// Name of the offending query.
        query: String,
    },
    /// A planning stage ran out of its [`PlanBudget`] at a
    /// deterministic boundary check. Surfaced to callers only from the
    /// raw (chain-free) entry points; [`crate::Planner::try_plan`]
    /// consumes it by degrading to the next stage.
    BudgetExhausted {
        /// Name of the query being planned.
        query: String,
        /// Which stage exhausted: `"dp"`, `"submask-dp"`, or `"beam"`.
        stage: &'static str,
        /// Work units charged when the check fired.
        work: u64,
        /// Live memo/Pareto entries when the check fired.
        memo: usize,
        /// The budget in force.
        budget: PlanBudget,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::DisconnectedGraph { query } => {
                write!(f, "no plan for {query}: join graph is disconnected")
            }
            PlanError::BudgetExhausted {
                query,
                stage,
                work,
                memo,
                budget,
            } => write!(
                f,
                "{stage} budget exhausted planning {query}: work {work}/{}, memo {memo}/{}",
                budget.work, budget.memo
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// A per-call planning budget. See the module docs for the charging
/// discipline; [`PlanBudget::UNLIMITED`] (the default) never fires and
/// is **bit-identical** to not checking at all — budget checks are pure
/// integer comparisons on counters the planners already keep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanBudget {
    /// Deadline in planner-work units (candidates + pairs).
    pub work: u64,
    /// Cap on live memo entries / Pareto slots.
    pub memo: usize,
}

impl Default for PlanBudget {
    fn default() -> Self {
        PlanBudget::UNLIMITED
    }
}

impl PlanBudget {
    /// No limits; planners behave exactly as if unbudgeted.
    pub const UNLIMITED: PlanBudget = PlanBudget {
        work: u64::MAX,
        memo: usize::MAX,
    };

    /// Whether this budget can never fire.
    pub fn is_unlimited(&self) -> bool {
        *self == PlanBudget::UNLIMITED
    }

    /// Boundary check: errors when the charged counters exceed the
    /// budget. `work`/`memo` must be thread-invariant quantities (see
    /// module docs) so the decision is deterministic.
    pub(crate) fn check(
        &self,
        stage: &'static str,
        query: &Query,
        work: u64,
        memo: usize,
    ) -> Result<(), PlanError> {
        if work > self.work || memo > self.memo {
            Err(PlanError::BudgetExhausted {
                query: query.name.clone(),
                stage,
                work,
                memo,
                budget: *self,
            })
        } else {
            Ok(())
        }
    }

    /// Parses a `work=<u64>,memo=<usize>` spec (either key optional;
    /// empty spec = unlimited). Mirrors `FaultConfig::parse`'s
    /// key=value grammar.
    pub fn parse(spec: &str) -> Result<PlanBudget, String> {
        let mut budget = PlanBudget::UNLIMITED;
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "work" => {
                    budget.work = value.parse::<u64>().map_err(|_| {
                        format!("work must be a non-negative integer, got {value:?}")
                    })?
                }
                "memo" => {
                    budget.memo = value.parse::<usize>().map_err(|_| {
                        format!("memo must be a non-negative integer, got {value:?}")
                    })?
                }
                other => return Err(format!("unknown budget key {other:?}")),
            }
        }
        Ok(budget)
    }

    /// Reads `BALSA_PLAN_BUDGET`. Unset → `None` (unbudgeted). Garbled
    /// input warns loudly and falls back to unbudgeted — same contract
    /// as `BALSA_FAULTS` / `BALSA_PLAN_THREADS`.
    pub fn from_env() -> Option<PlanBudget> {
        let raw = std::env::var("BALSA_PLAN_BUDGET").ok()?;
        match PlanBudget::parse(&raw) {
            Ok(b) if b.is_unlimited() => None,
            Ok(b) => Some(b),
            Err(why) => {
                eprintln!(
                    "warning: BALSA_PLAN_BUDGET={raw:?} is not a budget spec ({why}); \
                     planning unbudgeted"
                );
                None
            }
        }
    }

    /// Order-sensitive digest of the budget, mixed into training-run
    /// fingerprints (a budget changes which plans come out, so resumed
    /// checkpoints must agree on it).
    pub fn fingerprint(&self) -> u64 {
        fn mix(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        let h = mix(0xB0D6E7 ^ self.work);
        mix(h ^ self.memo as u64)
    }
}

/// Whether emitted plans should run through the independent verifier
/// (`balsa_query::verify`). Defaults to on under debug assertions;
/// `BALSA_VERIFY_PLANS` overrides either way (`0`/`false`/empty
/// disable, anything else enables). Read once per process.
pub fn verify_plans_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("BALSA_VERIFY_PLANS") {
        Ok(v) => {
            let t = v.trim();
            !(t.is_empty() || t == "0" || t.eq_ignore_ascii_case("false"))
        }
        Err(_) => cfg!(debug_assertions),
    })
}

/// Runs the independent verifier over a finished plan (when enabled),
/// panicking on rejection — a planner emitting an invalid plan is a
/// bug, never a recoverable condition. The time spent is recorded in
/// `stats.verify_secs` (reporting-only; never feeds back into search).
/// `cost` carries the model cost for planners whose scores are real
/// costs; scorer-driven planners whose scores may legitimately be
/// negative (learned log-latencies) pass `None` and the structural
/// checks still run.
pub(crate) fn verify_emitted(
    planner: &str,
    query: &Query,
    planned: &mut crate::PlannedQuery,
    cost: Option<f64>,
) {
    if !verify_plans_enabled() {
        return;
    }
    let t0 = std::time::Instant::now();
    if let Err(e) = balsa_query::verify::verify_plan(query, &planned.plan, cost) {
        panic!(
            "plan verifier rejected {planner} plan for {}: {e}\n  plan: {}",
            query.name, planned.plan
        );
    }
    planned.stats.verify_secs += t0.elapsed().as_secs_f64();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parse table in the style of `fault_spec_parse_table` /
    /// `ModelKind::parse_spec`.
    #[test]
    fn budget_spec_parse_table() {
        let ok: &[(&str, PlanBudget)] = &[
            ("", PlanBudget::UNLIMITED),
            (
                "work=100000",
                PlanBudget {
                    work: 100_000,
                    memo: usize::MAX,
                },
            ),
            (
                "memo=5000",
                PlanBudget {
                    work: u64::MAX,
                    memo: 5000,
                },
            ),
            ("work=1,memo=2", PlanBudget { work: 1, memo: 2 }),
            // Whitespace tolerated, later keys win.
            (" work = 7 , memo = 9 ", PlanBudget { work: 7, memo: 9 }),
            (
                "work=1,work=3",
                PlanBudget {
                    work: 3,
                    memo: usize::MAX,
                },
            ),
            // Zero is meaningful: immediate exhaustion, straight to the
            // fallback chain.
            (
                "work=0",
                PlanBudget {
                    work: 0,
                    memo: usize::MAX,
                },
            ),
        ];
        for (spec, want) in ok {
            assert_eq!(PlanBudget::parse(spec).as_ref(), Ok(want), "spec {spec:?}");
        }
        let bad = [
            "work",           // no value
            "work=",          // empty value
            "work=abc",       // not a number
            "work=-1",        // negative
            "memo=1.5",       // not an integer
            "budget=5",       // unknown key
            "work=1;memo=2",  // wrong separator
            "work=1,memo=-2", // one good key, one bad
        ];
        for spec in bad {
            assert!(
                PlanBudget::parse(spec).is_err(),
                "spec {spec:?} should be rejected"
            );
        }
    }

    #[test]
    fn unlimited_is_default_and_never_fires() {
        assert_eq!(PlanBudget::default(), PlanBudget::UNLIMITED);
        assert!(PlanBudget::UNLIMITED.is_unlimited());
        assert!(!PlanBudget { work: 5, memo: 5 }.is_unlimited());
    }

    #[test]
    fn fingerprint_separates_budgets() {
        let a = PlanBudget { work: 10, memo: 20 };
        let b = PlanBudget { work: 20, memo: 10 };
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), PlanBudget::UNLIMITED.fingerprint());
        assert_eq!(
            a.fingerprint(),
            PlanBudget { work: 10, memo: 20 }.fingerprint()
        );
    }
}
