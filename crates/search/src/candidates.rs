//! The shared candidate-generation core.
//!
//! The DP enumerator, the beam search, and the random sampler all draw
//! their moves from one [`CandidateSpace`]: which scan operators may
//! serve a base table, which join operators exist, which (left, right)
//! orientations the search mode permits, and which table subsets induce
//! connected join subgraphs. Keeping this in one place guarantees the
//! three procedures explore the *same* plan space — the property the
//! paper relies on when comparing the expert enumerator with the
//! learned agent's beam search.
//!
//! The **scored** candidate path ([`CandidateSpace::scored_scan_plans`],
//! [`CandidateSpace::scored_join_plans`]) pairs every generated move
//! with its [`ScoredTree`] under an arbitrary [`QueryScorer`] session,
//! so search procedures never touch a cost model directly — the expert
//! model, `C_out`, and the learned value model are interchangeable.

use crate::SearchMode;
use balsa_cost::{QueryScorer, ScoredTree};
use balsa_query::{JoinOp, Plan, Query, ScanOp, TableMask};
use balsa_storage::Database;
use std::sync::Arc;

/// Candidate moves for one query under one search mode.
pub struct CandidateSpace<'a> {
    db: &'a Database,
    query: &'a Query,
    mode: SearchMode,
}

impl<'a> CandidateSpace<'a> {
    /// Creates the space for `query` on `db`.
    pub fn new(db: &'a Database, query: &'a Query, mode: SearchMode) -> Self {
        Self { db, query, mode }
    }

    /// The query being planned.
    pub fn query(&self) -> &'a Query {
        self.query
    }

    /// The database (for index metadata).
    pub fn db(&self) -> &'a Database {
        self.db
    }

    /// The search mode.
    pub fn mode(&self) -> SearchMode {
        self.mode
    }

    /// Scan candidates for query-table `qt`: a sequential scan always,
    /// and an index scan when the table has at least one indexed column
    /// to drive it.
    pub fn scan_plans(&self, qt: usize) -> Vec<Arc<Plan>> {
        let tid = self.query.tables[qt].table;
        let has_index = self
            .db
            .catalog()
            .table(tid)
            .columns
            .iter()
            .any(|c| c.indexed);
        let mut out = vec![Plan::scan(qt, ScanOp::Seq)];
        if has_index {
            out.push(Plan::scan(qt, ScanOp::Index));
        }
        out
    }

    /// All physical join operators (the paper's {hash, merge, nested-loop}).
    pub fn join_ops(&self) -> &'static [JoinOp] {
        &JoinOp::ALL
    }

    /// Whether joining `left` and `right` in this orientation is allowed:
    /// the inputs must be disjoint, an equi-join edge must cross them
    /// (no cross products), and in left-deep mode the right input must be
    /// a base table.
    pub fn allows_join(&self, left: &Plan, right: &Plan) -> bool {
        left.mask().disjoint(right.mask())
            && self.query.connected(left.mask(), right.mask())
            && match self.mode {
                SearchMode::Bushy => true,
                SearchMode::LeftDeep => right.is_scan(),
            }
    }

    /// All join plans combining `left` and `right` in this orientation
    /// (empty when the orientation is not allowed).
    pub fn join_plans(&self, left: &Arc<Plan>, right: &Arc<Plan>) -> Vec<Arc<Plan>> {
        if !self.allows_join(left, right) {
            return Vec::new();
        }
        self.join_ops()
            .iter()
            .map(|&op| Plan::join(op, left.clone(), right.clone()))
            .collect()
    }

    /// Appends all join plans combining `left` and `right` in this
    /// orientation — one per physical operator — to `out`; appends
    /// nothing when the orientation is not allowed. This is the
    /// **unscored** half of the batched candidate path: the beam
    /// generates and deduplicates plans first, then scores the
    /// survivors in one [`QueryScorer::score_join_batch`] call, so the
    /// buffer-reusing form avoids the per-call `Vec` of
    /// [`CandidateSpace::join_plans`].
    pub fn join_plans_into(&self, left: &Arc<Plan>, right: &Arc<Plan>, out: &mut Vec<Arc<Plan>>) {
        if !self.allows_join(left, right) {
            return;
        }
        for &op in self.join_ops() {
            out.push(Plan::join(op, left.clone(), right.clone()));
        }
    }

    /// Scan candidates for query-table `qt`, each paired with its score
    /// under `scorer` — the shared scoring path of the search layer.
    pub fn scored_scan_plans(
        &self,
        qt: usize,
        scorer: &dyn QueryScorer,
    ) -> Vec<(Arc<Plan>, ScoredTree)> {
        self.scan_plans(qt)
            .into_iter()
            .map(|p| {
                let st = scorer.score_scan(&p);
                (p, st)
            })
            .collect()
    }

    /// All scored join candidates combining `left` and `right` (whose
    /// scored subtrees are `lst`/`rst`) in this orientation; empty when
    /// the orientation is not allowed.
    pub fn scored_join_plans(
        &self,
        left: &Arc<Plan>,
        lst: &ScoredTree,
        right: &Arc<Plan>,
        rst: &ScoredTree,
        scorer: &dyn QueryScorer,
    ) -> Vec<(Arc<Plan>, ScoredTree)> {
        if !self.allows_join(left, right) {
            return Vec::new();
        }
        self.join_ops()
            .iter()
            .map(|&op| {
                let plan = Plan::join(op, left.clone(), right.clone());
                let st = scorer.score_join(&plan, lst, rst);
                (plan, st)
            })
            .collect()
    }

    /// Connectivity table over all `2^n` subsets: `table[mask]` is true
    /// iff `mask` induces a connected join subgraph. The DP enumerator
    /// indexes this on its hot path.
    pub fn connected_table(&self) -> Vec<bool> {
        let n = self.query.num_tables();
        assert!(n <= 25, "connectivity table over {n} tables is too large");
        let mut table = vec![false; 1usize << n];
        for (mask, slot) in table.iter_mut().enumerate().skip(1) {
            *slot = self.query.subgraph_connected(TableMask(mask as u32));
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balsa_query::workloads::job_workload;
    use balsa_storage::{mini_imdb, DataGenConfig};

    fn fixture() -> (Database, balsa_query::Workload) {
        let db = mini_imdb(DataGenConfig {
            scale: 0.02,
            ..Default::default()
        });
        let w = job_workload(db.catalog(), 7);
        (db, w)
    }

    #[test]
    fn scans_include_index_only_when_available() {
        let (db, w) = fixture();
        let q = &w.queries[0];
        let space = CandidateSpace::new(&db, q, SearchMode::Bushy);
        for qt in 0..q.num_tables() {
            let scans = space.scan_plans(qt);
            assert!(!scans.is_empty());
            assert!(matches!(
                &*scans[0],
                Plan::Scan {
                    op: ScanOp::Seq,
                    ..
                }
            ));
        }
    }

    #[test]
    fn left_deep_mode_restricts_right_to_scans() {
        let (db, w) = fixture();
        let q = w.queries.iter().find(|q| q.num_tables() >= 3).unwrap();
        let bushy = CandidateSpace::new(&db, q, SearchMode::Bushy);
        let ld = CandidateSpace::new(&db, q, SearchMode::LeftDeep);
        // Find two scans joined by an edge, then a third joined to them.
        let e = q.joins[0];
        let a = Plan::scan(e.left_qt, ScanOp::Seq);
        let b = Plan::scan(e.right_qt, ScanOp::Seq);
        assert!(bushy.allows_join(&a, &b));
        assert!(ld.allows_join(&a, &b));
        let ab = Plan::join(JoinOp::Hash, a.clone(), b.clone());
        // A tree on the right is allowed bushy, not left-deep.
        if let Some(t) = (0..q.num_tables())
            .find(|&t| !ab.mask().contains(t) && q.connected(ab.mask(), TableMask::single(t)))
        {
            let c = Plan::scan(t, ScanOp::Seq);
            assert!(bushy.allows_join(&c, &ab));
            assert!(!ld.allows_join(&c, &ab));
            assert!(ld.allows_join(&ab, &c));
        }
    }

    #[test]
    fn join_plans_into_matches_join_plans() {
        let (db, w) = fixture();
        let q = w.queries.iter().find(|q| q.num_tables() >= 3).unwrap();
        let space = CandidateSpace::new(&db, q, SearchMode::Bushy);
        let e = q.joins[0];
        let a = Plan::scan(e.left_qt, ScanOp::Seq);
        let b = Plan::scan(e.right_qt, ScanOp::Seq);
        let mut buf = Vec::new();
        space.join_plans_into(&a, &b, &mut buf);
        let direct = space.join_plans(&a, &b);
        assert_eq!(buf.len(), direct.len());
        for (x, y) in buf.iter().zip(&direct) {
            assert_eq!(x.fingerprint(), y.fingerprint());
        }
        // Disallowed orientation appends nothing (and keeps the buffer).
        let c = Plan::scan(e.left_qt, ScanOp::Index);
        let before = buf.len();
        space.join_plans_into(&a, &c, &mut buf); // overlapping masks
        assert_eq!(buf.len(), before);
    }

    #[test]
    fn cross_products_are_excluded() {
        let (db, w) = fixture();
        let q = w.queries.iter().find(|q| q.num_tables() >= 4).unwrap();
        let space = CandidateSpace::new(&db, q, SearchMode::Bushy);
        // Find two tables with no direct edge.
        for i in 0..q.num_tables() {
            for j in 0..q.num_tables() {
                if i == j {
                    continue;
                }
                let a = Plan::scan(i, ScanOp::Seq);
                let b = Plan::scan(j, ScanOp::Seq);
                let connected = q.connected(TableMask::single(i), TableMask::single(j));
                assert_eq!(space.allows_join(&a, &b), connected);
            }
        }
    }

    #[test]
    fn connected_table_matches_direct_checks() {
        let (db, w) = fixture();
        let q = w.queries.iter().find(|q| q.num_tables() <= 8).unwrap();
        let space = CandidateSpace::new(&db, q, SearchMode::Bushy);
        let table = space.connected_table();
        assert_eq!(table.len(), 1 << q.num_tables());
        for (mask, &conn) in table.iter().enumerate().skip(1) {
            assert_eq!(conn, q.subgraph_connected(TableMask(mask as u32)));
        }
        assert!(!table[0]);
        assert!(table[table.len() - 1], "whole query must be connected");
    }
}
