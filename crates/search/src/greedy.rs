//! The always-terminating greedy floor of the planner fallback chain.
//!
//! [`GreedyLeftDeepPlanner`] builds one left-deep join tree by repeated
//! locally-best extension: start from the cheapest base-table scan,
//! then at each of the `n-1` steps try every (adjacent table × scan
//! variant × join operator) extension and keep the best-scored one.
//! Work is O(n²) score calls with no memo, no Pareto sets, and no
//! search frontier — it cannot exceed any [`crate::PlanBudget`] worth
//! arming, which is what makes it the guaranteed-terminating last
//! stage after DPccp and beam search have both exhausted their
//! budgets. Like the beam it is generic over [`PlanScorer`], so the
//! expert cost model and the learned value model degrade through the
//! identical code path.
//!
//! Output is always a left-deep tree (a valid member of both search
//! modes' plan spaces); ties break deterministically on enumeration
//! order (lowest table index, then scan order, then operator order),
//! so the planner is bit-reproducible.

use crate::budget::verify_emitted;
use crate::{CandidateSpace, PlanError, PlannedQuery, Planner, SearchMode, SearchStats};
use balsa_cost::{PlanScorer, ScoredTree};
use balsa_query::{Plan, Query};
use balsa_storage::Database;
use std::sync::Arc;
use std::time::Instant;

/// Greedy locally-best left-deep planner; see the module docs.
pub struct GreedyLeftDeepPlanner<'a> {
    db: &'a Database,
    scorer: &'a dyn PlanScorer,
    mode: SearchMode,
}

impl<'a> GreedyLeftDeepPlanner<'a> {
    /// Creates a greedy planner scoring through `scorer`.
    pub fn new(db: &'a Database, scorer: &'a dyn PlanScorer, mode: SearchMode) -> Self {
        Self { db, scorer, mode }
    }

    fn plan_impl(&self, query: &Query) -> Result<PlannedQuery, PlanError> {
        let t0 = Instant::now();
        let n = query.num_tables();
        if n == 0 || !query.subgraph_connected(query.all_mask()) {
            return Err(PlanError::DisconnectedGraph {
                query: query.name.clone(),
            });
        }
        let space = CandidateSpace::new(self.db, query, self.mode);
        let session = self.scorer.for_query(query);
        let mut stats = SearchStats::default();

        // Best scan per table (strict-< keeps the first minimum, so
        // ties resolve to the generator's scan order).
        let mut best_scans: Vec<(Arc<Plan>, ScoredTree)> = Vec::with_capacity(n);
        for qt in 0..n {
            let scored = space.scored_scan_plans(qt, &*session);
            stats.candidates += scored.len();
            stats.cost_calls += scored.len();
            let best = scored
                .into_iter()
                .reduce(|best, cand| {
                    if cand.1.score < best.1.score {
                        cand
                    } else {
                        best
                    }
                })
                .expect("every table has at least a sequential scan");
            best_scans.push(best);
        }

        // Start from the cheapest scan (lowest table index on ties).
        let start = (0..n)
            .reduce(|best, t| {
                if best_scans[t].1.score < best_scans[best].1.score {
                    t
                } else {
                    best
                }
            })
            .expect("n >= 1");
        let (mut cur_plan, mut cur_tree) = best_scans[start].clone();
        stats.states = 1;

        // n-1 locally-best extensions.
        while cur_plan.mask() != query.all_mask() {
            let mut best: Option<(Arc<Plan>, ScoredTree)> = None;
            for (t, (scan, scan_tree)) in best_scans.iter().enumerate() {
                if cur_plan.mask().contains(t) || !space.allows_join(&cur_plan, scan) {
                    continue;
                }
                for &op in space.join_ops() {
                    let cand = Plan::join(op, cur_plan.clone(), scan.clone());
                    let scored = session.score_join(&cand, &cur_tree, scan_tree);
                    stats.candidates += 1;
                    stats.cost_calls += 1;
                    if best.as_ref().is_none_or(|(_, b)| scored.score < b.score) {
                        best = Some((cand, scored));
                    }
                }
            }
            match best {
                Some((p, t)) => {
                    cur_plan = p;
                    cur_tree = t;
                    stats.states += 1;
                }
                // Unreachable after the up-front connectivity check,
                // but stay honest rather than panicking.
                None => {
                    return Err(PlanError::DisconnectedGraph {
                        query: query.name.clone(),
                    })
                }
            }
        }

        Ok(PlannedQuery {
            plan: cur_plan,
            cost: cur_tree.score,
            stats,
            planning_secs: t0.elapsed().as_secs_f64(),
        })
    }
}

impl Planner for GreedyLeftDeepPlanner<'_> {
    fn name(&self) -> String {
        let mode = match self.mode {
            SearchMode::Bushy => "bushy",
            SearchMode::LeftDeep => "leftdeep",
        };
        format!("greedy-{mode}/{}", self.scorer.name())
    }

    fn try_plan(&self, query: &Query) -> Result<PlannedQuery, PlanError> {
        let mut planned = self.plan_impl(query)?;
        // Scorer scores may be learned log-latencies (legitimately
        // negative), so only the structural checks run here.
        verify_emitted(&self.name(), query, &mut planned, None);
        Ok(planned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balsa_card::HistogramEstimator;
    use balsa_cost::{CostScorer, ExpertCostModel, OpWeights};
    use balsa_query::workloads::job_workload;
    use balsa_query::PlanShape;
    use balsa_storage::{mini_imdb, DataGenConfig};

    fn shape_of(plan: &Plan) -> PlanShape {
        let mut left_deep = true;
        plan.visit(&mut |p| {
            if let Plan::Join { right, .. } = p {
                if !right.is_scan() {
                    left_deep = false;
                }
            }
        });
        if left_deep {
            PlanShape::LeftDeep
        } else {
            PlanShape::Bushy
        }
    }

    #[test]
    fn greedy_plans_are_left_deep_complete_and_deterministic() {
        let db = Arc::new(mini_imdb(DataGenConfig {
            scale: 0.02,
            ..Default::default()
        }));
        let w = job_workload(db.catalog(), 5);
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        let est = HistogramEstimator::new(&db);
        let scorer = CostScorer::new(&model, &est);
        for mode in [SearchMode::Bushy, SearchMode::LeftDeep] {
            let planner = GreedyLeftDeepPlanner::new(&db, &scorer, mode);
            for q in &w.queries {
                let a = planner.try_plan(q).expect("connected query must plan");
                let b = planner.try_plan(q).expect("connected query must plan");
                assert_eq!(a.plan.mask(), q.all_mask(), "{}", q.name);
                assert_eq!(shape_of(&a.plan), PlanShape::LeftDeep, "{}", q.name);
                assert_eq!(a.plan.fingerprint(), b.plan.fingerprint(), "{}", q.name);
                assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "{}", q.name);
                assert!(a.cost.is_finite() && a.cost > 0.0, "{}", q.name);
                assert_eq!(a.stats.degraded_levels, 0);
                // O(n^2) bound: candidates are at most
                // (levels) x (tables x scans x ops).
                let n = q.num_tables();
                assert!(a.stats.candidates <= n * n * 6 + 2 * n, "{}", q.name);
            }
        }
    }
}
