//! Uniformly random valid plans — the exploration / sanity baseline.
//!
//! The paper's central qualitative claim is that the plan space is
//! dominated by disasters ("random plans are orders of magnitude
//! slower"); this sampler is how the tests and benchmarks draw from
//! that distribution. Moves come from the shared [`CandidateSpace`], so
//! a random plan is always *valid* (connected joins only, mode-legal
//! shape) but its join order and operators are arbitrary.

use crate::budget::verify_emitted;
use crate::candidates::CandidateSpace;
use crate::{PlanError, PlannedQuery, Planner, SearchMode, SearchStats};
use balsa_card::CardEstimator;
use balsa_cost::CostModel;
use balsa_query::{JoinOp, Plan, Query, TableMask};
use balsa_storage::Database;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Samples one uniformly random valid plan for `query`.
///
/// # Panics
/// Panics on a disconnected join graph; adversarial callers use
/// [`try_random_plan`].
pub fn random_plan(
    db: &Database,
    query: &Query,
    mode: SearchMode,
    rng: &mut SmallRng,
) -> Arc<Plan> {
    try_random_plan(db, query, mode, rng).unwrap_or_else(|e| panic!("{e}"))
}

/// Samples one uniformly random valid plan for `query`, or
/// [`PlanError::DisconnectedGraph`] when the sampler gets stuck with no
/// connected pair left to merge.
///
/// In [`SearchMode::Bushy`] the sampler repeatedly merges two random
/// connected trees; in [`SearchMode::LeftDeep`] it grows a single chain
/// from a random starting table (the only shape that cannot get stuck
/// on a connected graph, and the only one the mode admits). On
/// connected queries the RNG stream consumed is identical to what
/// [`random_plan`] always drew — the stuck checks run before any draw.
pub fn try_random_plan(
    db: &Database,
    query: &Query,
    mode: SearchMode,
    rng: &mut SmallRng,
) -> Result<Arc<Plan>, PlanError> {
    let space = CandidateSpace::new(db, query, mode);
    let n = query.num_tables();
    let disconnected = || PlanError::DisconnectedGraph {
        query: query.name.clone(),
    };
    if n == 0 {
        return Err(disconnected());
    }
    let random_scan = |qt: usize, rng: &mut SmallRng| {
        let scans = space.scan_plans(qt);
        scans[rng.random_range(0..scans.len())].clone()
    };
    let random_op = |rng: &mut SmallRng| JoinOp::ALL[rng.random_range(0..JoinOp::ALL.len())];

    match mode {
        SearchMode::Bushy => {
            let mut trees: Vec<Arc<Plan>> = (0..n).map(|qt| random_scan(qt, rng)).collect();
            while trees.len() > 1 {
                let mut pairs = Vec::new();
                for i in 0..trees.len() {
                    for j in 0..trees.len() {
                        if i != j && space.allows_join(&trees[i], &trees[j]) {
                            pairs.push((i, j));
                        }
                    }
                }
                if pairs.is_empty() {
                    return Err(disconnected());
                }
                let (i, j) = pairs[rng.random_range(0..pairs.len())];
                let joined = Plan::join(random_op(rng), trees[i].clone(), trees[j].clone());
                let (hi, lo) = (i.max(j), i.min(j));
                trees.swap_remove(hi);
                trees.swap_remove(lo);
                trees.push(joined);
            }
            Ok(trees.pop().expect("one tree remains"))
        }
        SearchMode::LeftDeep => {
            let start = rng.random_range(0..n);
            let mut plan = random_scan(start, rng);
            let mut remaining: Vec<usize> = (0..n).filter(|&t| t != start).collect();
            while !remaining.is_empty() {
                let joinable: Vec<usize> = remaining
                    .iter()
                    .copied()
                    .filter(|&t| query.connected(plan.mask(), TableMask::single(t)))
                    .collect();
                if joinable.is_empty() {
                    return Err(disconnected());
                }
                let t = joinable[rng.random_range(0..joinable.len())];
                remaining.retain(|&x| x != t);
                plan = Plan::join(random_op(rng), plan, random_scan(t, rng));
            }
            Ok(plan)
        }
    }
}

/// A planner that returns one seeded random valid plan per query.
pub struct RandomPlanner<'a> {
    db: &'a Database,
    cost: &'a dyn CostModel,
    est: &'a dyn CardEstimator,
    mode: SearchMode,
    seed: u64,
}

impl<'a> RandomPlanner<'a> {
    /// Creates a random planner. The sample is deterministic given
    /// `seed` and the query id.
    pub fn new(
        db: &'a Database,
        cost: &'a dyn CostModel,
        est: &'a dyn CardEstimator,
        mode: SearchMode,
        seed: u64,
    ) -> Self {
        Self {
            db,
            cost,
            est,
            mode,
            seed,
        }
    }
}

impl Planner for RandomPlanner<'_> {
    fn name(&self) -> String {
        format!("random/{}", self.cost.name())
    }

    fn try_plan(&self, query: &Query) -> Result<PlannedQuery, PlanError> {
        let start = Instant::now();
        let mut rng = SmallRng::seed_from_u64(self.seed ^ ((query.id as u64) << 17));
        let plan = try_random_plan(self.db, query, self.mode, &mut rng)?;
        let cost = self.cost.plan_cost(query, &plan, self.est);
        let mut planned = PlannedQuery {
            plan,
            cost,
            stats: SearchStats {
                states: 1,
                candidates: 1,
                cost_calls: 1,
                ..SearchStats::default()
            },
            planning_secs: start.elapsed().as_secs_f64(),
        };
        // Random plans are structurally valid by construction; the
        // verifier re-derives that independently. Costs of random plans
        // can be astronomically bad, so the cost check is skipped.
        verify_emitted(&self.name(), query, &mut planned, None);
        Ok(planned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balsa_query::workloads::job_workload;
    use balsa_storage::{mini_imdb, DataGenConfig};

    fn fixture() -> (Database, balsa_query::Workload) {
        let db = mini_imdb(DataGenConfig {
            scale: 0.02,
            ..Default::default()
        });
        let w = job_workload(db.catalog(), 7);
        (db, w)
    }

    #[test]
    fn random_plans_are_valid_and_diverse() {
        let (db, w) = fixture();
        let q = w.queries.iter().find(|q| q.num_tables() >= 5).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut fingerprints = std::collections::HashSet::new();
        for _ in 0..20 {
            let p = random_plan(&db, q, SearchMode::Bushy, &mut rng);
            assert_eq!(p.mask(), q.all_mask());
            p.visit(&mut |node| {
                if let Plan::Join { left, right, .. } = node {
                    assert!(q.connected(left.mask(), right.mask()), "cross product");
                }
            });
            fingerprints.insert(p.fingerprint());
        }
        assert!(fingerprints.len() > 5, "sampler is not diverse");
    }

    #[test]
    fn left_deep_random_plans_are_left_deep() {
        let (db, w) = fixture();
        let q = w.queries.iter().find(|q| q.num_tables() >= 5).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10 {
            let p = random_plan(&db, q, SearchMode::LeftDeep, &mut rng);
            assert!(p.is_left_deep());
            assert_eq!(p.mask(), q.all_mask());
        }
    }

    #[test]
    fn sampler_is_deterministic_given_seed() {
        let (db, w) = fixture();
        let q = &w.queries[0];
        let p1 = random_plan(&db, q, SearchMode::Bushy, &mut SmallRng::seed_from_u64(9));
        let p2 = random_plan(&db, q, SearchMode::Bushy, &mut SmallRng::seed_from_u64(9));
        assert_eq!(p1.fingerprint(), p2.fingerprint());
    }
}
