//! Shared planner scratch with a non-blocking local fallback.
//!
//! Both planners reuse expensive per-planner scratch (the DP's memo and
//! buckets, the beam's dedup seen-table) across queries, but a planner
//! may also be *shared* across a [`crate::WorkerPool`]'s workers, with
//! several `plan` calls in flight at once. Blocking on the scratch
//! mutex would serialize those calls and charge lock-wait to
//! `planning_secs`; instead, a call that finds the scratch busy runs on
//! a fresh local instance — scratch identity never affects results, so
//! the only cost is losing amortization for that one call.
//!
//! That `try_lock`-or-local pattern used to be hand-rolled in both
//! `DpPlanner` and `BeamPlanner`; [`SharedScratch`] hoists it into one
//! tested helper.

use parking_lot::Mutex;
use std::ops::{Deref, DerefMut};
use std::sync::MutexGuard;

/// A mutex-guarded scratch value whose acquisition never blocks:
/// contended callers get a fresh `T::default()` instead of waiting.
#[derive(Default)]
pub struct SharedScratch<T>(Mutex<T>);

impl<T: Default> SharedScratch<T> {
    /// Creates the scratch holding `T::default()`.
    pub fn new() -> Self {
        Self(Mutex::new(T::default()))
    }

    /// The shared scratch if it is free, a fresh local instance
    /// otherwise. Never blocks; mutations through a local guard are
    /// discarded when the guard drops (the shared instance is
    /// untouched), which is exactly right for per-call scratch.
    pub fn acquire(&self) -> ScratchGuard<'_, T> {
        match self.0.try_lock() {
            Some(guard) => ScratchGuard::Shared(guard),
            None => ScratchGuard::Local(T::default()),
        }
    }

    /// Blocking access to the shared instance — for tests and
    /// inspection, not for planning hot paths.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock()
    }
}

/// Either the shared scratch (exclusively held) or a per-call local
/// fallback; derefs to `T` either way.
pub enum ScratchGuard<'a, T> {
    /// The shared instance, exclusively held for this call.
    Shared(MutexGuard<'a, T>),
    /// A fresh fallback built because the shared instance was busy.
    Local(T),
}

impl<T> ScratchGuard<'_, T> {
    /// Whether this guard holds the shared instance (`false` = local
    /// fallback).
    pub fn is_shared(&self) -> bool {
        matches!(self, ScratchGuard::Shared(_))
    }
}

impl<T> Deref for ScratchGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match self {
            ScratchGuard::Shared(g) => g,
            ScratchGuard::Local(t) => t,
        }
    }
}

impl<T> DerefMut for ScratchGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match self {
            ScratchGuard::Shared(g) => g,
            ScratchGuard::Local(t) => t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_acquire_reuses_the_shared_instance() {
        let scratch: SharedScratch<Vec<u32>> = SharedScratch::new();
        {
            let mut g = scratch.acquire();
            assert!(g.is_shared());
            g.push(7);
        }
        // Mutations through the shared guard persist.
        let g = scratch.acquire();
        assert!(g.is_shared());
        assert_eq!(&*g, &[7]);
    }

    #[test]
    fn contended_acquire_falls_back_locally_without_blocking() {
        let scratch: SharedScratch<Vec<u32>> = SharedScratch::new();
        scratch.lock().push(1);
        let held = scratch.lock(); // simulate a plan call in flight
        std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    // Must complete while the lock is held — a blocking
                    // implementation would deadlock this scoped join.
                    let mut g = scratch.acquire();
                    assert!(!g.is_shared());
                    assert!(g.is_empty(), "fallback starts from default");
                    g.push(99);
                })
                .join()
                .expect("fallback acquire must not block or panic");
        });
        drop(held);
        // The local fallback's mutations never reached the shared state.
        assert_eq!(&*scratch.lock(), &[1]);
    }
}
