//! The exhaustive dynamic-programming enumerators.
//!
//! Classical bottom-up join enumeration (Selinger 1979), the expert
//! baseline the paper compares Balsa against. For every connected table
//! subset the planner keeps a **Pareto set** of entries keyed by output
//! order — the "interesting orders" of System R — because a subplan that
//! streams in a join key's order can make a later merge join skip its
//! sort. Entry `A` dominates entry `B` iff `A` costs no more *and*
//! offers a superset of `B`'s orders; join cost is additive in child
//! cost and monotone in child orders, so pruning dominated entries never
//! loses the optimum and the chosen plan matches brute-force enumeration
//! exactly.
//!
//! Two enumerators share that Pareto machinery:
//!
//! * [`DpPlanner`] — the production planner. DPccp-style
//!   connected-subgraph / connected-complement enumeration over the
//!   precomputed [`JoinGraph`] adjacency (only genuinely connected
//!   `(csg, cmp)` pairs are ever visited), a hash-indexed memo holding
//!   entries **only for connected subsets**, interesting-order sets
//!   packed into [`OrderMask`] bitmasks (dominance = two integer ops),
//!   and a scratch memo reused across queries. Sufficiently heavy DP
//!   levels can additionally fan their csg–cmp costing out across a
//!   [`WorkerPool`] ([`DpPlanner::with_pool`]) with results — plans,
//!   costs, frontiers, Vec order — **bit-identical** to the serial
//!   sweep for any thread count. This is the hot path the benchmarks
//!   measure.
//! * [`SubmaskDpPlanner`] — the original `3^n` submask-scan enumerator,
//!   retained verbatim as the correctness oracle: the property tests
//!   assert both planners produce bit-identical best-plan costs and
//!   identical Pareto frontiers on every workload query.
//!
//! Both hint spaces are supported: [`SearchMode::Bushy`] enumerates all
//! connected-subgraph/complement pairs, [`SearchMode::LeftDeep`] only
//! splits off single tables (CommDbSim, §8.2).

use crate::beam::BeamPlanner;
use crate::budget::verify_emitted;
use crate::candidates::CandidateSpace;
use crate::enumerate::JoinGraph;
use crate::greedy::GreedyLeftDeepPlanner;
use crate::pool::WorkerPool;
use crate::scratch::SharedScratch;
use crate::{
    MemoEstimator, PlanBudget, PlanError, PlannedQuery, Planner, SearchMode, SearchStats,
    FALLBACK_BEAM_WIDTH,
};
use balsa_card::CardEstimator;
use balsa_cost::{CostModel, CostScorer, OrderInterner, OrderMask, OrderSource, SubtreeCost};
use balsa_query::{Plan, Query, ScanOp, TableMask};
use balsa_storage::Database;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// One Pareto entry: the cheapest known subplan producing its exact
/// output-order set (packed through the query's [`OrderInterner`]).
struct Entry {
    plan: Arc<Plan>,
    sc: SubtreeCost,
    orders: OrderMask,
}

/// A Pareto set with its dominance keys `(work, orders)` in a compact
/// parallel array, so the per-candidate reject-scan streams 32-byte
/// records instead of chasing plan pointers. Dominance is two integer
/// ops per comparison: `work` compare + order-mask superset test.
#[derive(Default)]
struct ParetoSet {
    keys: Vec<(f64, OrderMask)>,
    entries: Vec<Entry>,
}

impl ParetoSet {
    /// Whether a candidate with this key is dominated by the set.
    #[inline]
    fn dominates(&self, work: f64, orders: OrderMask) -> bool {
        self.keys
            .iter()
            .any(|&(w, o)| w <= work && o.contains_all(orders))
    }

    /// Cheapest work among entries whose orders cover `orders` —
    /// the dominance threshold for a whole class of candidates
    /// (`f64::INFINITY` when none covers it). Any candidate of this
    /// order class whose work reaches the threshold is dominated.
    fn dominance_threshold(&self, orders: OrderMask) -> f64 {
        self.keys
            .iter()
            .filter(|(_, o)| o.contains_all(orders))
            .map(|&(w, _)| w)
            .fold(f64::INFINITY, f64::min)
    }

    /// Inserts an **undominated** entry, dropping entries it dominates
    /// (order-preserving). Callers check [`ParetoSet::dominates`] first.
    fn insert_undominated(&mut self, entry: Entry) {
        let (work, orders) = (entry.sc.work, entry.orders);
        let mut i = 0;
        while i < self.keys.len() {
            let (w, o) = self.keys[i];
            if work <= w && orders.contains_all(o) {
                self.keys.remove(i);
                self.entries.remove(i);
            } else {
                i += 1;
            }
        }
        self.keys.push((work, orders));
        self.entries.push(entry);
    }

    /// Inserts `cand`, dropping dominated entries. Returns whether the
    /// candidate survived.
    fn insert(&mut self, cand: Entry) -> bool {
        if self.dominates(cand.sc.work, cand.orders) {
            return false;
        }
        self.insert_undominated(cand);
        true
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn clear(&mut self) {
        self.keys.clear();
        self.entries.clear();
    }
}

/// One element of a reported Pareto frontier: subtree work plus the
/// sorted, deduplicated interesting-order set. The cross-enumerator
/// property tests compare these for exact (bitwise) equality.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierEntry {
    /// Total subtree work.
    pub work: f64,
    /// Output orders, sorted and deduplicated.
    pub orders: Vec<(usize, usize)>,
}

/// Canonicalizes a frontier: per-entry order sets sorted + deduped, the
/// frontier sorted by (work, orders).
fn canonical_frontier(
    entries: impl Iterator<Item = (f64, Vec<(usize, usize)>)>,
) -> Vec<FrontierEntry> {
    let mut out: Vec<FrontierEntry> = entries
        .map(|(work, sorted_on)| {
            let set: BTreeSet<(usize, usize)> = sorted_on.into_iter().collect();
            FrontierEntry {
                work,
                orders: set.into_iter().collect(),
            }
        })
        .collect();
    out.sort_by(|a, b| {
        a.work
            .total_cmp(&b.work)
            .then_with(|| a.orders.cmp(&b.orders))
    });
    out
}

/// A [`CardEstimator`] with one union's cardinality pinned on the stack.
///
/// Every candidate generated for one csg–cmp pair asks the estimator for
/// exactly the same union cardinality; resolving it once per pair turns
/// the per-candidate lookup (a mutex + hash probe inside
/// [`MemoEstimator`]) into two word compares. All other masks forward to
/// the memo unchanged.
struct PinnedCard<'a> {
    inner: &'a MemoEstimator<'a>,
    mask: TableMask,
    card: f64,
}

impl<'a> PinnedCard<'a> {
    fn new(inner: &'a MemoEstimator<'a>, query: &Query, mask: TableMask) -> Self {
        Self {
            inner,
            mask,
            card: inner.cardinality(query, mask),
        }
    }
}

impl CardEstimator for PinnedCard<'_> {
    fn cardinality(&self, query: &Query, mask: TableMask) -> f64 {
        if mask == self.mask {
            self.card
        } else {
            self.inner.cardinality(query, mask)
        }
    }

    fn base_rows(&self, query: &Query, qt: usize) -> f64 {
        self.inner.base_rows(query, qt)
    }
}

/// The complete universe of interesting orders `query` can surface,
/// sorted: every `(qt, col)` that can appear in a `sorted_on` list is
/// either a join-edge endpoint or an indexed column of a referenced
/// table. Cheap (one pass over edges + catalog columns), computed once
/// per query — its length decides whether the 128-bit order interner
/// suffices, and pre-interning it makes the interner **read-only**
/// during planning, so parallel DP levels can share it by reference.
/// Sorted so order-bit assignment is a pure function of the query (bit
/// identity never depends on enumeration or hash-iteration order).
fn order_universe(db: &Database, query: &Query) -> Vec<(usize, usize)> {
    let mut universe: BTreeSet<(usize, usize)> = BTreeSet::new();
    for e in &query.joins {
        universe.insert((e.left_qt, e.left_col));
        universe.insert((e.right_qt, e.right_col));
    }
    for (qt, t) in query.tables.iter().enumerate() {
        for (ci, c) in db.catalog().table(t.table).columns.iter().enumerate() {
            if c.indexed {
                universe.insert((qt, ci));
            }
        }
    }
    universe.into_iter().collect()
}

/// Picks the cheapest entry of a full-mask Pareto set (`None` when the
/// set is empty — a disconnected join graph).
fn best_of(entries: &ParetoSet) -> Option<&Entry> {
    entries
        .entries
        .iter()
        .min_by(|a, b| a.sc.work.partial_cmp(&b.sc.work).expect("finite costs"))
}

/// Degrades a budget-exhausted DP call through the rest of the fallback
/// chain: width-[`FALLBACK_BEAM_WIDTH`] beam search first, then the
/// always-terminating greedy floor. Every stage is re-armed with the
/// full budget, scores through a [`CostScorer`] over the same cost
/// model + estimator, and records its fallback depth honestly in
/// [`SearchStats::degraded_levels`].
fn fallback_chain(
    db: &Database,
    cost: &dyn CostModel,
    est: &dyn CardEstimator,
    mode: SearchMode,
    budget: PlanBudget,
    query: &Query,
) -> Result<PlannedQuery, PlanError> {
    let scorer = CostScorer::new(cost, est);
    let beam = BeamPlanner::new(db, &scorer, mode, FALLBACK_BEAM_WIDTH).with_budget(budget);
    match beam.try_plan_raw(query) {
        Ok(mut p) => {
            p.stats.degraded_levels = 1;
            p.stats.budget_exhausted = true;
            Ok(p)
        }
        Err(PlanError::BudgetExhausted { .. }) => {
            let greedy = GreedyLeftDeepPlanner::new(db, &scorer, mode);
            let mut p = greedy.try_plan(query)?;
            p.stats.degraded_levels = 2;
            p.stats.budget_exhausted = true;
            Ok(p)
        }
        Err(e) => Err(e),
    }
}

// ---------------------------------------------------------------------------
// DPccp planner
// ---------------------------------------------------------------------------

/// Reusable per-planner scratch: the hash-indexed memo (slots exist only
/// for connected subsets actually touched), the per-query order
/// interner, and the enumeration buckets. Cleared — allocations kept —
/// between queries, so a planner amortizes its heap across a workload.
#[derive(Default)]
struct DpScratch {
    interner: OrderInterner,
    /// Connected mask -> dense slot index into `entries`.
    slot_of: HashMap<u32, u32>,
    /// Pareto sets, indexed by slot. `entries[used..]` are retired
    /// (empty, capacity retained) sets from earlier queries.
    entries: Vec<ParetoSet>,
    used: usize,
    /// Bushy mode: unordered csg–cmp pairs bucketed by union size.
    pair_buckets: Vec<Vec<(u32, u32)>>,
    /// Left-deep mode: connected masks bucketed by size.
    csg_buckets: Vec<Vec<u32>>,
}

impl DpScratch {
    /// Resets for the next query, retaining every allocation.
    fn reset(&mut self, n: usize) {
        self.interner.clear();
        self.slot_of.clear();
        for set in self.entries.iter_mut().take(self.used) {
            set.clear();
        }
        self.used = 0;
        for b in &mut self.pair_buckets {
            b.clear();
        }
        if self.pair_buckets.len() < n + 1 {
            self.pair_buckets.resize_with(n + 1, Vec::new);
        }
        for b in &mut self.csg_buckets {
            b.clear();
        }
        if self.csg_buckets.len() < n + 1 {
            self.csg_buckets.resize_with(n + 1, Vec::new);
        }
    }

    /// Slot for `mask`, allocating (or recycling a retired Vec) on first
    /// sight.
    fn slot(&mut self, mask: u32) -> usize {
        match self.slot_of.entry(mask) {
            std::collections::hash_map::Entry::Occupied(o) => *o.get() as usize,
            std::collections::hash_map::Entry::Vacant(v) => {
                let slot = self.used;
                if slot == self.entries.len() {
                    self.entries.push(ParetoSet::default());
                }
                self.used += 1;
                v.insert(slot as u32);
                slot
            }
        }
    }
}

/// Default parallelization threshold: a level whose estimated combine
/// work (Σ |left Pareto| × |right Pareto| over its pairs, both
/// orientations) falls below this runs serially. With the persistent
/// [`WorkerPool`] a fan-out costs one lock + condvar wake
/// (sub-microsecond) instead of per-call `thread::spawn`s (tens of
/// microseconds each), so the threshold dropped 8192 → 256: only
/// levels too small to amortize even a wake — a few microseconds of
/// serial costing — stay serial. Estimated products, not final
/// candidates (each product expands by the join-op count).
const DEFAULT_PAR_CUTOFF: usize = 256;

/// The production DP planner: DPccp enumeration + bitmask Pareto sets.
pub struct DpPlanner<'a> {
    db: &'a Database,
    cost: &'a dyn CostModel,
    est: &'a dyn CardEstimator,
    mode: SearchMode,
    pool: WorkerPool,
    par_cutoff: usize,
    budget: PlanBudget,
    scratch: SharedScratch<DpScratch>,
}

impl<'a> DpPlanner<'a> {
    /// Creates a DP planner scoring plans with `cost` over `est`.
    pub fn new(
        db: &'a Database,
        cost: &'a dyn CostModel,
        est: &'a dyn CardEstimator,
        mode: SearchMode,
    ) -> Self {
        Self {
            db,
            cost,
            est,
            mode,
            pool: WorkerPool::new(1),
            par_cutoff: DEFAULT_PAR_CUTOFF,
            budget: PlanBudget::UNLIMITED,
            scratch: SharedScratch::new(),
        }
    }

    /// Arms a [`PlanBudget`]. Checks happen only at deterministic level
    /// boundaries on thread-invariant counters (candidates + pairs,
    /// live Pareto entries), so whether — and where — the budget fires
    /// is bit-reproducible and independent of thread count. The default
    /// [`PlanBudget::UNLIMITED`] is bit-identical to not checking at
    /// all.
    pub fn with_budget(mut self, budget: PlanBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Runs each sufficiently heavy DP level's csg–cmp costing across
    /// `pool` (intra-query parallelism). Results are **bit-identical**
    /// to the serial planner for any pool size: workers cost disjoint
    /// pairs into pair-local Pareto sets, and the main thread replays
    /// those sets into the memo in deterministic enumeration order —
    /// see the bit-identity property tests.
    pub fn with_pool(mut self, pool: WorkerPool) -> Self {
        self.pool = pool;
        self
    }

    /// Overrides the estimated-work threshold above which a level is
    /// costed in parallel (default [`DEFAULT_PAR_CUTOFF`], now small
    /// enough that nearly every multi-pair level of a real query fans
    /// out). `0` forces every multi-pair level through the parallel
    /// path — useful for exercising it on small test queries; it never
    /// changes results, only where the work runs.
    pub fn with_parallel_cutoff(mut self, cutoff: usize) -> Self {
        self.par_cutoff = cutoff;
        self
    }

    /// Plans `query` and additionally returns the full-mask Pareto
    /// frontier in canonical form (for cross-enumerator equality tests).
    ///
    /// # Panics
    /// Panics on any [`PlanError`]; adversarial callers use
    /// [`DpPlanner::try_plan_with_frontier`].
    pub fn plan_with_frontier(&self, query: &Query) -> (PlannedQuery, Vec<FrontierEntry>) {
        self.try_plan_with_frontier(query)
            .unwrap_or_else(|e| panic!("{}: {e}", self.name()))
    }

    /// The raw, chain-free entry point: plans `query` with the frontier
    /// attached, surfacing [`PlanError::BudgetExhausted`] instead of
    /// degrading through the fallback chain ([`Planner::try_plan`] does
    /// that).
    pub fn try_plan_with_frontier(
        &self,
        query: &Query,
    ) -> Result<(PlannedQuery, Vec<FrontierEntry>), PlanError> {
        self.run(query, true)
    }

    /// Whether a level with the given estimated per-unit combine work
    /// (Pareto-set size products) is worth fanning out over the pool.
    /// Short-circuits: a serial pool never evaluates the estimate.
    fn level_runs_parallel(&self, est_ops: impl Iterator<Item = usize>) -> bool {
        self.pool.threads() > 1 && est_ops.sum::<usize>() >= self.par_cutoff
    }

    fn run(
        &self,
        query: &Query,
        want_frontier: bool,
    ) -> Result<(PlannedQuery, Vec<FrontierEntry>), PlanError> {
        let start = Instant::now();
        let n = query.num_tables();
        if n == 0 {
            return Err(PlanError::DisconnectedGraph {
                query: query.name.clone(),
            });
        }
        // The interner packs order sets into 128 bits. A query whose
        // order universe could overflow that (≥ 22 tables of ≥ 6
        // indexed/edge columns each) routes to the BTreeSet-based
        // submask enumerator, which has no such cap — exactly the
        // pre-DPccp behavior for such queries, keeping `plan` total
        // where it used to be. (A DPccp variant with uncapped set-based
        // order keys would serve sparse many-column giants better; see
        // ROADMAP "Planner perf, next round".)
        let universe = order_universe(self.db, query);
        if universe.len() > 128 {
            return SubmaskDpPlanner::new(self.db, self.cost, self.est, self.mode)
                .with_budget(self.budget)
                .try_plan_with_frontier(query);
        }
        let space = CandidateSpace::new(self.db, query, self.mode);
        let memo = MemoEstimator::new(self.est);
        let mut stats = SearchStats::default();
        // Reuse the planner's scratch when it is free; under concurrent
        // `plan` calls (one planner shared across a worker pool) fall
        // back to a fresh local scratch instead of blocking, so
        // parallel planning never serializes and `planning_secs` never
        // includes lock-wait. Scratch identity does not affect results.
        let mut guard = self.scratch.acquire();
        let s: &mut DpScratch = &mut guard;
        s.reset(n);
        // Pre-intern the whole (sorted) order universe: bit assignment
        // becomes a pure function of the query and the interner is
        // read-only for the rest of planning — parallel level workers
        // derive masks through `&OrderInterner` with no synchronization.
        s.interner.intern(&universe);

        // ---- Enumeration phase: adjacency + connected pairs only ----
        let graph = JoinGraph::new(query);
        match self.mode {
            SearchMode::Bushy => {
                graph.for_each_csg_cmp(&mut |a, b| {
                    let size = a.union(b).count() as usize;
                    s.pair_buckets[size].push((a.0, b.0));
                    // Each unordered pair is combined in both orientations.
                    stats.pairs += 2;
                });
            }
            SearchMode::LeftDeep => {
                graph.for_each_csg(&mut |m| {
                    s.csg_buckets[m.count() as usize].push(m.0);
                });
                // Left-deep combines are counted as they run (only
                // splits whose remainder is connected qualify).
            }
        }
        stats.enumerate_secs = start.elapsed().as_secs_f64();

        // ---- Costing phase ----
        let t_cost = Instant::now();

        // Budget boundary check: thread-invariant work (candidates +
        // pairs; `cost_calls` deliberately excluded — it depends on how
        // a level was partitioned) against live Pareto entries,
        // evaluated only *between* levels, never inside one, so
        // parallel and serial sweeps make bit-identical decisions.
        let check_budget = |s: &DpScratch, stats: &SearchStats| -> Result<(), PlanError> {
            if self.budget.is_unlimited() {
                return Ok(());
            }
            let live = s.entries[..s.used].iter().map(ParetoSet::len).sum();
            self.budget
                .check("dp", query, (stats.candidates + stats.pairs) as u64, live)
        };

        // Base case: scan candidates per table.
        for qt in 0..n {
            let slot = s.slot(1u32 << qt);
            for scan in space.scan_plans(qt) {
                let sc = self.cost.scan_summary(query, &scan, &memo);
                stats.candidates += 1;
                stats.cost_calls += 1;
                let orders = s.interner.mask_of_cost(&sc);
                s.entries[slot].insert(Entry {
                    plan: scan,
                    sc,
                    orders,
                });
            }
        }

        // Bottom-up by subset size: every pair's sides are strictly
        // smaller than its union, so their Pareto sets are final — which
        // is also what makes a level's pairs independent units of work.
        //
        // A level heavy enough to beat the pool's fan-out cost (see
        // `par_cutoff`) is costed in parallel: each worker combines its
        // pairs into **pair-local** Pareto sets against the (read-only)
        // lower levels, then the main thread replays every local set
        // into the memo in deterministic enumeration order. Replaying a
        // candidate stream through `ParetoSet::insert` yields exactly
        // the first-occurring dominance-maximal candidates in stream
        // order, and local sets preserve their pairs' candidate order,
        // so the merged memo — entries, costs, Vec order — is
        // bit-identical to one serial sweep. Workers prune against the
        // pair-local frontier only (weaker thresholds than the serial
        // shared-target sweep), so they may *cost* more candidates, but
        // never admit or order them differently; only `cost_calls`
        // reflects the partitioning.
        check_budget(s, &stats)?;
        for size in 2..=n {
            match self.mode {
                SearchMode::Bushy => {
                    let bucket = std::mem::take(&mut s.pair_buckets[size]);
                    if bucket.len() >= 2
                        && self.level_runs_parallel(bucket.iter().map(|&(a, b)| {
                            let la = s.entries[s.slot_of[&a] as usize].len();
                            let lb = s.entries[s.slot_of[&b] as usize].len();
                            2 * la * lb
                        }))
                    {
                        stats.parallel_items += bucket.len();
                        let shared: &DpScratch = s;
                        let results = self.pool.steal_map(&bucket, 1, |_, &(a, b)| {
                            let sa = shared.slot_of[&a] as usize;
                            let sb = shared.slot_of[&b] as usize;
                            let mut local = ParetoSet::default();
                            let mut lstats = SearchStats::default();
                            for (l, r, lm, rm) in [(sa, sb, a, b), (sb, sa, b, a)] {
                                combine(
                                    &space,
                                    self.cost,
                                    query,
                                    &memo,
                                    TableMask(lm),
                                    TableMask(rm),
                                    &shared.entries[l],
                                    &shared.entries[r],
                                    &mut local,
                                    &shared.interner,
                                    &mut lstats,
                                );
                            }
                            (local, lstats)
                        });
                        for (&(a, b), (local, lstats)) in bucket.iter().zip(results) {
                            stats.candidates += lstats.candidates;
                            stats.cost_calls += lstats.cost_calls;
                            let target = s.slot(a | b);
                            let cur = &mut s.entries[target];
                            if cur.len() == 0 {
                                *cur = local;
                            } else {
                                for e in local.entries {
                                    cur.insert(e);
                                }
                            }
                        }
                    } else {
                        for &(a, b) in &bucket {
                            let sa = *s.slot_of.get(&a).expect("csg side already memoized");
                            let sb = *s.slot_of.get(&b).expect("cmp side already memoized");
                            let target = s.slot(a | b);
                            let mut cur = std::mem::take(&mut s.entries[target]);
                            for (l, r, lm, rm) in [(sa, sb, a, b), (sb, sa, b, a)] {
                                combine(
                                    &space,
                                    self.cost,
                                    query,
                                    &memo,
                                    TableMask(lm),
                                    TableMask(rm),
                                    &s.entries[l as usize],
                                    &s.entries[r as usize],
                                    &mut cur,
                                    &s.interner,
                                    &mut stats,
                                );
                            }
                            s.entries[target] = cur;
                        }
                    }
                    // Hand the bucket Vec back so its allocation is
                    // reused by the next query.
                    s.pair_buckets[size] = bucket;
                }
                SearchMode::LeftDeep => {
                    let bucket = std::mem::take(&mut s.csg_buckets[size]);
                    if bucket.len() >= 2
                        && self.level_runs_parallel(bucket.iter().map(|&mask| {
                            // Slight overestimate (skips the connectivity
                            // filter) — fine for a fan-out heuristic.
                            TableMask(mask)
                                .iter()
                                .map(|t| {
                                    let rest = mask & !(1u32 << t);
                                    s.slot_of.get(&rest).map_or(0, |&sr| {
                                        s.entries[sr as usize].len()
                                            * s.entries[s.slot_of[&(1u32 << t)] as usize].len()
                                    })
                                })
                                .sum()
                        }))
                    {
                        stats.parallel_items += bucket.len();
                        let shared: &DpScratch = s;
                        let graph = &graph;
                        let results = self.pool.steal_map(&bucket, 1, |_, &mask| {
                            let mut local = ParetoSet::default();
                            let mut lstats = SearchStats::default();
                            for t in TableMask(mask).iter() {
                                let rest = mask & !(1u32 << t);
                                let Some(&sr) = shared.slot_of.get(&rest) else {
                                    continue;
                                };
                                if !graph.connected_between(TableMask(rest), TableMask::single(t)) {
                                    continue;
                                }
                                let st = shared.slot_of[&(1u32 << t)] as usize;
                                lstats.pairs += 1;
                                combine(
                                    &space,
                                    self.cost,
                                    query,
                                    &memo,
                                    TableMask(rest),
                                    TableMask::single(t),
                                    &shared.entries[sr as usize],
                                    &shared.entries[st],
                                    &mut local,
                                    &shared.interner,
                                    &mut lstats,
                                );
                            }
                            (local, lstats)
                        });
                        for (&mask, (local, lstats)) in bucket.iter().zip(results) {
                            stats.pairs += lstats.pairs;
                            stats.candidates += lstats.candidates;
                            stats.cost_calls += lstats.cost_calls;
                            // Each left-deep mask has its own target, so
                            // the local set *is* the level result.
                            let target = s.slot(mask);
                            s.entries[target] = local;
                        }
                    } else {
                        for &mask in &bucket {
                            let target = s.slot(mask);
                            let mut cur = std::mem::take(&mut s.entries[target]);
                            for t in TableMask(mask).iter() {
                                let rest = mask & !(1u32 << t);
                                // The remainder must itself be connected
                                // (a memo slot exists for every connected
                                // csg of smaller size) and share an edge
                                // with `t`.
                                let Some(&sr) = s.slot_of.get(&rest) else {
                                    continue;
                                };
                                if !graph.connected_between(TableMask(rest), TableMask::single(t)) {
                                    continue;
                                }
                                let st = *s.slot_of.get(&(1u32 << t)).expect("scan slot");
                                stats.pairs += 1;
                                combine(
                                    &space,
                                    self.cost,
                                    query,
                                    &memo,
                                    TableMask(rest),
                                    TableMask::single(t),
                                    &s.entries[sr as usize],
                                    &s.entries[st as usize],
                                    &mut cur,
                                    &s.interner,
                                    &mut stats,
                                );
                            }
                            s.entries[target] = cur;
                        }
                    }
                    s.csg_buckets[size] = bucket;
                }
            }
            check_budget(s, &stats)?;
        }
        stats.cost_secs = t_cost.elapsed().as_secs_f64();

        stats.states = s.entries[..s.used].iter().map(ParetoSet::len).sum();
        let full = TableMask::all(n).0;
        let disconnected = || PlanError::DisconnectedGraph {
            query: query.name.clone(),
        };
        let full_slot = *s.slot_of.get(&full).ok_or_else(disconnected)?;
        let full_entries = &s.entries[full_slot as usize];
        let best = best_of(full_entries).ok_or_else(disconnected)?;
        let mut planned = PlannedQuery {
            plan: best.plan.clone(),
            cost: best.sc.work,
            stats,
            planning_secs: start.elapsed().as_secs_f64(),
        };
        let frontier = if want_frontier {
            canonical_frontier(
                full_entries
                    .entries
                    .iter()
                    .map(|e| (e.sc.work, e.sc.sorted_on.clone())),
            )
        } else {
            Vec::new()
        };
        drop(guard);
        // DP costs are real model costs (not scorer log-latencies), so
        // the verifier also checks the reported cost is finite,
        // positive, and under the clamp ceiling.
        let cost = planned.cost;
        verify_emitted(&self.name(), query, &mut planned, Some(cost));
        Ok((planned, frontier))
    }
}

/// Combines every (left entry, right entry, join op) candidate into
/// `cur`'s Pareto set. Orientation is fixed by the caller; connectivity
/// and disjointness hold by construction of the enumeration, and the
/// left-deep right side is always a single-table slot, so the
/// [`CandidateSpace`] mode filter is already satisfied.
///
/// The hot path runs through the cost model's [`PairCoster`] session:
/// per candidate it is a virtual work call, an order-mask derivation
/// (two integer ops for hash/NL), and the dominance reject-scan — no
/// allocation at all until a candidate survives. Models without a
/// session fall back to [`CostModel::join_summary_parts`] per candidate
/// (with the union cardinality pinned).
///
/// The interner is **read-only** (the whole order universe is interned
/// before costing starts), which is what lets parallel level workers
/// call `combine` concurrently against one shared scratch.
// The parameter list is the DP inner-loop context; a struct would be
// rebuilt per bucket for no gain.
#[allow(clippy::too_many_arguments)]
fn combine(
    space: &CandidateSpace<'_>,
    cost: &dyn CostModel,
    query: &Query,
    memo: &MemoEstimator<'_>,
    lmask: TableMask,
    rmask: TableMask,
    left: &ParetoSet,
    right: &ParetoSet,
    cur: &mut ParetoSet,
    interner: &OrderInterner,
    stats: &mut SearchStats,
) {
    if let Some(coster) = cost.pair_coster(query, lmask, rmask, memo) {
        // Resolve each operator's order semantics once per orientation;
        // the session-constant order list is interned at most once.
        let ops = space.join_ops();
        let mut sources = [OrderSource::Empty; 8];
        assert!(ops.len() <= sources.len(), "more join ops than expected");
        for (i, &op) in ops.iter().enumerate() {
            sources[i] = coster.order_source(op);
        }
        let mut pair_mask: Option<OrderMask> = None;
        // Cached dominance thresholds per order class. A candidate's
        // order mask is known *before* costing, and (for models that
        // declare it) work is child-monotone, so
        // `threshold <= lc.work + rc.work` rejects a candidate without
        // the costing call at all. Stale values are only ever too high
        // (inserts can only lower a threshold), and every insert
        // refreshes them, so the early reject is exact.
        let monotone = coster.child_monotone();
        let mut thresh_empty = cur.dominance_threshold(OrderMask::EMPTY);
        let mut thresh_pair = f64::INFINITY;
        let mut thresh_pair_valid = false;
        for le in &left.entries {
            let mut thresh_left = cur.dominance_threshold(le.orders);
            for re in &right.entries {
                debug_assert!(space.allows_join(&le.plan, &re.plan));
                let right_index_scan = matches!(
                    &*re.plan,
                    Plan::Scan {
                        op: ScanOp::Index,
                        ..
                    }
                );
                let base = le.sc.work + re.sc.work;
                for (i, &op) in ops.iter().enumerate() {
                    stats.candidates += 1;
                    let (orders, thresh) = match sources[i] {
                        OrderSource::Empty => (OrderMask::EMPTY, thresh_empty),
                        OrderSource::LeftInput => (le.orders, thresh_left),
                        OrderSource::Pair => {
                            let m = *pair_mask
                                .get_or_insert_with(|| interner.mask_of(coster.pair_sorted_on()));
                            if !thresh_pair_valid {
                                thresh_pair = cur.dominance_threshold(m);
                                thresh_pair_valid = true;
                            }
                            (m, thresh_pair)
                        }
                    };
                    if monotone && thresh <= base {
                        continue; // dominated whatever the exact work is
                    }
                    stats.cost_calls += 1;
                    let (work, out_rows) = coster.work_out(op, &le.sc, &re.sc, right_index_scan);
                    if cur.dominates(work, orders) {
                        continue;
                    }
                    let sorted_on = match sources[i] {
                        OrderSource::Empty => Vec::new(),
                        OrderSource::LeftInput => le.sc.sorted_on.clone(),
                        OrderSource::Pair => coster.pair_sorted_on().to_vec(),
                    };
                    let plan = Plan::join(op, le.plan.clone(), re.plan.clone());
                    cur.insert_undominated(Entry {
                        plan,
                        sc: SubtreeCost {
                            work,
                            out_rows,
                            sorted_on,
                        },
                        orders,
                    });
                    // Inserts are rare; refresh every cached threshold.
                    thresh_empty = cur.dominance_threshold(OrderMask::EMPTY);
                    thresh_left = cur.dominance_threshold(le.orders);
                    if let Some(m) = pair_mask {
                        thresh_pair = cur.dominance_threshold(m);
                    }
                }
            }
        }
        return;
    }
    // Fallback for models without a pair session: per-candidate summary
    // with the union cardinality pinned.
    let pinned = PinnedCard::new(memo, query, lmask.union(rmask));
    for le in &left.entries {
        for re in &right.entries {
            debug_assert!(space.allows_join(&le.plan, &re.plan));
            for &op in space.join_ops() {
                let sc =
                    cost.join_summary_parts(query, op, &le.plan, &le.sc, &re.plan, &re.sc, &pinned);
                stats.candidates += 1;
                stats.cost_calls += 1;
                let orders = interner.mask_of_cost(&sc);
                if cur.dominates(sc.work, orders) {
                    continue;
                }
                let plan = Plan::join(op, le.plan.clone(), re.plan.clone());
                cur.insert_undominated(Entry { plan, sc, orders });
            }
        }
    }
}

impl Planner for DpPlanner<'_> {
    fn name(&self) -> String {
        match self.mode {
            SearchMode::Bushy => format!("dp-bushy/{}", self.cost.name()),
            SearchMode::LeftDeep => format!("dp-leftdeep/{}", self.cost.name()),
        }
    }

    fn try_plan(&self, query: &Query) -> Result<PlannedQuery, PlanError> {
        let t0 = Instant::now();
        match self.run(query, false) {
            Ok((planned, _)) => Ok(planned),
            Err(PlanError::BudgetExhausted { .. }) => {
                let mut p =
                    fallback_chain(self.db, self.cost, self.est, self.mode, self.budget, query)?;
                // The chain's wall clock includes the exhausted DP
                // attempt — honest accounting for SimClock charging.
                p.planning_secs = t0.elapsed().as_secs_f64();
                Ok(p)
            }
            Err(e) => Err(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Submask-scan reference planner
// ---------------------------------------------------------------------------

/// Reference entry: orders as the original `BTreeSet` representation.
struct RefEntry {
    plan: Arc<Plan>,
    sc: SubtreeCost,
    orders: BTreeSet<(usize, usize)>,
}

fn ref_pareto_insert(entries: &mut Vec<RefEntry>, cand: RefEntry) -> bool {
    for e in entries.iter() {
        if e.sc.work <= cand.sc.work && e.orders.is_superset(&cand.orders) {
            return false;
        }
    }
    entries.retain(|e| !(cand.sc.work <= e.sc.work && cand.orders.is_superset(&e.orders)));
    entries.push(cand);
    true
}

/// The original `3^n` submask-scan DP, retained as the correctness
/// oracle for [`DpPlanner`]: it visits every `(submask, complement)`
/// split of every subset and filters by a precomputed `2^n`
/// connectivity table. Slow on 14-table queries (that is why it was
/// replaced) but embarrassingly simple — the property tests assert the
/// DPccp planner matches it bit-for-bit.
///
/// Its [`SearchStats`] timing breakdown (`enumerate_secs`/`cost_secs`)
/// stays zero: enumeration and costing interleave per submask, so the
/// split is not measurable without per-iteration timers.
pub struct SubmaskDpPlanner<'a> {
    db: &'a Database,
    cost: &'a dyn CostModel,
    est: &'a dyn CardEstimator,
    mode: SearchMode,
    budget: PlanBudget,
}

impl<'a> SubmaskDpPlanner<'a> {
    /// Creates the reference planner.
    pub fn new(
        db: &'a Database,
        cost: &'a dyn CostModel,
        est: &'a dyn CardEstimator,
        mode: SearchMode,
    ) -> Self {
        Self {
            db,
            cost,
            est,
            mode,
            budget: PlanBudget::UNLIMITED,
        }
    }

    /// Arms a [`PlanBudget`], checked after each finalized mask (this
    /// enumerator is serial, so every mask end is a deterministic
    /// boundary).
    pub fn with_budget(mut self, budget: PlanBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Plans `query` and returns the canonical full-mask Pareto frontier.
    ///
    /// # Panics
    /// Panics on any [`PlanError`]; adversarial callers use
    /// [`SubmaskDpPlanner::try_plan_with_frontier`].
    pub fn plan_with_frontier(&self, query: &Query) -> (PlannedQuery, Vec<FrontierEntry>) {
        self.try_plan_with_frontier(query)
            .unwrap_or_else(|e| panic!("{}: {e}", self.name()))
    }

    /// The raw, chain-free entry point: surfaces
    /// [`PlanError::BudgetExhausted`] instead of degrading through the
    /// fallback chain.
    pub fn try_plan_with_frontier(
        &self,
        query: &Query,
    ) -> Result<(PlannedQuery, Vec<FrontierEntry>), PlanError> {
        let start = Instant::now();
        let n = query.num_tables();
        if n == 0 {
            return Err(PlanError::DisconnectedGraph {
                query: query.name.clone(),
            });
        }
        let space = CandidateSpace::new(self.db, query, self.mode);
        let memo = MemoEstimator::new(self.est);
        let connected = space.connected_table();
        let mut stats = SearchStats::default();

        // Eager table over all 2^n subsets — the allocation pattern the
        // DPccp planner's hash memo replaces.
        let mut table: Vec<Vec<RefEntry>> = (0..1usize << n).map(|_| Vec::new()).collect();

        for qt in 0..n {
            for scan in space.scan_plans(qt) {
                let sc = self.cost.scan_summary(query, &scan, &memo);
                stats.candidates += 1;
                stats.cost_calls += 1;
                let orders = sc.sorted_on.iter().copied().collect();
                ref_pareto_insert(
                    &mut table[1usize << qt],
                    RefEntry {
                        plan: scan,
                        sc,
                        orders,
                    },
                );
            }
        }

        // Budget discipline: the same thread-invariant work measure as
        // the DPccp planner (candidates + pairs), checked after each
        // finalized mask; `memo_live` tracks live Pareto entries
        // exactly (each mask's set is finalized once, in ascending
        // order) without rescanning the 2^n table per check.
        let check = |stats: &SearchStats, memo_live: usize| -> Result<(), PlanError> {
            if self.budget.is_unlimited() {
                return Ok(());
            }
            self.budget.check(
                "submask-dp",
                query,
                (stats.candidates + stats.pairs) as u64,
                memo_live,
            )
        };
        let mut memo_live: usize = (0..n).map(|qt| table[1usize << qt].len()).sum();
        check(&stats, memo_live)?;

        // Bottom-up over subsets (ascending mask order visits every
        // proper submask before its superset).
        for mask in 1..1usize << n {
            if !connected[mask] || (mask & (mask - 1)) == 0 {
                continue; // disconnected or singleton
            }
            let (lo, hi) = table.split_at_mut(mask);
            let cur = &mut hi[0];
            let mut combine = |left_mask: usize, right_mask: usize, stats: &mut SearchStats| {
                stats.pairs += 1;
                for le in &lo[left_mask] {
                    for re in &lo[right_mask] {
                        if !space.allows_join(&le.plan, &re.plan) {
                            continue;
                        }
                        for &op in space.join_ops() {
                            let plan = Plan::join(op, le.plan.clone(), re.plan.clone());
                            let sc = self.cost.join_summary(query, &plan, &le.sc, &re.sc, &memo);
                            stats.candidates += 1;
                            stats.cost_calls += 1;
                            let orders = sc.sorted_on.iter().copied().collect();
                            ref_pareto_insert(cur, RefEntry { plan, sc, orders });
                        }
                    }
                }
            };
            match self.mode {
                SearchMode::Bushy => {
                    let mut a = (mask - 1) & mask;
                    while a != 0 {
                        let b = mask & !a;
                        if connected[a] && connected[b] {
                            combine(a, b, &mut stats);
                        }
                        a = (a - 1) & mask;
                    }
                }
                SearchMode::LeftDeep => {
                    for t in TableMask(mask as u32).iter() {
                        let rest = mask & !(1usize << t);
                        if connected[rest] {
                            combine(rest, 1usize << t, &mut stats);
                        }
                    }
                }
            }
            memo_live += table[mask].len();
            check(&stats, memo_live)?;
        }

        stats.states = table.iter().map(Vec::len).sum();
        let full = (1usize << n) - 1;
        let best = table[full]
            .iter()
            .min_by(|a, b| a.sc.work.partial_cmp(&b.sc.work).expect("finite costs"))
            .ok_or_else(|| PlanError::DisconnectedGraph {
                query: query.name.clone(),
            })?;
        let mut planned = PlannedQuery {
            plan: best.plan.clone(),
            cost: best.sc.work,
            stats,
            planning_secs: start.elapsed().as_secs_f64(),
        };
        let frontier = canonical_frontier(
            table[full]
                .iter()
                .map(|e| (e.sc.work, e.sc.sorted_on.clone())),
        );
        let cost = planned.cost;
        verify_emitted(&self.name(), query, &mut planned, Some(cost));
        Ok((planned, frontier))
    }
}

impl Planner for SubmaskDpPlanner<'_> {
    fn name(&self) -> String {
        match self.mode {
            SearchMode::Bushy => format!("dp-submask-bushy/{}", self.cost.name()),
            SearchMode::LeftDeep => format!("dp-submask-leftdeep/{}", self.cost.name()),
        }
    }

    fn try_plan(&self, query: &Query) -> Result<PlannedQuery, PlanError> {
        let t0 = Instant::now();
        match self.try_plan_with_frontier(query) {
            Ok((planned, _)) => Ok(planned),
            Err(PlanError::BudgetExhausted { .. }) => {
                let mut p =
                    fallback_chain(self.db, self.cost, self.est, self.mode, self.budget, query)?;
                p.planning_secs = t0.elapsed().as_secs_f64();
                Ok(p)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balsa_card::HistogramEstimator;
    use balsa_cost::{CoutModel, ExpertCostModel, OpWeights};
    use balsa_query::workloads::job_workload;
    use balsa_query::ScanOp;
    use balsa_storage::{mini_imdb, DataGenConfig};

    fn fixture() -> (Arc<Database>, balsa_query::Workload) {
        let db = Arc::new(mini_imdb(DataGenConfig {
            scale: 0.02,
            ..Default::default()
        }));
        let w = job_workload(db.catalog(), 7);
        (db, w)
    }

    #[test]
    fn dp_produces_valid_complete_plans() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        for q in w.queries.iter().take(6) {
            let dp = DpPlanner::new(&db, &model, &est, SearchMode::Bushy);
            let out = dp.plan(q);
            assert_eq!(out.plan.mask(), q.all_mask(), "{}", q.name);
            assert!(out.cost.is_finite() && out.cost > 0.0);
            assert!(out.stats.candidates > 0);
            assert!(out.stats.pairs > 0);
            // The DPccp path reports its timing breakdown (the submask
            // fallback leaves it zero), so this also proves the fast
            // path — not the order-overflow fallback — handled the
            // query.
            assert!(out.stats.enumerate_secs > 0.0);
            // Reported cost must equal an independent full re-cost.
            let recost = model.plan_cost(q, &out.plan, &est);
            assert!(
                (out.cost - recost).abs() <= 1e-6 * recost.abs().max(1.0),
                "{}: dp cost {} != recost {}",
                q.name,
                out.cost,
                recost
            );
        }
    }

    #[test]
    fn order_universe_bound_covers_all_sorted_on_sources() {
        let (db, w) = fixture();
        for q in w.queries.iter().take(12) {
            let universe = order_universe(&db, q);
            let bound = universe.len();
            // Every workload query fits the 128-bit interner with room.
            assert!(bound <= 128, "{}: universe {bound}", q.name);
            assert!(universe.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            // The planner pre-interns exactly this universe, so after a
            // plan the interner holds the full (read-only) universe —
            // never more: every order any `sorted_on` can surface was
            // predicted.
            let est = HistogramEstimator::new(&db);
            let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
            let planner = DpPlanner::new(&db, &model, &est, SearchMode::Bushy);
            planner.plan(q);
            let seen = planner.scratch.lock().interner.len();
            assert_eq!(
                seen, bound,
                "{}: interned {seen} != universe {bound}",
                q.name
            );
        }
    }

    #[test]
    fn parallel_levels_match_serial_bit_for_bit() {
        // Unit-level smoke of the intra-query parallel DP (the full
        // 137-query × pools × models sweep lives in the integration
        // tests): cutoff 0 forces every multi-pair level through the
        // parallel path even on these small queries.
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        for mode in [SearchMode::Bushy, SearchMode::LeftDeep] {
            for q in w.queries.iter().take(6) {
                let (serial, sf) = DpPlanner::new(&db, &model, &est, mode).plan_with_frontier(q);
                let (par, pf) = DpPlanner::new(&db, &model, &est, mode)
                    .with_pool(WorkerPool::new(4))
                    .with_parallel_cutoff(0)
                    .plan_with_frontier(q);
                assert_eq!(par.cost.to_bits(), serial.cost.to_bits(), "{}", q.name);
                assert_eq!(
                    par.plan.fingerprint(),
                    serial.plan.fingerprint(),
                    "{}",
                    q.name
                );
                assert_eq!(pf, sf, "{}: frontier differs", q.name);
                assert_eq!(par.stats.states, serial.stats.states, "{}", q.name);
                assert_eq!(par.stats.pairs, serial.stats.pairs, "{}", q.name);
                assert_eq!(par.stats.candidates, serial.stats.candidates, "{}", q.name);
                // `cost_calls` is deliberately partition-dependent
                // (pair-local pruning), so it is only sanity-bounded.
                assert!(
                    par.stats.cost_calls >= serial.stats.cost_calls,
                    "{}",
                    q.name
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_across_queries_is_clean() {
        // One planner instance planning many queries must give the same
        // answers as fresh planners (the scratch reset is complete).
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        let shared = DpPlanner::new(&db, &model, &est, SearchMode::Bushy);
        for q in w.queries.iter().take(8) {
            let fresh = DpPlanner::new(&db, &model, &est, SearchMode::Bushy).plan(q);
            let reused = shared.plan(q);
            assert_eq!(reused.cost.to_bits(), fresh.cost.to_bits(), "{}", q.name);
            assert_eq!(
                reused.plan.fingerprint(),
                fresh.plan.fingerprint(),
                "{}",
                q.name
            );
            assert_eq!(reused.stats.states, fresh.stats.states);
            assert_eq!(reused.stats.candidates, fresh.stats.candidates);
        }
    }

    #[test]
    fn left_deep_mode_yields_left_deep_plans() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::commdb_like());
        for q in w.queries.iter().take(6) {
            let dp = DpPlanner::new(&db, &model, &est, SearchMode::LeftDeep);
            let out = dp.plan(q);
            assert!(out.plan.is_left_deep(), "{}: {}", q.name, out.plan);
            assert_eq!(out.plan.mask(), q.all_mask());
        }
    }

    #[test]
    fn bushy_space_never_worse_than_left_deep() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        for q in w.queries.iter().take(6) {
            let bushy = DpPlanner::new(&db, &model, &est, SearchMode::Bushy).plan(q);
            let ld = DpPlanner::new(&db, &model, &est, SearchMode::LeftDeep).plan(q);
            assert!(
                bushy.cost <= ld.cost * (1.0 + 1e-9),
                "{}: bushy {} > left-deep {}",
                q.name,
                bushy.cost,
                ld.cost
            );
        }
    }

    #[test]
    fn dp_works_with_cout_model() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = CoutModel;
        let q = &w.queries[0];
        let out = DpPlanner::new(&db, &model, &est, SearchMode::Bushy).plan(q);
        let recost = model.plan_cost(q, &out.plan, &est);
        assert!((out.cost - recost).abs() <= 1e-9 * recost.max(1.0));
    }

    #[test]
    fn pareto_insert_dominance() {
        let mut interner = OrderInterner::new();
        let mut mk = |work: f64, orders: &[(usize, usize)]| Entry {
            plan: Plan::scan(0, ScanOp::Seq),
            sc: SubtreeCost {
                work,
                out_rows: 1.0,
                sorted_on: orders.to_vec(),
            },
            orders: interner.intern(orders),
        };
        let mut v = ParetoSet::default();
        assert!(v.insert(mk(10.0, &[])));
        // Cheaper, same orders: replaces.
        assert!(v.insert(mk(8.0, &[])));
        assert_eq!(v.len(), 1);
        // More expensive but more orders: kept.
        assert!(v.insert(mk(9.0, &[(0, 1)])));
        assert_eq!(v.len(), 2);
        // More expensive, no orders: dominated.
        assert!(!v.insert(mk(8.5, &[])));
        // Cheaper with the same orders as the ordered entry: replaces it
        // AND dominates the plain one.
        assert!(v.insert(mk(7.0, &[(0, 1)])));
        assert_eq!(v.len(), 1);
        // The parallel key array stays in lockstep.
        assert_eq!(v.keys.len(), v.entries.len());
        assert_eq!(v.keys[0].0, 7.0);
    }
}
