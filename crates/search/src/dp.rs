//! The exhaustive System-R-style dynamic-programming enumerator.
//!
//! Classical bottom-up join enumeration over [`TableMask`] subsets
//! (Selinger 1979), the expert baseline the paper compares Balsa
//! against. For every connected table subset the planner keeps a
//! **Pareto set** of entries keyed by output order — the "interesting
//! orders" of System R — because a subplan that streams in a join key's
//! order can make a later merge join skip its sort. Entry `A` dominates
//! entry `B` iff `A` costs no more *and* offers a superset of `B`'s
//! orders; join cost is additive in child cost and monotone in child
//! orders, so pruning dominated entries never loses the optimum and the
//! chosen plan matches brute-force enumeration exactly.
//!
//! Both hint spaces are supported: [`SearchMode::Bushy`] enumerates all
//! connected-subgraph/complement pairs, [`SearchMode::LeftDeep`] only
//! splits off single tables (CommDbSim, §8.2).

use crate::candidates::CandidateSpace;
use crate::{MemoEstimator, PlannedQuery, Planner, SearchMode, SearchStats};
use balsa_card::CardEstimator;
use balsa_cost::{CostModel, SubtreeCost};
use balsa_query::{Plan, Query, TableMask};
use balsa_storage::Database;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

/// One Pareto entry: the cheapest known subplan producing its exact
/// output-order set.
struct Entry {
    plan: Arc<Plan>,
    sc: SubtreeCost,
    orders: BTreeSet<(usize, usize)>,
}

/// Inserts `cand` into the Pareto set, dropping dominated entries.
/// Returns whether the candidate survived.
fn pareto_insert(entries: &mut Vec<Entry>, cand: Entry) -> bool {
    for e in entries.iter() {
        if e.sc.work <= cand.sc.work && e.orders.is_superset(&cand.orders) {
            return false;
        }
    }
    entries.retain(|e| !(cand.sc.work <= e.sc.work && cand.orders.is_superset(&e.orders)));
    entries.push(cand);
    true
}

fn order_key(sc: &SubtreeCost) -> BTreeSet<(usize, usize)> {
    sc.sorted_on.iter().copied().collect()
}

/// The exhaustive dynamic-programming planner.
pub struct DpPlanner<'a> {
    db: &'a Database,
    cost: &'a dyn CostModel,
    est: &'a dyn CardEstimator,
    mode: SearchMode,
}

impl<'a> DpPlanner<'a> {
    /// Creates a DP planner scoring plans with `cost` over `est`.
    pub fn new(
        db: &'a Database,
        cost: &'a dyn CostModel,
        est: &'a dyn CardEstimator,
        mode: SearchMode,
    ) -> Self {
        Self {
            db,
            cost,
            est,
            mode,
        }
    }
}

impl Planner for DpPlanner<'_> {
    fn name(&self) -> String {
        match self.mode {
            SearchMode::Bushy => format!("dp-bushy/{}", self.cost.name()),
            SearchMode::LeftDeep => format!("dp-leftdeep/{}", self.cost.name()),
        }
    }

    fn plan(&self, query: &Query) -> PlannedQuery {
        let start = Instant::now();
        let n = query.num_tables();
        assert!(n >= 1, "query has no tables");
        let space = CandidateSpace::new(self.db, query, self.mode);
        let memo = MemoEstimator::new(self.est);
        let connected = space.connected_table();
        let mut stats = SearchStats::default();

        // table[mask] = Pareto set of subplans covering exactly `mask`.
        let mut table: Vec<Vec<Entry>> = (0..1usize << n).map(|_| Vec::new()).collect();

        // Base case: scan candidates per table.
        for qt in 0..n {
            for scan in space.scan_plans(qt) {
                let sc = self.cost.scan_summary(query, &scan, &memo);
                stats.candidates += 1;
                let orders = order_key(&sc);
                pareto_insert(
                    &mut table[1usize << qt],
                    Entry {
                        plan: scan,
                        sc,
                        orders,
                    },
                );
            }
        }

        // Bottom-up over subsets (ascending mask order visits every
        // proper submask before its superset).
        for mask in 1..1usize << n {
            if !connected[mask] || (mask & (mask - 1)) == 0 {
                continue; // disconnected or singleton
            }
            // Split the table so `cur` (at `mask`) is mutable while all
            // smaller subsets stay readable.
            let (lo, hi) = table.split_at_mut(mask);
            let cur = &mut hi[0];
            let combine = |left_mask: usize,
                           right_mask: usize,
                           lo: &[Vec<Entry>],
                           cur: &mut Vec<Entry>,
                           stats: &mut SearchStats| {
                for le in &lo[left_mask] {
                    for re in &lo[right_mask] {
                        if !space.allows_join(&le.plan, &re.plan) {
                            continue;
                        }
                        for &op in space.join_ops() {
                            let plan = Plan::join(op, le.plan.clone(), re.plan.clone());
                            let sc = self.cost.join_summary(query, &plan, &le.sc, &re.sc, &memo);
                            stats.candidates += 1;
                            let orders = order_key(&sc);
                            pareto_insert(cur, Entry { plan, sc, orders });
                        }
                    }
                }
            };
            match self.mode {
                SearchMode::Bushy => {
                    // All ordered (submask, complement) pairs; both sides
                    // connected implies a crossing edge exists.
                    let mut a = (mask - 1) & mask;
                    while a != 0 {
                        let b = mask & !a;
                        if connected[a] && connected[b] {
                            combine(a, b, lo, cur, &mut stats);
                        }
                        a = (a - 1) & mask;
                    }
                }
                SearchMode::LeftDeep => {
                    for t in TableMask(mask as u32).iter() {
                        let rest = mask & !(1usize << t);
                        if connected[rest] {
                            combine(rest, 1usize << t, lo, cur, &mut stats);
                        }
                    }
                }
            }
        }

        stats.states = table.iter().map(Vec::len).sum();
        let full = (1usize << n) - 1;
        let best = table[full]
            .iter()
            .min_by(|a, b| a.sc.work.partial_cmp(&b.sc.work).expect("finite costs"))
            .unwrap_or_else(|| panic!("no plan for {} (disconnected join graph?)", query.name));
        PlannedQuery {
            plan: best.plan.clone(),
            cost: best.sc.work,
            stats,
            planning_secs: start.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balsa_card::HistogramEstimator;
    use balsa_cost::{CoutModel, ExpertCostModel, OpWeights};
    use balsa_query::workloads::job_workload;
    use balsa_storage::{mini_imdb, DataGenConfig};

    fn fixture() -> (Arc<Database>, balsa_query::Workload) {
        let db = Arc::new(mini_imdb(DataGenConfig {
            scale: 0.02,
            ..Default::default()
        }));
        let w = job_workload(db.catalog(), 7);
        (db, w)
    }

    #[test]
    fn dp_produces_valid_complete_plans() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        for q in w.queries.iter().take(6) {
            let dp = DpPlanner::new(&db, &model, &est, SearchMode::Bushy);
            let out = dp.plan(q);
            assert_eq!(out.plan.mask(), q.all_mask(), "{}", q.name);
            assert!(out.cost.is_finite() && out.cost > 0.0);
            assert!(out.stats.candidates > 0);
            // Reported cost must equal an independent full re-cost.
            let recost = model.plan_cost(q, &out.plan, &est);
            assert!(
                (out.cost - recost).abs() <= 1e-6 * recost.abs().max(1.0),
                "{}: dp cost {} != recost {}",
                q.name,
                out.cost,
                recost
            );
        }
    }

    #[test]
    fn left_deep_mode_yields_left_deep_plans() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::commdb_like());
        for q in w.queries.iter().take(6) {
            let dp = DpPlanner::new(&db, &model, &est, SearchMode::LeftDeep);
            let out = dp.plan(q);
            assert!(out.plan.is_left_deep(), "{}: {}", q.name, out.plan);
            assert_eq!(out.plan.mask(), q.all_mask());
        }
    }

    #[test]
    fn bushy_space_never_worse_than_left_deep() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        for q in w.queries.iter().take(6) {
            let bushy = DpPlanner::new(&db, &model, &est, SearchMode::Bushy).plan(q);
            let ld = DpPlanner::new(&db, &model, &est, SearchMode::LeftDeep).plan(q);
            assert!(
                bushy.cost <= ld.cost * (1.0 + 1e-9),
                "{}: bushy {} > left-deep {}",
                q.name,
                bushy.cost,
                ld.cost
            );
        }
    }

    #[test]
    fn dp_works_with_cout_model() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = CoutModel;
        let q = &w.queries[0];
        let out = DpPlanner::new(&db, &model, &est, SearchMode::Bushy).plan(q);
        let recost = model.plan_cost(q, &out.plan, &est);
        assert!((out.cost - recost).abs() <= 1e-9 * recost.max(1.0));
    }

    #[test]
    fn pareto_insert_dominance() {
        let mk = |work: f64, orders: &[(usize, usize)]| Entry {
            plan: Plan::scan(0, balsa_query::ScanOp::Seq),
            sc: SubtreeCost {
                work,
                out_rows: 1.0,
                sorted_on: orders.to_vec(),
            },
            orders: orders.iter().copied().collect(),
        };
        let mut v = Vec::new();
        assert!(pareto_insert(&mut v, mk(10.0, &[])));
        // Cheaper, same orders: replaces.
        assert!(pareto_insert(&mut v, mk(8.0, &[])));
        assert_eq!(v.len(), 1);
        // More expensive but more orders: kept.
        assert!(pareto_insert(&mut v, mk(9.0, &[(0, 1)])));
        assert_eq!(v.len(), 2);
        // More expensive, no orders: dominated.
        assert!(!pareto_insert(&mut v, mk(8.5, &[])));
        // Cheaper with the same orders as the ordered entry: replaces it
        // AND dominates the plain one.
        assert!(pareto_insert(&mut v, mk(7.0, &[(0, 1)])));
        assert_eq!(v.len(), 1);
    }
}
