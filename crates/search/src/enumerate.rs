//! DPccp connected-subgraph / connected-complement enumeration.
//!
//! The classical submask DP visits **every** `(submask, complement)`
//! split of every subset — `3^n` iterations — and filters the few that
//! are connected. Moerkotte & Neumann's DPccp (VLDB 2006) instead walks
//! the join graph itself: connected subgraphs (csg) grow by neighborhood
//! expansion, and for each csg only its connected complements (cmp) are
//! enumerated, so the work is proportional to the number of genuinely
//! connected csg–cmp pairs — for the sparse join graphs of real queries,
//! orders of magnitude below `3^n`.
//!
//! [`JoinGraph`] precomputes per-table adjacency masks
//! ([`balsa_query::Query::neighbor_masks`]); all expansion steps are
//! then a handful of word ops via [`TableMask::subsets`]. Each unordered
//! csg–cmp pair is emitted exactly once (the side containing the
//! lower-numbered table first); the DP combines both orientations.

use balsa_query::{Query, TableMask};

/// Precomputed adjacency structure of one query's join graph, driving
/// DPccp enumeration.
pub struct JoinGraph {
    n: usize,
    /// `adj[qt]` = mask of tables sharing an edge with `qt`.
    adj: Vec<TableMask>,
}

impl JoinGraph {
    /// Builds the adjacency structure for `query`.
    pub fn new(query: &Query) -> Self {
        Self {
            n: query.num_tables(),
            adj: query.neighbor_masks(),
        }
    }

    /// Builds a graph directly from adjacency masks (tests / synthetic
    /// topologies). `adj[i]` must be symmetric and irreflexive.
    pub fn from_adjacency(adj: Vec<TableMask>) -> Self {
        Self { n: adj.len(), adj }
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.n
    }

    /// The neighborhood of `s`: all tables adjacent to a member of `s`,
    /// excluding `s` itself.
    #[inline]
    pub fn neighborhood(&self, s: TableMask) -> TableMask {
        let mut nb = TableMask::EMPTY;
        for t in s.iter() {
            nb = nb.union(self.adj[t]);
        }
        TableMask(nb.0 & !s.0)
    }

    /// Whether an edge crosses between the disjoint masks `a` and `b`.
    #[inline]
    pub fn connected_between(&self, a: TableMask, b: TableMask) -> bool {
        !self.neighborhood(a).intersect(b).is_empty()
    }

    /// Emits every connected subgraph of the join graph exactly once.
    ///
    /// Emission order is deterministic but **not** sorted by size; DP
    /// consumers bucket by cardinality before processing.
    pub fn for_each_csg(&self, f: &mut impl FnMut(TableMask)) {
        for i in (0..self.n).rev() {
            let v = TableMask::single(i);
            f(v);
            self.csg_rec(v, below(i), f);
        }
    }

    /// Recursive neighborhood expansion: emits every connected superset
    /// of `s` reachable without touching the forbidden set `x`.
    fn csg_rec(&self, s: TableMask, x: TableMask, f: &mut impl FnMut(TableMask)) {
        let nb = TableMask(self.neighborhood(s).0 & !x.0);
        for s1 in nb.subsets() {
            f(s.union(s1));
        }
        let x2 = x.union(nb);
        for s1 in nb.subsets() {
            self.csg_rec(s.union(s1), x2, f);
        }
    }

    /// Emits every unordered csg–cmp pair `(s1, s2)` exactly once:
    /// both sides induce connected subgraphs, they are disjoint, at
    /// least one edge crosses them, and `s1` contains the
    /// lowest-numbered table of the union.
    pub fn for_each_csg_cmp(&self, f: &mut impl FnMut(TableMask, TableMask)) {
        self.for_each_csg(&mut |s1| self.for_each_cmp(s1, &mut |s2| f(s1, s2)));
    }

    /// Emits every connected complement of the connected set `s1`.
    pub fn for_each_cmp(&self, s1: TableMask, f: &mut impl FnMut(TableMask)) {
        let min = s1.lowest().expect("csg is non-empty");
        let x = TableMask(below(min).0 | s1.0);
        let nb = TableMask(self.neighborhood(s1).0 & !x.0);
        for i in (0..self.n).rev() {
            if !nb.contains(i) {
                continue;
            }
            let v = TableMask::single(i);
            f(v);
            self.csg_rec(v, TableMask(x.0 | (below(i).0 & nb.0)), f);
        }
    }

    /// Total number of unordered csg–cmp pairs — the enumeration-size
    /// metric DPccp's complexity analysis is stated in.
    pub fn count_csg_cmp_pairs(&self) -> usize {
        let mut count = 0usize;
        self.for_each_csg_cmp(&mut |_, _| count += 1);
        count
    }
}

/// `B_i`: the mask of tables numbered `<= i`.
#[inline]
fn below(i: usize) -> TableMask {
    TableMask(if i >= 31 {
        u32::MAX
    } else {
        (1u32 << (i + 1)) - 1
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn graph_from_edges(n: usize, edges: &[(usize, usize)]) -> JoinGraph {
        let mut adj = vec![TableMask::EMPTY; n];
        for &(a, b) in edges {
            adj[a] = adj[a].union(TableMask::single(b));
            adj[b] = adj[b].union(TableMask::single(a));
        }
        JoinGraph::from_adjacency(adj)
    }

    fn chain(n: usize) -> JoinGraph {
        graph_from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>())
    }

    fn star(n: usize) -> JoinGraph {
        graph_from_edges(n, &(1..n).map(|i| (0, i)).collect::<Vec<_>>())
    }

    fn clique(n: usize) -> JoinGraph {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                edges.push((a, b));
            }
        }
        graph_from_edges(n, &edges)
    }

    fn cycle(n: usize) -> JoinGraph {
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        graph_from_edges(n, &edges)
    }

    /// Brute-force reference: all (csg, cmp) pairs by 3^n scan.
    fn brute_force_pairs(g: &JoinGraph, connected: &dyn Fn(u32) -> bool) -> BTreeSet<(u32, u32)> {
        let n = g.num_tables();
        let mut out = BTreeSet::new();
        for union in 1u32..1 << n {
            if union.count_ones() < 2 {
                continue;
            }
            let mut a = (union - 1) & union;
            while a != 0 {
                let b = union & !a;
                if connected(a)
                    && connected(b)
                    && g.connected_between(TableMask(a), TableMask(b))
                    && TableMask(union).lowest() == TableMask(a).lowest()
                {
                    out.insert((a, b));
                }
                a = (a - 1) & union;
            }
        }
        out
    }

    fn subgraph_connected(g: &JoinGraph, mask: u32) -> bool {
        let m = TableMask(mask);
        let start = match m.lowest() {
            Some(s) => s,
            None => return false,
        };
        let mut reached = TableMask::single(start);
        loop {
            let grown = TableMask((reached.0 | g.neighborhood(reached).0) & mask);
            if grown == reached {
                break;
            }
            reached = grown;
        }
        reached.contains_all(m)
    }

    #[test]
    fn csg_enumeration_is_exactly_the_connected_subsets() {
        for g in [
            chain(6),
            star(6),
            clique(5),
            cycle(6),
            graph_from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]),
        ] {
            let mut emitted = Vec::new();
            g.for_each_csg(&mut |s| emitted.push(s.0));
            let set: BTreeSet<u32> = emitted.iter().copied().collect();
            assert_eq!(set.len(), emitted.len(), "csg emitted twice");
            let expected: BTreeSet<u32> = (1u32..1 << g.num_tables())
                .filter(|&m| subgraph_connected(&g, m))
                .collect();
            assert_eq!(set, expected);
        }
    }

    #[test]
    fn csg_cmp_pairs_match_brute_force() {
        for g in [
            chain(6),
            star(6),
            clique(5),
            cycle(6),
            graph_from_edges(6, &[(0, 1), (0, 2), (2, 3), (2, 4), (4, 5)]),
        ] {
            let mut emitted = BTreeSet::new();
            g.for_each_csg_cmp(&mut |a, b| {
                assert!(a.disjoint(b));
                assert!(g.connected_between(a, b));
                assert_eq!(
                    a.union(b).lowest(),
                    a.lowest(),
                    "s1 must hold the union's lowest table"
                );
                assert!(
                    emitted.insert((a.0, b.0)),
                    "pair emitted twice: {:b} {:b}",
                    a.0,
                    b.0
                );
            });
            let expected = brute_force_pairs(&g, &|m| subgraph_connected(&g, m));
            assert_eq!(emitted, expected);
        }
    }

    /// Closed forms from Moerkotte & Neumann 2006, Table 1.
    #[test]
    fn pair_counts_match_closed_forms() {
        for n in 2..=10usize {
            let nf = n as u64;
            assert_eq!(
                chain(n).count_csg_cmp_pairs() as u64,
                (nf * nf * nf - nf) / 6,
                "chain({n})"
            );
            assert_eq!(
                cycle(n).count_csg_cmp_pairs() as u64,
                (nf * nf * nf - 2 * nf * nf + nf) / 2,
                "cycle({n})"
            );
            assert_eq!(
                star(n).count_csg_cmp_pairs() as u64,
                (nf - 1) * (1u64 << (n - 2)),
                "star({n})"
            );
        }
        for n in 2..=8usize {
            let nf = n as u32;
            assert_eq!(
                clique(n).count_csg_cmp_pairs() as u64,
                (3u64.pow(nf) - 2u64.pow(nf + 1)).div_ceil(2),
                "clique({n})"
            );
        }
    }

    #[test]
    fn neighborhood_and_connected_between() {
        let g = chain(4);
        assert_eq!(g.neighborhood(TableMask(0b0001)), TableMask(0b0010));
        assert_eq!(g.neighborhood(TableMask(0b0110)), TableMask(0b1001));
        assert!(g.connected_between(TableMask(0b0001), TableMask(0b0010)));
        assert!(!g.connected_between(TableMask(0b0001), TableMask(0b0100)));
    }
}
