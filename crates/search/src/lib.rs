//! # balsa-search
//!
//! The planning layer of balsa-rs: search procedures that turn a
//! [`balsa_query::Query`] into a physical [`Plan`], scored through the
//! [`balsa_cost::CostModel`] + [`balsa_card::CardEstimator`] traits.
//!
//! * [`DpPlanner`] — an exhaustive System-R-style dynamic program over
//!   [`TableMask`] subsets (connected-subgraph pairs only; cross products
//!   are outside the search space, §7 of the paper). It keeps a Pareto
//!   set of (cost, output-order) entries per subset, so interesting
//!   orders are handled exactly: on compositional cost models its chosen
//!   plan provably matches brute-force enumeration. Driven by the expert
//!   cost model on estimated cardinalities it is the classical expert
//!   optimizer baseline; on true cardinalities it is the oracle planner.
//! * [`BeamPlanner`] — width-`k` best-first beam search over the same
//!   candidate-generation core ([`CandidateSpace`]), generic over any
//!   [`balsa_cost::PlanScorer`]: the expert cost model (via
//!   [`balsa_cost::CostScorer`]), the `C_out` simulator, or
//!   `balsa-learn`'s learned value model all drive the identical
//!   inference procedure (§5). Epsilon-greedy exploration
//!   ([`BeamPlanner::with_exploration`]) supplies the §5.2 behavior
//!   policy for the training loop.
//! * [`RandomPlanner`] — uniform random valid plans, the exploration /
//!   sanity baseline.
//!
//! Both search modes of the paper's two engines are supported:
//! [`SearchMode::Bushy`] (PostgresSim hints) and [`SearchMode::LeftDeep`]
//! (CommDbSim's ~1000x smaller hint space, §8.2).

pub mod beam;
pub mod budget;
pub mod candidates;
pub mod dp;
pub mod enumerate;
pub mod greedy;
pub mod pool;
pub mod random;
pub mod scratch;

pub use beam::BeamPlanner;
pub use budget::{verify_plans_enabled, PlanBudget, PlanError, FALLBACK_BEAM_WIDTH};
pub use candidates::CandidateSpace;
pub use dp::{DpPlanner, FrontierEntry, SubmaskDpPlanner};
pub use enumerate::JoinGraph;
pub use greedy::GreedyLeftDeepPlanner;
pub use pool::{parallel_speedup, WorkerPool};
pub use random::{random_plan, try_random_plan, RandomPlanner};
pub use scratch::{ScratchGuard, SharedScratch};

// Moved to `balsa-card` so the scoring layer (`balsa_cost::PlanScorer`)
// can memoize too; re-exported for backwards compatibility.
pub use balsa_card::MemoEstimator;

use balsa_query::{Plan, Query};
use std::sync::Arc;

/// Which plan shapes the search may produce, mirroring the hint spaces
/// of the two engines (§8.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchMode {
    /// Arbitrary binary join trees (PostgresSim).
    Bushy,
    /// Every join's right input is a base table (CommDbSim).
    LeftDeep,
}

impl SearchMode {
    /// The mode matching an engine's hint space.
    pub fn for_bushy_hints(bushy_hints: bool) -> Self {
        if bushy_hints {
            SearchMode::Bushy
        } else {
            SearchMode::LeftDeep
        }
    }
}

/// Search effort counters reported by a planner run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// Distinct states retained. For the DP: Pareto entries
    /// (never-populated memo slots for disconnected subsets do not
    /// count). For the beam: states surviving signature dedup at each
    /// level, *before* width truncation — the size of the state space
    /// the beam actually examined, not just the `k` it kept.
    pub states: usize,
    /// Candidate plans generated. In the DP this counts every
    /// (left, right, operator) combination considered — including
    /// candidates the child-monotone early reject prunes *before* their
    /// costing call — so it measures enumeration volume, not cost-call
    /// volume.
    pub candidates: usize,
    /// Ordered csg–cmp pairs combined by a DP enumerator (0 for beam /
    /// random search).
    pub pairs: usize,
    /// Actual cost-model invocations: scan summaries plus every
    /// `work_out` / `join_summary` call that really ran. Unlike
    /// `candidates` this **excludes** candidates the child-monotone
    /// early reject pruned before costing, so `candidates -
    /// cost_calls` measures how much costing the pruning saved. For
    /// the intra-parallel DP the count depends on how the level was
    /// partitioned (workers prune against pair-local frontiers, so
    /// they cost somewhat more than one serial sweep) — it is
    /// deterministic for a fixed thread count but, by design, not part
    /// of the parallel-vs-serial bit-identity contract.
    pub cost_calls: usize,
    /// Seconds spent enumerating pairs (adjacency build + DPccp walk);
    /// 0 where enumeration and costing interleave unmeasurably.
    pub enumerate_secs: f64,
    /// Seconds spent in the costing/Pareto inner loop.
    pub cost_secs: f64,
    /// Seconds the beam spent scoring candidates (the batched
    /// value-model / cost-model calls; the scoring phase's wall-clock
    /// makespan when intra-query expansion runs on a pool). 0 for DP,
    /// whose analogous figure is `cost_secs`.
    pub score_secs: f64,
    /// Seconds the beam spent generating candidates, computing state
    /// signatures, deduplicating against the seen-table, and
    /// assembling/sorting states. 0 for DP.
    pub dedup_secs: f64,
    /// Work items that actually fanned out across a parallel pool —
    /// DP pairs (bushy) / masks (left-deep) in levels that crossed the
    /// fan-out cutoff, beam candidates in levels scored on more than
    /// one participant. 0 on a serial pool and whenever every level
    /// stayed under the cutoff, which is what lets benchmarks suppress
    /// a meaningless ~1.0x "speedup" (see [`parallel_speedup`]). Like
    /// `cost_calls` it is deterministic for a fixed thread count but
    /// excluded from the parallel-vs-serial bit-identity contract.
    pub parallel_items: usize,
    /// How many fallback steps the budget chain took to produce this
    /// plan: 0 = the primary planner answered, 1 = degraded one level
    /// (DP → beam, or beam → greedy), 2 = degraded twice (DP → beam →
    /// greedy). Never silent: any nonzero value means the emitted plan
    /// is *not* the primary planner's answer.
    pub degraded_levels: usize,
    /// Whether any stage of this call hit its [`PlanBudget`] boundary
    /// check (true whenever `degraded_levels > 0`, and also when a raw
    /// chain-free entry point surfaced the exhaustion as an error).
    pub budget_exhausted: bool,
    /// Seconds spent in the independent plan verifier
    /// (`balsa_query::verify`) on the emitted plan; 0.0 when
    /// verification is disabled. Reporting-only — never feeds back
    /// into search decisions.
    pub verify_secs: f64,
}

/// A planner's answer for one query.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The chosen complete plan.
    pub plan: Arc<Plan>,
    /// Its cost under the planner's cost model.
    pub cost: f64,
    /// Search effort spent.
    pub stats: SearchStats,
    /// Measured wall-clock planning time in seconds (feed this to
    /// `SimClock::charge_planning` / `ExecutionEnv::charge_planning`).
    pub planning_secs: f64,
}

/// A planner maps queries to physical plans.
pub trait Planner {
    /// Planner name for reports, e.g. `"dp-bushy"` or `"beam10-leftdeep"`.
    fn name(&self) -> String;

    /// Plans `query`, degrading through the planner's fallback chain
    /// when a [`PlanBudget`] is armed (recorded in
    /// [`SearchStats::degraded_levels`], never silent). Errors only
    /// when no plan exists at all — a disconnected join graph — or
    /// when even the chain's greedy floor cannot answer.
    fn try_plan(&self, query: &Query) -> Result<PlannedQuery, PlanError>;

    /// Plans `query`, panicking on [`PlanError`].
    ///
    /// The convenience entry point for validated workloads (the
    /// generators only produce connected queries, and budget
    /// exhaustion degrades instead of erroring); callers handling
    /// adversarial input use [`Planner::try_plan`].
    ///
    /// # Panics
    /// Panics if [`Planner::try_plan`] returns an error.
    fn plan(&self, query: &Query) -> PlannedQuery {
        match self.try_plan(query) {
            Ok(p) => p,
            Err(e) => panic!("{}: {e}", self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balsa_card::CardEstimator;
    use balsa_query::TableMask;

    struct Counting(std::sync::atomic::AtomicUsize);
    impl CardEstimator for Counting {
        fn cardinality(&self, _q: &Query, m: TableMask) -> f64 {
            self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            m.count() as f64
        }
        fn base_rows(&self, _q: &Query, _qt: usize) -> f64 {
            1.0
        }
    }

    #[test]
    fn memo_estimator_caches() {
        let inner = Counting(std::sync::atomic::AtomicUsize::new(0));
        let memo = MemoEstimator::new(&inner);
        let q = Query {
            id: 0,
            name: "q".into(),
            template: 0,
            tables: vec![],
            joins: vec![],
            filters: vec![],
        };
        let m = TableMask(0b11);
        assert_eq!(memo.cardinality(&q, m), 2.0);
        assert_eq!(memo.cardinality(&q, m), 2.0);
        assert_eq!(inner.0.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn mode_for_profile() {
        assert_eq!(SearchMode::for_bushy_hints(true), SearchMode::Bushy);
        assert_eq!(SearchMode::for_bushy_hints(false), SearchMode::LeftDeep);
    }
}
