//! Width-`k` beam search over join forests.
//!
//! This is the inference procedure of Balsa's agent (§5): states are
//! forests of disjoint partial plans; each step joins two connected
//! trees with a physical operator; the beam keeps the `k` best-scoring
//! states per level and a complete plan emerges after `n-1` steps. Here
//! the scoring function is a classical [`CostModel`]; the learned value
//! network will later slot into exactly this position. Candidate moves
//! come from the same [`CandidateSpace`] as the DP enumerator, so beam
//! search explores a subset of the DP space and its best plan's cost is
//! bounded below by the DP optimum.
//!
//! Scan operators are decided lazily: a leaf enters the initial forest
//! as its cheapest scan, and every join step re-considers all scan
//! candidates for leaf inputs (mirroring how the paper's agent picks
//! scans as part of each join action).

use crate::candidates::CandidateSpace;
use crate::{MemoEstimator, PlannedQuery, Planner, SearchMode, SearchStats};
use balsa_card::CardEstimator;
use balsa_cost::{CostModel, SubtreeCost};
use balsa_query::{Plan, Query};
use balsa_storage::Database;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// One partial plan in a forest.
#[derive(Clone)]
struct Tree {
    plan: Arc<Plan>,
    sc: SubtreeCost,
}

/// One beam state: a forest of disjoint trees covering all tables.
#[derive(Clone)]
struct State {
    trees: Vec<Tree>,
    /// Sum of tree costs — the beam score (lower is better).
    total: f64,
}

impl State {
    /// Canonical signature for deduplication: sorted tree fingerprints.
    fn signature(&self) -> Vec<u64> {
        let mut sig: Vec<u64> = self.trees.iter().map(|t| t.plan.fingerprint()).collect();
        sig.sort_unstable();
        sig
    }
}

/// The width-`k` beam-search planner.
pub struct BeamPlanner<'a> {
    db: &'a Database,
    cost: &'a dyn CostModel,
    est: &'a dyn CardEstimator,
    mode: SearchMode,
    width: usize,
}

impl<'a> BeamPlanner<'a> {
    /// Creates a beam planner with beam width `width` (≥ 1).
    pub fn new(
        db: &'a Database,
        cost: &'a dyn CostModel,
        est: &'a dyn CardEstimator,
        mode: SearchMode,
        width: usize,
    ) -> Self {
        assert!(width >= 1, "beam width must be at least 1");
        Self {
            db,
            cost,
            est,
            mode,
            width,
        }
    }

    /// Scan variants for a tree: leaves re-open their scan choice (from
    /// the precomputed per-table candidates), inner trees are kept as-is.
    fn variants<'t>(&self, scan_variants: &'t [Vec<Tree>], tree: &'t Tree) -> &'t [Tree] {
        match &*tree.plan {
            Plan::Scan { qt, .. } => &scan_variants[*qt as usize],
            Plan::Join { .. } => std::slice::from_ref(tree),
        }
    }
}

impl Planner for BeamPlanner<'_> {
    fn name(&self) -> String {
        let shape = match self.mode {
            SearchMode::Bushy => "bushy",
            SearchMode::LeftDeep => "leftdeep",
        };
        format!("beam{}-{}/{}", self.width, shape, self.cost.name())
    }

    fn plan(&self, query: &Query) -> PlannedQuery {
        let start = Instant::now();
        let n = query.num_tables();
        assert!(n >= 1, "query has no tables");
        let space = CandidateSpace::new(self.db, query, self.mode);
        let memo = MemoEstimator::new(self.est);
        let mut stats = SearchStats::default();

        // Scan candidates are state-independent: cost them once per table.
        let scan_variants: Vec<Vec<Tree>> = (0..n)
            .map(|qt| {
                space
                    .scan_plans(qt)
                    .into_iter()
                    .map(|p| {
                        stats.candidates += 1;
                        let sc = self.cost.scan_summary(query, &p, &memo);
                        Tree { plan: p, sc }
                    })
                    .collect()
            })
            .collect();

        // Initial forest: each table as its cheapest scan candidate.
        let leaves: Vec<Tree> = scan_variants
            .iter()
            .map(|vs| {
                vs.iter()
                    .min_by(|a, b| a.sc.work.partial_cmp(&b.sc.work).expect("finite"))
                    .expect("at least one scan candidate")
                    .clone()
            })
            .collect();
        let total = leaves.iter().map(|t| t.sc.work).sum();
        let mut beam = vec![State {
            trees: leaves,
            total,
        }];
        stats.states += 1;

        for _level in 0..n.saturating_sub(1) {
            let mut next: Vec<State> = Vec::new();
            let mut seen: HashSet<Vec<u64>> = HashSet::new();
            for state in &beam {
                let m = state.trees.len();
                for i in 0..m {
                    for j in 0..m {
                        if i == j
                            || !query
                                .connected(state.trees[i].plan.mask(), state.trees[j].plan.mask())
                        {
                            continue;
                        }
                        let lvs = self.variants(&scan_variants, &state.trees[i]);
                        let rvs = self.variants(&scan_variants, &state.trees[j]);
                        for lv in lvs {
                            for rv in rvs {
                                if !space.allows_join(&lv.plan, &rv.plan) {
                                    continue;
                                }
                                for &op in space.join_ops() {
                                    let plan = Plan::join(op, lv.plan.clone(), rv.plan.clone());
                                    let sc =
                                        self.cost.join_summary(query, &plan, &lv.sc, &rv.sc, &memo);
                                    stats.candidates += 1;
                                    let mut trees: Vec<Tree> = state
                                        .trees
                                        .iter()
                                        .enumerate()
                                        .filter(|(k, _)| *k != i && *k != j)
                                        .map(|(_, t)| t.clone())
                                        .collect();
                                    let joined = Tree { plan, sc };
                                    let total = trees.iter().map(|t| t.sc.work).sum::<f64>()
                                        + joined.sc.work;
                                    trees.push(joined);
                                    let cand = State { trees, total };
                                    if seen.insert(cand.signature()) {
                                        next.push(cand);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            assert!(
                !next.is_empty(),
                "beam stuck on {} (disconnected join graph?)",
                query.name
            );
            next.sort_by(|a, b| a.total.partial_cmp(&b.total).expect("finite scores"));
            next.truncate(self.width);
            stats.states += next.len();
            beam = next;
        }

        let best = &beam[0];
        assert_eq!(best.trees.len(), 1, "beam must end with a single tree");
        let tree = &best.trees[0];
        PlannedQuery {
            plan: tree.plan.clone(),
            cost: tree.sc.work,
            stats,
            planning_secs: start.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DpPlanner;
    use balsa_card::HistogramEstimator;
    use balsa_cost::{ExpertCostModel, OpWeights};
    use balsa_query::workloads::job_workload;
    use balsa_storage::{mini_imdb, DataGenConfig};

    fn fixture() -> (Arc<Database>, balsa_query::Workload) {
        let db = Arc::new(mini_imdb(DataGenConfig {
            scale: 0.02,
            ..Default::default()
        }));
        let w = job_workload(db.catalog(), 7);
        (db, w)
    }

    #[test]
    fn beam_produces_valid_complete_plans() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        for q in w.queries.iter().take(4) {
            let beam = BeamPlanner::new(&db, &model, &est, SearchMode::Bushy, 5);
            let out = beam.plan(q);
            assert_eq!(out.plan.mask(), q.all_mask(), "{}", q.name);
            let recost = model.plan_cost(q, &out.plan, &est);
            assert!((out.cost - recost).abs() <= 1e-6 * recost.abs().max(1.0));
        }
    }

    #[test]
    fn beam_never_beats_dp() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        for q in w.queries.iter().filter(|q| q.num_tables() <= 9).take(5) {
            let dp = DpPlanner::new(&db, &model, &est, SearchMode::Bushy).plan(q);
            let bm = BeamPlanner::new(&db, &model, &est, SearchMode::Bushy, 10).plan(q);
            assert!(
                bm.cost >= dp.cost * (1.0 - 1e-9),
                "{}: beam {} below dp optimum {}",
                q.name,
                bm.cost,
                dp.cost
            );
        }
    }

    #[test]
    fn wider_beams_do_no_worse() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        let q = w.queries.iter().find(|q| q.num_tables() >= 6).unwrap();
        let narrow = BeamPlanner::new(&db, &model, &est, SearchMode::Bushy, 1).plan(q);
        let wide = BeamPlanner::new(&db, &model, &est, SearchMode::Bushy, 20).plan(q);
        assert!(wide.cost <= narrow.cost * (1.0 + 1e-9));
    }

    #[test]
    fn left_deep_beam_is_left_deep() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::commdb_like());
        for q in w.queries.iter().take(4) {
            let out = BeamPlanner::new(&db, &model, &est, SearchMode::LeftDeep, 5).plan(q);
            assert!(out.plan.is_left_deep(), "{}: {}", q.name, out.plan);
        }
    }
}
