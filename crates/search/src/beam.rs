//! Width-`k` beam search over join forests.
//!
//! This is the inference procedure of Balsa's agent (§5): states are
//! forests of disjoint partial plans; each step joins two connected
//! trees with a physical operator; the beam keeps the `k` best-scoring
//! states per level and a complete plan emerges after `n-1` steps. The
//! scoring function is any [`PlanScorer`] — a classical cost model via
//! [`balsa_cost::CostScorer`], or `balsa-learn`'s learned value model —
//! slotted into exactly the position the paper gives the value network.
//! Candidate moves come from the same [`CandidateSpace`] as the DP
//! enumerator, so beam search explores a subset of the DP space; when
//! the scorer is a compositional cost model, its best plan's cost is
//! bounded below by the DP optimum.
//!
//! Scan operators are decided lazily: a leaf enters the initial forest
//! as its cheapest scan, and every join step re-considers all scan
//! candidates for leaf inputs (mirroring how the paper's agent picks
//! scans as part of each join action).
//!
//! **Exploration** (§5.2): with [`BeamPlanner::with_exploration`], each
//! kept beam slot is, with probability ε, replaced by a uniformly random
//! surviving candidate instead of the next-best one — the epsilon-greedy
//! policy the training loop uses to diversify the plans it executes.
//! Sampling is deterministic given the seed and query id, and the RNG
//! stream is consumed only by the slot-filling step, so neither batched
//! scoring nor parallel expansion perturbs it.
//!
//! **The inference hot path.** Each level runs in three phases:
//!
//! 1. *Generate + dedup* (serial): candidate joins are enumerated in a
//!    fixed order; each candidate state's identity is an order-
//!    independent 64-bit signature — the commutative (wrapping) sum of
//!    its trees' mixed plan fingerprints, updated incrementally from
//!    the parent state's signature in O(1) — probed against a
//!    seen-table reused across levels and queries. No sorted
//!    fingerprint vectors, no per-candidate allocation, and duplicate
//!    states are dropped *before* they are scored.
//! 2. *Score* (batched, optionally parallel): all surviving candidates
//!    are scored through [`balsa_cost::QueryScorer::score_join_batch`],
//!    spread across a [`WorkerPool`] by deterministic work-stealing
//!    spans ([`WorkerPool::steal_map_spans`]; [`BeamPlanner::with_pool`],
//!    `BALSA_PLAN_THREADS`). Batch scoring is bit-identical to
//!    per-candidate scoring by contract (span layout is never a math
//!    change), and every span's results land at their input index, so
//!    any thread count — and any steal schedule — produces bit-identical
//!    plans.
//! 3. *Assemble + select* (serial): surviving states are materialized,
//!    sorted, epsilon-filled, and truncated to the beam width.

use crate::budget::verify_emitted;
use crate::candidates::CandidateSpace;
use crate::greedy::GreedyLeftDeepPlanner;
use crate::pool::WorkerPool;
use crate::scratch::SharedScratch;
use crate::{PlanBudget, PlanError, PlannedQuery, Planner, SearchMode, SearchStats};
use balsa_cost::{JoinCandidate, PlanScorer, ScoredTree};
use balsa_query::{Plan, Query};
use balsa_storage::Database;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;
use std::time::Instant;

/// One partial plan in a forest.
#[derive(Clone)]
struct Tree {
    plan: Arc<Plan>,
    st: ScoredTree,
    /// The plan's mixed fingerprint ([`mix_fingerprint`]) — the tree's
    /// contribution to its state's commutative signature.
    mix: u64,
}

impl Tree {
    fn new(plan: Arc<Plan>, st: ScoredTree) -> Self {
        let mix = mix_fingerprint(plan.fingerprint());
        Self { plan, st, mix }
    }
}

/// One beam state: a forest of disjoint trees covering all tables.
#[derive(Clone)]
struct State {
    trees: Vec<Tree>,
    /// Order-independent dedup signature: the wrapping sum of the
    /// trees' mixed fingerprints. Joining trees `i` and `j` into `t`
    /// updates it as `sig - mix_i - mix_j + mix_t` — O(1), no sorting,
    /// no allocation, same equivalence classes as comparing the sorted
    /// fingerprint multiset.
    sig: u64,
}

/// SplitMix64 finalizer: decorrelates plan fingerprints before they
/// enter the commutative signature sum, so structured fingerprint
/// differences cannot cancel across trees.
#[inline]
fn mix_fingerprint(fp: u64) -> u64 {
    let mut z = fp.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pass-through hasher for the seen-table: signatures are already
/// SplitMix64-mixed sums, so rehashing them (std's SipHash) would only
/// burn cycles on the per-candidate hot path.
#[derive(Default)]
struct SigHasher(u64);

impl Hasher for SigHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only reached for non-u64 keys; FNV-fold for completeness.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// The dedup seen-table: pre-mixed `u64` signatures, identity-hashed.
type SeenSet = HashSet<u64, BuildHasherDefault<SigHasher>>;

/// Reusable per-planner scratch: the dedup seen-table, cleared — with
/// capacity retained — between levels and queries.
#[derive(Default)]
struct BeamScratch {
    seen: SeenSet,
}

/// One dedup-surviving candidate awaiting its batched score: where it
/// came from (state index, joined tree slots), the join plan, its
/// precomputed signature pieces, and the children's scored subtrees.
struct Pending<'a> {
    si: usize,
    i: usize,
    j: usize,
    sig: u64,
    mix: u64,
    plan: Arc<Plan>,
    lst: &'a ScoredTree,
    rst: &'a ScoredTree,
}

/// Epsilon-greedy beam exploration parameters.
#[derive(Debug, Clone, Copy)]
struct Exploration {
    epsilon: f64,
    seed: u64,
}

/// The width-`k` beam-search planner over an arbitrary [`PlanScorer`].
pub struct BeamPlanner<'a> {
    db: &'a Database,
    scorer: &'a dyn PlanScorer,
    mode: SearchMode,
    width: usize,
    exploration: Option<Exploration>,
    pool: WorkerPool,
    budget: PlanBudget,
    scratch: SharedScratch<BeamScratch>,
}

impl<'a> BeamPlanner<'a> {
    /// Creates a beam planner with beam width `width` (≥ 1), ranking
    /// candidates by `scorer`. Expansion is serial until
    /// [`BeamPlanner::with_pool`] hands it a worker pool.
    pub fn new(
        db: &'a Database,
        scorer: &'a dyn PlanScorer,
        mode: SearchMode,
        width: usize,
    ) -> Self {
        assert!(width >= 1, "beam width must be at least 1");
        Self {
            db,
            scorer,
            mode,
            width,
            exploration: None,
            pool: WorkerPool::new(1),
            budget: PlanBudget::UNLIMITED,
            scratch: SharedScratch::new(),
        }
    }

    /// Arms a [`PlanBudget`]. Work (candidates generated) and memo
    /// (dedup-surviving states) are checked once per level, between the
    /// dedup and scoring phases — both counters come from the serial
    /// generate phase, so the decision is bit-reproducible and
    /// independent of pool width. The exploration RNG stream is
    /// untouched: budget checks are pure comparisons, and an exhausted
    /// level aborts before the slot-filling step that consumes it.
    pub fn with_budget(mut self, budget: PlanBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Spreads each level's candidate scoring across `pool`
    /// (`BALSA_PLAN_THREADS` via [`WorkerPool::from_env`]) — intra-query
    /// parallelism for serving a single query. Scoring spans are
    /// work-stolen but every result lands at its input index, so every
    /// thread count yields bit-identical plans (tested).
    pub fn with_pool(mut self, pool: WorkerPool) -> Self {
        self.pool = pool;
        self
    }

    /// Enables epsilon-greedy exploration: at every level, each kept
    /// beam slot is with probability `epsilon` filled by a uniformly
    /// random surviving candidate instead of the next-best one. The
    /// returned plan is the state in slot 0, so with probability ε the
    /// planner executes an exploratory plan — the behavior policy of the
    /// fine-tuning loop (§5.2). `epsilon = 0` is exactly greedy.
    pub fn with_exploration(mut self, epsilon: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        self.exploration = Some(Exploration { epsilon, seed });
        self
    }

    /// Scan variants for a tree: leaves re-open their scan choice (from
    /// the precomputed per-table candidates), inner trees are kept as-is.
    fn variants<'t>(&self, scan_variants: &'t [Vec<Tree>], tree: &'t Tree) -> &'t [Tree] {
        match &*tree.plan {
            Plan::Scan { qt, .. } => &scan_variants[*qt as usize],
            Plan::Join { .. } => std::slice::from_ref(tree),
        }
    }
}

impl Planner for BeamPlanner<'_> {
    fn name(&self) -> String {
        let shape = match self.mode {
            SearchMode::Bushy => "bushy",
            SearchMode::LeftDeep => "leftdeep",
        };
        let eps = match self.exploration {
            Some(e) if e.epsilon > 0.0 => format!("+eps{:.2}", e.epsilon),
            _ => String::new(),
        };
        format!("beam{}-{}/{}{}", self.width, shape, self.scorer.name(), eps)
    }

    fn try_plan(&self, query: &Query) -> Result<PlannedQuery, PlanError> {
        let t0 = Instant::now();
        match self.try_plan_raw(query) {
            Ok(p) => Ok(p),
            Err(PlanError::BudgetExhausted { .. }) => {
                // Degrade to the always-terminating greedy floor,
                // scoring through the same scorer — honest fallback
                // depth 1 of the chain.
                let greedy = GreedyLeftDeepPlanner::new(self.db, self.scorer, self.mode);
                let mut p = greedy.try_plan(query)?;
                p.stats.degraded_levels = 1;
                p.stats.budget_exhausted = true;
                p.planning_secs = t0.elapsed().as_secs_f64();
                Ok(p)
            }
            Err(e) => Err(e),
        }
    }
}

impl BeamPlanner<'_> {
    /// The raw, chain-free beam procedure: surfaces
    /// [`PlanError::BudgetExhausted`] instead of degrading to greedy
    /// ([`Planner::try_plan`] does that). This is also fallback level 1
    /// of the DP planners' chain, which re-arms it with the full
    /// budget.
    pub fn try_plan_raw(&self, query: &Query) -> Result<PlannedQuery, PlanError> {
        let start = Instant::now();
        let n = query.num_tables();
        if n == 0 {
            return Err(PlanError::DisconnectedGraph {
                query: query.name.clone(),
            });
        }
        let space = CandidateSpace::new(self.db, query, self.mode);
        let session = self.scorer.for_query(query);
        let mut stats = SearchStats::default();
        let mut rng = self
            .exploration
            .filter(|e| e.epsilon > 0.0)
            .map(|e| SmallRng::seed_from_u64(e.seed ^ ((query.id as u64) << 20) ^ 0xBEA7));

        // Reuse the planner's seen-table when it is free; under
        // concurrent `plan` calls fall back to a fresh local table so
        // parallel planning never serializes (as in `DpPlanner`).
        let mut guard = self.scratch.acquire();
        let scratch: &mut BeamScratch = &mut guard;

        // Scan candidates are state-independent: score them once per table.
        let scan_variants: Vec<Vec<Tree>> = (0..n)
            .map(|qt| {
                space
                    .scored_scan_plans(qt, &*session)
                    .into_iter()
                    .map(|(plan, st)| {
                        stats.candidates += 1;
                        stats.cost_calls += 1;
                        Tree::new(plan, st)
                    })
                    .collect()
            })
            .collect();

        // Initial forest: each table as its best-scoring scan candidate.
        let leaves: Vec<Tree> = scan_variants
            .iter()
            .map(|vs| {
                vs.iter()
                    .min_by(|a, b| a.st.score.partial_cmp(&b.st.score).expect("finite"))
                    .expect("at least one scan candidate")
                    .clone()
            })
            .collect();
        let sig = leaves.iter().fold(0u64, |acc, t| acc.wrapping_add(t.mix));
        let mut beam = vec![State { trees: leaves, sig }];
        stats.states += 1;

        let mut plan_buf: Vec<Arc<Plan>> = Vec::new();
        for _level in 0..n.saturating_sub(1) {
            // Phase 1: generate candidates in a fixed serial order and
            // drop duplicate states before they cost a scoring call.
            let t_gen = Instant::now();
            scratch.seen.clear();
            let mut pending: Vec<Pending<'_>> = Vec::new();
            for (si, state) in beam.iter().enumerate() {
                let m = state.trees.len();
                // In left-deep mode two composite trees can never merge
                // (the right join input must be a scan), so a forest
                // with two chains is a dead end no plan can complete.
                // Once a chain exists, only moves that extend it are
                // generated; starting a second chain would strand the
                // state — and a beam full of stranded states would
                // misreport a connected graph as disconnected.
                let has_chain = self.mode == SearchMode::LeftDeep
                    && state.trees.iter().any(|t| !t.plan.is_scan());
                for i in 0..m {
                    for j in 0..m {
                        if i == j
                            || (has_chain && state.trees[i].plan.is_scan())
                            || !query
                                .connected(state.trees[i].plan.mask(), state.trees[j].plan.mask())
                        {
                            continue;
                        }
                        let base_sig = state
                            .sig
                            .wrapping_sub(state.trees[i].mix)
                            .wrapping_sub(state.trees[j].mix);
                        let lvs = self.variants(&scan_variants, &state.trees[i]);
                        let rvs = self.variants(&scan_variants, &state.trees[j]);
                        for lv in lvs {
                            for rv in rvs {
                                space.join_plans_into(&lv.plan, &rv.plan, &mut plan_buf);
                                for plan in plan_buf.drain(..) {
                                    stats.candidates += 1;
                                    let mix = mix_fingerprint(plan.fingerprint());
                                    let sig = base_sig.wrapping_add(mix);
                                    if !scratch.seen.insert(sig) {
                                        continue;
                                    }
                                    pending.push(Pending {
                                        si,
                                        i,
                                        j,
                                        sig,
                                        mix,
                                        plan,
                                        lst: &lv.st,
                                        rst: &rv.st,
                                    });
                                }
                            }
                        }
                    }
                }
            }
            stats.dedup_secs += t_gen.elapsed().as_secs_f64();

            // Budget boundary: candidates generated (work) and dedup
            // survivors (memo) both come from the serial generate
            // phase, so the check is bit-reproducible for any pool
            // width — and it runs before scoring *and* before the
            // slot-filling step, leaving the exploration RNG stream
            // untouched on the abort path.
            if !self.budget.is_unlimited() {
                self.budget
                    .check("beam", query, stats.candidates as u64, pending.len())?;
            }

            // Phase 2: score all survivors — one batched call per
            // work-stolen span, every result published at its input
            // index (bit-identical for any thread count and steal
            // schedule, since batch layout is never a math change).
            // Spans are sized so a level fans out finely enough to
            // re-balance skew without claim-lock churn on cheap items.
            let t_score = Instant::now();
            let span = (pending.len() / (self.pool.threads().max(1) * 8)).max(32);
            if self.pool.span_workers(pending.len(), span) > 1 {
                stats.parallel_items += pending.len();
            }
            let scored: Vec<ScoredTree> =
                self.pool
                    .steal_map_spans(pending.len(), span, |lo, hi, out| {
                        let cands: Vec<JoinCandidate<'_>> = pending[lo..hi]
                            .iter()
                            .map(|p| JoinCandidate {
                                join: &p.plan,
                                lc: p.lst,
                                rc: p.rst,
                            })
                            .collect();
                        session.score_join_batch(&cands, out);
                    });
            stats.cost_calls += pending.len();
            stats.score_secs += t_score.elapsed().as_secs_f64();

            // Phase 3: rank survivors and materialize only the kept
            // slots. Totals are summed in the same order a full state
            // assembly would (remaining trees in position order, then
            // the joined tree), and ranking goes through a stable index
            // sort, so selection — ties included — is bit-identical to
            // sorting fully-built states; but forests are cloned only
            // for the ≤ `width` states that enter the next level, not
            // for every survivor.
            let t_asm = Instant::now();
            if pending.is_empty() {
                // No connected pair of trees remains to join: the join
                // graph is disconnected.
                return Err(PlanError::DisconnectedGraph {
                    query: query.name.clone(),
                });
            }
            let totals: Vec<f64> = pending
                .iter()
                .zip(&scored)
                .map(|(p, st)| {
                    let state = &beam[p.si];
                    let mut total = 0.0;
                    for (k, t) in state.trees.iter().enumerate() {
                        if k != p.i && k != p.j {
                            total += t.st.score;
                        }
                    }
                    total + st.score
                })
                .collect();
            let mut order: Vec<u32> = (0..pending.len() as u32).collect();
            order.sort_by(|&a, &b| {
                totals[a as usize]
                    .partial_cmp(&totals[b as usize])
                    .expect("finite scores")
            });
            stats.states += order.len();
            // Epsilon-greedy slot filling: slot s takes the next-best
            // candidate, or — with probability ε — a random survivor.
            if let Some(rng) = rng.as_mut() {
                let eps = self.exploration.expect("rng implies exploration").epsilon;
                for slot in 0..self.width.min(order.len()) {
                    if rng.random_bool(eps) {
                        let pick = rng.random_range(slot..order.len());
                        order.swap(slot, pick);
                    }
                }
            }
            order.truncate(self.width);
            let mut next: Vec<State> = Vec::with_capacity(order.len());
            for &ci in &order {
                let (p, st) = (&pending[ci as usize], &scored[ci as usize]);
                let state = &beam[p.si];
                let mut trees: Vec<Tree> = Vec::with_capacity(state.trees.len() - 1);
                trees.extend(
                    state
                        .trees
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| *k != p.i && *k != p.j)
                        .map(|(_, t)| t.clone()),
                );
                trees.push(Tree {
                    plan: p.plan.clone(),
                    st: st.clone(),
                    mix: p.mix,
                });
                next.push(State { trees, sig: p.sig });
            }
            stats.dedup_secs += t_asm.elapsed().as_secs_f64();
            beam = next;
        }

        let best = &beam[0];
        assert_eq!(best.trees.len(), 1, "beam must end with a single tree");
        let tree = &best.trees[0];
        let mut planned = PlannedQuery {
            plan: tree.plan.clone(),
            cost: tree.st.score,
            stats,
            planning_secs: start.elapsed().as_secs_f64(),
        };
        // Scorer scores may be learned log-latencies (legitimately
        // negative), so only the structural checks run here.
        verify_emitted(&self.name(), query, &mut planned, None);
        Ok(planned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DpPlanner;
    use balsa_card::HistogramEstimator;
    use balsa_cost::{CostModel, CostScorer, ExpertCostModel, OpWeights};
    use balsa_query::workloads::job_workload;
    use balsa_storage::{mini_imdb, DataGenConfig};

    fn fixture() -> (Arc<Database>, balsa_query::Workload) {
        let db = Arc::new(mini_imdb(DataGenConfig {
            scale: 0.02,
            ..Default::default()
        }));
        let w = job_workload(db.catalog(), 7);
        (db, w)
    }

    #[test]
    fn beam_produces_valid_complete_plans() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        let scorer = CostScorer::new(&model, &est);
        for q in w.queries.iter().take(4) {
            let beam = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5);
            let out = beam.plan(q);
            assert_eq!(out.plan.mask(), q.all_mask(), "{}", q.name);
            let recost = model.plan_cost(q, &out.plan, &est);
            assert!((out.cost - recost).abs() <= 1e-6 * recost.abs().max(1.0));
        }
    }

    #[test]
    fn beam_never_beats_dp() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        let scorer = CostScorer::new(&model, &est);
        for q in w.queries.iter().filter(|q| q.num_tables() <= 9).take(5) {
            let dp = DpPlanner::new(&db, &model, &est, SearchMode::Bushy).plan(q);
            let bm = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 10).plan(q);
            assert!(
                bm.cost >= dp.cost * (1.0 - 1e-9),
                "{}: beam {} below dp optimum {}",
                q.name,
                bm.cost,
                dp.cost
            );
        }
    }

    #[test]
    fn wider_beams_do_no_worse() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        let scorer = CostScorer::new(&model, &est);
        let q = w.queries.iter().find(|q| q.num_tables() >= 6).unwrap();
        let narrow = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 1).plan(q);
        let wide = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 20).plan(q);
        assert!(wide.cost <= narrow.cost * (1.0 + 1e-9));
    }

    #[test]
    fn left_deep_beam_is_left_deep() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::commdb_like());
        let scorer = CostScorer::new(&model, &est);
        for q in w.queries.iter().take(4) {
            let out = BeamPlanner::new(&db, &scorer, SearchMode::LeftDeep, 5).plan(q);
            assert!(out.plan.is_left_deep(), "{}: {}", q.name, out.plan);
        }
    }

    #[test]
    fn zero_epsilon_exploration_is_exactly_greedy() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        let scorer = CostScorer::new(&model, &est);
        let q = w.queries.iter().find(|q| q.num_tables() >= 6).unwrap();
        let greedy = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5).plan(q);
        let eps0 = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5)
            .with_exploration(0.0, 123)
            .plan(q);
        assert_eq!(greedy.plan.fingerprint(), eps0.plan.fingerprint());
        assert_eq!(greedy.cost, eps0.cost);
    }

    /// Pins the epsilon-greedy exploration stream: the PR 2 behavior
    /// policy consumes its RNG only in the slot-filling step (one
    /// `random_bool` per kept slot, one `random_range` per hit), so
    /// neither batched scoring nor dedup-before-score nor parallel
    /// expansion may shift which candidates get explored. If this test
    /// breaks, previously recorded learning curves are no longer
    /// reproducible — treat that as a regression, not a re-pin.
    #[test]
    fn exploration_stream_is_pinned() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        let scorer = CostScorer::new(&model, &est);
        let q = w.queries.iter().find(|q| q.num_tables() >= 7).unwrap();
        assert_eq!(q.name, "job_17a");
        let expected = [
            "NL[Seq(6), NL[Seq(5), NL[NL[NL[Seq(2), NL[Seq(3), Seq(1)]], Seq(4)], Seq(0)]]]",
            "NL[MJ[NL[Seq(5), HJ[Seq(0), NL[NL[Seq(3), Seq(1)], Seq(2)]]], Seq(6)], Idx(4)]",
            "MJ[Idx(2), HJ[MJ[Seq(5), Seq(6)], NL[NL[NL[Seq(1), Seq(3)], Seq(4)], Seq(0)]]]",
            "NL[NL[Seq(5), NL[NL[NL[HJ[Seq(1), Seq(3)], Seq(2)], Seq(4)], Seq(0)]], Idx(6)]",
        ];
        for (seed, want) in expected.iter().enumerate() {
            let out = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5)
                .with_exploration(0.7, seed as u64)
                .plan(q);
            assert_eq!(
                out.plan.to_string(),
                *want,
                "seed {seed}: explored-candidate sequence shifted"
            );
            // The pinned sequence holds for any pool width too.
            let pooled = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5)
                .with_exploration(0.7, seed as u64)
                .with_pool(WorkerPool::new(4))
                .plan(q);
            assert_eq!(pooled.plan.to_string(), *want, "seed {seed} (pooled)");
        }
    }

    #[test]
    fn exploration_is_deterministic_valid_and_diverse() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        let scorer = CostScorer::new(&model, &est);
        let q = w.queries.iter().find(|q| q.num_tables() >= 7).unwrap();
        let a = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5)
            .with_exploration(0.5, 9)
            .plan(q);
        let b = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5)
            .with_exploration(0.5, 9)
            .plan(q);
        assert_eq!(a.plan.fingerprint(), b.plan.fingerprint(), "same seed");
        assert_eq!(a.plan.mask(), q.all_mask(), "exploration keeps validity");
        // Across seeds, exploration visits different plans at least once.
        let greedy = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5).plan(q);
        let distinct = (0..20).any(|s| {
            let p = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5)
                .with_exploration(0.7, s)
                .plan(q);
            p.plan.fingerprint() != greedy.plan.fingerprint()
        });
        assert!(distinct, "epsilon-greedy never deviated from greedy");
        // Name reflects the exploration setting.
        let named = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5).with_exploration(0.25, 1);
        assert!(named.name().contains("+eps0.25"), "{}", named.name());
    }
}
