//! Width-`k` beam search over join forests.
//!
//! This is the inference procedure of Balsa's agent (§5): states are
//! forests of disjoint partial plans; each step joins two connected
//! trees with a physical operator; the beam keeps the `k` best-scoring
//! states per level and a complete plan emerges after `n-1` steps. The
//! scoring function is any [`PlanScorer`] — a classical cost model via
//! [`balsa_cost::CostScorer`], or `balsa-learn`'s learned value model —
//! slotted into exactly the position the paper gives the value network.
//! Candidate moves come from the same [`CandidateSpace`] as the DP
//! enumerator, so beam search explores a subset of the DP space; when
//! the scorer is a compositional cost model, its best plan's cost is
//! bounded below by the DP optimum.
//!
//! Scan operators are decided lazily: a leaf enters the initial forest
//! as its cheapest scan, and every join step re-considers all scan
//! candidates for leaf inputs (mirroring how the paper's agent picks
//! scans as part of each join action).
//!
//! **Exploration** (§5.2): with [`BeamPlanner::with_exploration`], each
//! kept beam slot is, with probability ε, replaced by a uniformly random
//! surviving candidate instead of the next-best one — the epsilon-greedy
//! policy the training loop uses to diversify the plans it executes.
//! Sampling is deterministic given the seed and query id.

use crate::candidates::CandidateSpace;
use crate::{PlannedQuery, Planner, SearchMode, SearchStats};
use balsa_cost::{PlanScorer, ScoredTree};
use balsa_query::{Plan, Query};
use balsa_storage::Database;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// One partial plan in a forest.
#[derive(Clone)]
struct Tree {
    plan: Arc<Plan>,
    st: ScoredTree,
}

/// One beam state: a forest of disjoint trees covering all tables.
#[derive(Clone)]
struct State {
    trees: Vec<Tree>,
    /// Sum of tree scores — the beam score (lower is better).
    total: f64,
}

impl State {
    /// Canonical signature for deduplication: sorted tree fingerprints.
    fn signature(&self) -> Vec<u64> {
        let mut sig: Vec<u64> = self.trees.iter().map(|t| t.plan.fingerprint()).collect();
        sig.sort_unstable();
        sig
    }
}

/// Epsilon-greedy beam exploration parameters.
#[derive(Debug, Clone, Copy)]
struct Exploration {
    epsilon: f64,
    seed: u64,
}

/// The width-`k` beam-search planner over an arbitrary [`PlanScorer`].
pub struct BeamPlanner<'a> {
    db: &'a Database,
    scorer: &'a dyn PlanScorer,
    mode: SearchMode,
    width: usize,
    exploration: Option<Exploration>,
}

impl<'a> BeamPlanner<'a> {
    /// Creates a beam planner with beam width `width` (≥ 1), ranking
    /// candidates by `scorer`.
    pub fn new(
        db: &'a Database,
        scorer: &'a dyn PlanScorer,
        mode: SearchMode,
        width: usize,
    ) -> Self {
        assert!(width >= 1, "beam width must be at least 1");
        Self {
            db,
            scorer,
            mode,
            width,
            exploration: None,
        }
    }

    /// Enables epsilon-greedy exploration: at every level, each kept
    /// beam slot is with probability `epsilon` filled by a uniformly
    /// random surviving candidate instead of the next-best one. The
    /// returned plan is the state in slot 0, so with probability ε the
    /// planner executes an exploratory plan — the behavior policy of the
    /// fine-tuning loop (§5.2). `epsilon = 0` is exactly greedy.
    pub fn with_exploration(mut self, epsilon: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        self.exploration = Some(Exploration { epsilon, seed });
        self
    }

    /// Scan variants for a tree: leaves re-open their scan choice (from
    /// the precomputed per-table candidates), inner trees are kept as-is.
    fn variants<'t>(&self, scan_variants: &'t [Vec<Tree>], tree: &'t Tree) -> &'t [Tree] {
        match &*tree.plan {
            Plan::Scan { qt, .. } => &scan_variants[*qt as usize],
            Plan::Join { .. } => std::slice::from_ref(tree),
        }
    }
}

impl Planner for BeamPlanner<'_> {
    fn name(&self) -> String {
        let shape = match self.mode {
            SearchMode::Bushy => "bushy",
            SearchMode::LeftDeep => "leftdeep",
        };
        let eps = match self.exploration {
            Some(e) if e.epsilon > 0.0 => format!("+eps{:.2}", e.epsilon),
            _ => String::new(),
        };
        format!("beam{}-{}/{}{}", self.width, shape, self.scorer.name(), eps)
    }

    fn plan(&self, query: &Query) -> PlannedQuery {
        let start = Instant::now();
        let n = query.num_tables();
        assert!(n >= 1, "query has no tables");
        let space = CandidateSpace::new(self.db, query, self.mode);
        let session = self.scorer.for_query(query);
        let mut stats = SearchStats::default();
        let mut rng = self
            .exploration
            .filter(|e| e.epsilon > 0.0)
            .map(|e| SmallRng::seed_from_u64(e.seed ^ ((query.id as u64) << 20) ^ 0xBEA7));

        // Scan candidates are state-independent: score them once per table.
        let scan_variants: Vec<Vec<Tree>> = (0..n)
            .map(|qt| {
                space
                    .scored_scan_plans(qt, &*session)
                    .into_iter()
                    .map(|(plan, st)| {
                        stats.candidates += 1;
                        Tree { plan, st }
                    })
                    .collect()
            })
            .collect();

        // Initial forest: each table as its best-scoring scan candidate.
        let leaves: Vec<Tree> = scan_variants
            .iter()
            .map(|vs| {
                vs.iter()
                    .min_by(|a, b| a.st.score.partial_cmp(&b.st.score).expect("finite"))
                    .expect("at least one scan candidate")
                    .clone()
            })
            .collect();
        let total = leaves.iter().map(|t| t.st.score).sum();
        let mut beam = vec![State {
            trees: leaves,
            total,
        }];
        stats.states += 1;

        for _level in 0..n.saturating_sub(1) {
            let mut next: Vec<State> = Vec::new();
            let mut seen: HashSet<Vec<u64>> = HashSet::new();
            for state in &beam {
                let m = state.trees.len();
                for i in 0..m {
                    for j in 0..m {
                        if i == j
                            || !query
                                .connected(state.trees[i].plan.mask(), state.trees[j].plan.mask())
                        {
                            continue;
                        }
                        let lvs = self.variants(&scan_variants, &state.trees[i]);
                        let rvs = self.variants(&scan_variants, &state.trees[j]);
                        for lv in lvs {
                            for rv in rvs {
                                for (plan, st) in space.scored_join_plans(
                                    &lv.plan, &lv.st, &rv.plan, &rv.st, &*session,
                                ) {
                                    stats.candidates += 1;
                                    let mut trees: Vec<Tree> = state
                                        .trees
                                        .iter()
                                        .enumerate()
                                        .filter(|(k, _)| *k != i && *k != j)
                                        .map(|(_, t)| t.clone())
                                        .collect();
                                    let joined = Tree { plan, st };
                                    let total = trees.iter().map(|t| t.st.score).sum::<f64>()
                                        + joined.st.score;
                                    trees.push(joined);
                                    let cand = State { trees, total };
                                    if seen.insert(cand.signature()) {
                                        next.push(cand);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            assert!(
                !next.is_empty(),
                "beam stuck on {} (disconnected join graph?)",
                query.name
            );
            next.sort_by(|a, b| a.total.partial_cmp(&b.total).expect("finite scores"));
            // Epsilon-greedy slot filling: slot s takes the next-best
            // candidate, or — with probability ε — a random survivor.
            if let Some(rng) = rng.as_mut() {
                let eps = self.exploration.expect("rng implies exploration").epsilon;
                for slot in 0..self.width.min(next.len()) {
                    if rng.random_bool(eps) {
                        let pick = rng.random_range(slot..next.len());
                        next.swap(slot, pick);
                    }
                }
            }
            next.truncate(self.width);
            stats.states += next.len();
            beam = next;
        }

        let best = &beam[0];
        assert_eq!(best.trees.len(), 1, "beam must end with a single tree");
        let tree = &best.trees[0];
        PlannedQuery {
            plan: tree.plan.clone(),
            cost: tree.st.score,
            stats,
            planning_secs: start.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DpPlanner;
    use balsa_card::HistogramEstimator;
    use balsa_cost::{CostModel, CostScorer, ExpertCostModel, OpWeights};
    use balsa_query::workloads::job_workload;
    use balsa_storage::{mini_imdb, DataGenConfig};

    fn fixture() -> (Arc<Database>, balsa_query::Workload) {
        let db = Arc::new(mini_imdb(DataGenConfig {
            scale: 0.02,
            ..Default::default()
        }));
        let w = job_workload(db.catalog(), 7);
        (db, w)
    }

    #[test]
    fn beam_produces_valid_complete_plans() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        let scorer = CostScorer::new(&model, &est);
        for q in w.queries.iter().take(4) {
            let beam = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5);
            let out = beam.plan(q);
            assert_eq!(out.plan.mask(), q.all_mask(), "{}", q.name);
            let recost = model.plan_cost(q, &out.plan, &est);
            assert!((out.cost - recost).abs() <= 1e-6 * recost.abs().max(1.0));
        }
    }

    #[test]
    fn beam_never_beats_dp() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        let scorer = CostScorer::new(&model, &est);
        for q in w.queries.iter().filter(|q| q.num_tables() <= 9).take(5) {
            let dp = DpPlanner::new(&db, &model, &est, SearchMode::Bushy).plan(q);
            let bm = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 10).plan(q);
            assert!(
                bm.cost >= dp.cost * (1.0 - 1e-9),
                "{}: beam {} below dp optimum {}",
                q.name,
                bm.cost,
                dp.cost
            );
        }
    }

    #[test]
    fn wider_beams_do_no_worse() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        let scorer = CostScorer::new(&model, &est);
        let q = w.queries.iter().find(|q| q.num_tables() >= 6).unwrap();
        let narrow = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 1).plan(q);
        let wide = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 20).plan(q);
        assert!(wide.cost <= narrow.cost * (1.0 + 1e-9));
    }

    #[test]
    fn left_deep_beam_is_left_deep() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::commdb_like());
        let scorer = CostScorer::new(&model, &est);
        for q in w.queries.iter().take(4) {
            let out = BeamPlanner::new(&db, &scorer, SearchMode::LeftDeep, 5).plan(q);
            assert!(out.plan.is_left_deep(), "{}: {}", q.name, out.plan);
        }
    }

    #[test]
    fn zero_epsilon_exploration_is_exactly_greedy() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        let scorer = CostScorer::new(&model, &est);
        let q = w.queries.iter().find(|q| q.num_tables() >= 6).unwrap();
        let greedy = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5).plan(q);
        let eps0 = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5)
            .with_exploration(0.0, 123)
            .plan(q);
        assert_eq!(greedy.plan.fingerprint(), eps0.plan.fingerprint());
        assert_eq!(greedy.cost, eps0.cost);
    }

    #[test]
    fn exploration_is_deterministic_valid_and_diverse() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        let scorer = CostScorer::new(&model, &est);
        let q = w.queries.iter().find(|q| q.num_tables() >= 7).unwrap();
        let a = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5)
            .with_exploration(0.5, 9)
            .plan(q);
        let b = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5)
            .with_exploration(0.5, 9)
            .plan(q);
        assert_eq!(a.plan.fingerprint(), b.plan.fingerprint(), "same seed");
        assert_eq!(a.plan.mask(), q.all_mask(), "exploration keeps validity");
        // Across seeds, exploration visits different plans at least once.
        let greedy = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5).plan(q);
        let distinct = (0..20).any(|s| {
            let p = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5)
                .with_exploration(0.7, s)
                .plan(q);
            p.plan.fingerprint() != greedy.plan.fingerprint()
        });
        assert!(distinct, "epsilon-greedy never deviated from greedy");
        // Name reflects the exploration setting.
        let named = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5).with_exploration(0.25, 1);
        assert!(named.name().contains("+eps0.25"), "{}", named.name());
    }
}
