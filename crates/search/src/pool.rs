//! A minimal scoped worker pool for per-query parallelism.
//!
//! Planning is embarrassingly parallel across queries — every
//! [`crate::Planner::plan`] call is independent — and the training
//! loop's per-iteration planning/featurization phase is the dominant
//! CPU cost once execution is simulated. The vendor shims cannot pull
//! in rayon, so [`WorkerPool`] provides the one primitive the
//! workspace needs: an indexed parallel map over a slice, built on
//! `std::thread::scope` with zero external dependencies.
//!
//! **Determinism.** Work is distributed dynamically (an atomic cursor,
//! or range-splitting work-stealing for span work), but results are
//! written to their item's index, so the output order is always the
//! input order regardless of scheduling. Callers that need reproducible
//! randomness seed an RNG per item (e.g. the beam's exploration RNG is
//! keyed on query id), never per worker — under that contract a run
//! with `t` threads is bit-identical to the serial run.
//!
//! **Work stealing.** [`WorkerPool::steal_map_spans`] seeds each worker
//! with one of the [`WorkerPool::chunk_ranges`] and lets idle workers
//! steal the back half of a victim's remaining range, probing victims
//! in a fixed order derived from the thief's own index. Contiguous
//! fixed chunks idle `t - 1` workers whenever per-item cost is skewed
//! toward one chunk (a DP level whose last pairs carry the biggest
//! Pareto sets, a beam level whose candidates cluster on one state);
//! stealing re-balances those tails while every result still lands at
//! its input index, so the output — and, under the span-invariance
//! contract below, every byte of it — is identical for any thread
//! count and any steal schedule.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-width scoped worker pool.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool running `threads` workers (`>= 1`; 1 means fully
    /// serial execution on the calling thread).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Pool sized from the `BALSA_PLAN_THREADS` environment variable,
    /// falling back to the machine's available parallelism.
    pub fn from_env() -> Self {
        Self::new(env_threads())
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, returning results in input order. `f`
    /// receives `(index, &item)`. Runs on the calling thread when the
    /// pool is serial or the input is trivial.
    ///
    /// # Panics
    /// Propagates the first worker panic.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_init(items, || (), |(), i, t| f(i, t))
    }

    /// Splits `len` items into at most [`WorkerPool::threads`]
    /// contiguous, balanced, non-empty `(start, end)` ranges (empty for
    /// `len == 0`). This is the deterministic partition for intra-query
    /// work — concatenating per-range results in range order reproduces
    /// the serial order for **any** thread count, which is what lets
    /// the beam's parallel expansion stay bit-identical to serial.
    pub fn chunk_ranges(&self, len: usize) -> Vec<(usize, usize)> {
        if len == 0 {
            return Vec::new();
        }
        let chunks = self.threads.min(len);
        let (base, rem) = (len / chunks, len % chunks);
        let mut out = Vec::with_capacity(chunks);
        let mut lo = 0;
        for c in 0..chunks {
            let hi = lo + base + usize::from(c < rem);
            out.push((lo, hi));
            lo = hi;
        }
        out
    }

    /// Deterministic work-stealing map over index spans.
    ///
    /// `f(lo, hi, out)` must append **exactly `hi - lo`** results for
    /// items `lo..hi`, and must be *span-invariant*: running it over
    /// any partition of `0..len` into ordered spans and concatenating
    /// must equal one `f(0, len, out)` call (true whenever the per-item
    /// result does not depend on which span the item landed in — e.g.
    /// batched scoring whose batch layout never changes the math).
    /// Under that contract the returned vector is bit-identical to the
    /// serial run for every thread count.
    ///
    /// Scheduling: each worker is seeded with one of the
    /// [`WorkerPool::chunk_ranges`] and claims up to `max_span` items
    /// at a time from its range's front; a worker whose range is
    /// exhausted probes the other workers in a fixed order (`w + 1`,
    /// `w + 2`, … modulo the worker count) and steals the back half of
    /// the first non-empty range it finds. Results are published at
    /// their input index, so the steal schedule never shows in the
    /// output.
    ///
    /// # Panics
    /// Panics if `max_span == 0`, if `f` appends a wrong count for some
    /// span, or a worker panics.
    pub fn steal_map_spans<R, F>(&self, len: usize, max_span: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, usize, &mut Vec<R>) + Sync,
    {
        assert!(max_span >= 1, "max_span must be at least 1");
        let workers = self.threads.min(len.div_ceil(max_span));
        if workers <= 1 {
            let mut out = Vec::with_capacity(len);
            if len > 0 {
                f(0, len, &mut out);
                assert_eq!(out.len(), len, "span fn must produce one result per item");
            }
            return out;
        }
        // One remaining-range deque per worker, seeded contiguously —
        // exactly `workers` ranges (not `self.threads`: every queue
        // must have an owner, and thieves only probe worker queues).
        let queues: Vec<Mutex<(usize, usize)>> = WorkerPool::new(workers)
            .chunk_ranges(len)
            .into_iter()
            .map(Mutex::new)
            .collect();
        debug_assert_eq!(queues.len(), workers);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(len);
        slots.resize_with(len, || None);
        let results = Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let queues = &queues;
                let f = &f;
                let results = &results;
                scope.spawn(move || {
                    let mut produced: Vec<(usize, usize, Vec<R>)> = Vec::new();
                    'work: loop {
                        // Claim up to `max_span` items from the front of
                        // our own range.
                        let claimed = {
                            let mut own = queues[w].lock().expect("queue not poisoned");
                            if own.0 < own.1 {
                                let hi = (own.0 + max_span).min(own.1);
                                let span = (own.0, hi);
                                own.0 = hi;
                                Some(span)
                            } else {
                                None
                            }
                        };
                        if let Some((lo, hi)) = claimed {
                            let mut out = Vec::with_capacity(hi - lo);
                            f(lo, hi, &mut out);
                            assert_eq!(
                                out.len(),
                                hi - lo,
                                "span fn must produce one result per item"
                            );
                            produced.push((lo, hi, out));
                            continue;
                        }
                        // Own range exhausted: steal the back half of the
                        // first non-empty victim, probing in the fixed
                        // order w+1, w+2, … (deterministic per thief; the
                        // output cannot depend on it regardless).
                        for k in 1..workers {
                            let v = (w + k) % workers;
                            let stolen = {
                                let mut victim = queues[v].lock().expect("queue not poisoned");
                                if victim.0 < victim.1 {
                                    let mid = victim.0 + (victim.1 - victim.0) / 2;
                                    let back = (mid, victim.1);
                                    victim.1 = mid;
                                    Some(back)
                                } else {
                                    None
                                }
                            };
                            if let Some(range) = stolen {
                                if range.0 < range.1 {
                                    *queues[w].lock().expect("queue not poisoned") = range;
                                    continue 'work;
                                }
                            }
                        }
                        break; // every queue drained
                    }
                    let mut out = results.lock().expect("no poisoned result slots");
                    for (lo, _hi, vec) in produced {
                        for (k, r) in vec.into_iter().enumerate() {
                            out[lo + k] = Some(r);
                        }
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every index produced exactly once"))
            .collect()
    }

    /// Per-item convenience over [`WorkerPool::steal_map_spans`]:
    /// work-stealing map of `f` over `items`, results in input order.
    /// `max_span` bounds how many consecutive items one claim covers
    /// (1 = finest-grained balancing; larger spans amortize claim
    /// locking for cheap items).
    pub fn steal_map<T, R, F>(&self, items: &[T], max_span: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.steal_map_spans(items.len(), max_span, |lo, hi, out| {
            out.extend(items[lo..hi].iter().enumerate().map(|(k, t)| f(lo + k, t)));
        })
    }

    /// Like [`WorkerPool::map`], but every worker thread first builds a
    /// private state with `init` (once per worker, not per item) and
    /// `f` receives `(&mut state, index, &item)` — the hook for
    /// per-worker planners whose scratch memo amortizes across the
    /// items a worker processes.
    ///
    /// # Panics
    /// Propagates the first worker panic.
    pub fn map_init<S, T, R, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            let mut state = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| f(&mut state, i, t))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        let results = std::sync::Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // Compute a local batch, then publish by index so
                    // output order never depends on scheduling.
                    let mut state = init();
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        produced.push((i, f(&mut state, i, &items[i])));
                    }
                    let mut out = results.lock().expect("no poisoned result slots");
                    for (i, r) in produced {
                        out[i] = Some(r);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every index produced exactly once"))
            .collect()
    }
}

/// Realized speedup of a parallel phase — the summed per-item walls
/// over the phase's wall-clock — or `None` when the pool was serial, in
/// which case the "speedup" would only measure measurement overhead and
/// benchmarks suppress the field. Shared by the planner and learning
/// benchmarks so the suppression rule cannot drift between them.
pub fn parallel_speedup(total_secs: f64, wall_secs: f64, threads: usize) -> Option<f64> {
    (threads > 1).then(|| total_secs / wall_secs.max(1e-12))
}

/// Thread count from `BALSA_PLAN_THREADS` (≥ 1), else the machine's
/// available parallelism, else 1.
pub fn env_threads() -> usize {
    std::env::var("BALSA_PLAN_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        // 0 means "pool off" (serial), matching WorkerPool's own clamp.
        .map(|t| t.max(1))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 3, 8, 64] {
            let pool = WorkerPool::new(threads);
            let out = pool.map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..100).collect();
        WorkerPool::new(7).map(&items, |_, &x| {
            counters[x].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn env_zero_threads_means_serial() {
        // Not a full env-var test (process-global state); just the
        // clamp contract both entry points share.
        assert_eq!(WorkerPool::new(0).threads(), 1);
        assert_eq!(WorkerPool::new(1).threads(), 1);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = WorkerPool::new(4);
        let empty: Vec<u8> = Vec::new();
        assert!(pool.map(&empty, |_, &x| x).is_empty());
        assert_eq!(pool.map(&[9u8], |_, &x| x + 1), vec![10]);
        assert_eq!(WorkerPool::new(0).threads(), 1, "clamped to serial");
    }

    #[test]
    fn parallel_map_matches_serial_map() {
        let items: Vec<u64> = (0..512).collect();
        let f = |i: usize, x: &u64| (i as u64).wrapping_mul(0x9E3779B9) ^ x;
        let serial = WorkerPool::new(1).map(&items, f);
        let parallel = WorkerPool::new(5).map(&items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        for threads in [1usize, 2, 3, 7, 16] {
            let pool = WorkerPool::new(threads);
            assert!(pool.chunk_ranges(0).is_empty());
            for len in [1usize, 2, 5, 16, 257] {
                let ranges = pool.chunk_ranges(len);
                assert!(ranges.len() <= threads && !ranges.is_empty());
                // Contiguous, ordered, non-empty, covering [0, len).
                let mut at = 0;
                for &(lo, hi) in &ranges {
                    assert_eq!(lo, at);
                    assert!(hi > lo);
                    at = hi;
                }
                assert_eq!(at, len);
                // Balanced: sizes differ by at most one.
                let sizes: Vec<usize> = ranges.iter().map(|&(l, h)| h - l).collect();
                let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(mx - mn <= 1, "{threads} threads, {len} items: {sizes:?}");
            }
        }
    }

    /// Property test: the work-stealing map is bit-identical to the
    /// contiguous `chunk_ranges` partition (and therefore to the serial
    /// map) under **adversarially skewed** per-item costs — all the
    /// weight piled onto one chunk, alternating heavy/light items, and
    /// front-loaded ramps — for a grid of thread counts and span sizes.
    #[test]
    fn steal_map_matches_chunked_map_under_skew() {
        // Per-item "cost" profiles; the work function burns cycles
        // proportional to the weight so heavy items really do pin
        // their worker while the others drain and steal.
        let n = 193usize;
        let profiles: Vec<Vec<u64>> = vec![
            // All the work in the last chunk's tail.
            (0..n).map(|i| if i > n - 8 { 4000 } else { 1 }).collect(),
            // All the work in the first items.
            (0..n).map(|i| if i < 8 { 4000 } else { 1 }).collect(),
            // Alternating heavy/light.
            (0..n).map(|i| if i % 7 == 0 { 1500 } else { 2 }).collect(),
            // Monotone ramp.
            (0..n).map(|i| (i as u64) * 13).collect(),
        ];
        let work = |i: usize, &wt: &u64| {
            // Deterministic spin: output depends only on the item.
            let mut acc = wt ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
            for _ in 0..wt {
                acc = acc.rotate_left(7) ^ 0xD1B54A32D192ED03;
            }
            acc
        };
        for weights in &profiles {
            let serial: Vec<u64> = weights
                .iter()
                .enumerate()
                .map(|(i, w)| work(i, w))
                .collect();
            for threads in [1usize, 2, 4, 8] {
                let pool = WorkerPool::new(threads);
                // Reference: the fixed contiguous partition.
                let ranges = pool.chunk_ranges(n);
                let chunked: Vec<u64> = pool
                    .map(&ranges, |_, &(lo, hi)| {
                        weights[lo..hi]
                            .iter()
                            .enumerate()
                            .map(|(k, w)| work(lo + k, w))
                            .collect::<Vec<u64>>()
                    })
                    .into_iter()
                    .flatten()
                    .collect();
                assert_eq!(chunked, serial, "{threads} threads (chunked)");
                for span in [1usize, 3, 16, 64] {
                    let stolen = pool.steal_map(weights, span, work);
                    assert_eq!(stolen, serial, "{threads} threads, span {span}");
                }
            }
        }
    }

    #[test]
    fn steal_map_spans_runs_every_index_exactly_once() {
        let n = 211usize;
        for threads in [2usize, 5, 8] {
            for span in [1usize, 4, 32] {
                let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                let out = WorkerPool::new(threads).steal_map_spans(n, span, |lo, hi, out| {
                    assert!(lo < hi && hi <= n && hi - lo <= span);
                    for (i, c) in counters.iter().enumerate().take(hi).skip(lo) {
                        c.fetch_add(1, Ordering::SeqCst);
                        out.push(i * 2);
                    }
                });
                assert_eq!(out, (0..n).map(|i| i * 2).collect::<Vec<_>>());
                assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
            }
        }
    }

    #[test]
    fn steal_map_spans_edge_cases() {
        let pool = WorkerPool::new(4);
        let empty: Vec<usize> = pool.steal_map_spans(0, 8, |_, _, _| unreachable!());
        assert!(empty.is_empty());
        let one = pool.steal_map_spans(1, 8, |lo, hi, out| {
            assert_eq!((lo, hi), (0, 1));
            out.push(42);
        });
        assert_eq!(one, vec![42]);
        // Serial pool takes the single-call fast path.
        let serial = WorkerPool::new(1).steal_map(&[1, 2, 3], 2, |_, &x| x * 10);
        assert_eq!(serial, vec![10, 20, 30]);
    }

    #[test]
    fn map_init_builds_one_state_per_worker() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 3, 8] {
            let inits = AtomicUsize::new(0);
            let out = WorkerPool::new(threads).map_init(
                &items,
                || {
                    inits.fetch_add(1, Ordering::SeqCst);
                    0usize
                },
                |state, _, &x| {
                    *state += 1; // worker-local: never racy
                    x * 3
                },
            );
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
            let n = inits.load(Ordering::SeqCst);
            assert!(
                (1..=threads.max(1)).contains(&n),
                "{threads} threads built {n} states"
            );
        }
    }
}
