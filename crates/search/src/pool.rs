//! A minimal scoped worker pool for per-query parallelism.
//!
//! Planning is embarrassingly parallel across queries — every
//! [`crate::Planner::plan`] call is independent — and the training
//! loop's per-iteration planning/featurization phase is the dominant
//! CPU cost once execution is simulated. The vendor shims cannot pull
//! in rayon, so [`WorkerPool`] provides the one primitive the
//! workspace needs: an indexed parallel map over a slice, built on
//! `std::thread::scope` with zero external dependencies.
//!
//! **Determinism.** Work is distributed dynamically (an atomic cursor),
//! but results are written to their item's index, so the output order
//! is always the input order regardless of scheduling. Callers that
//! need reproducible randomness seed an RNG per item (e.g. the beam's
//! exploration RNG is keyed on query id), never per worker — under that
//! contract a run with `t` threads is bit-identical to the serial run.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-width scoped worker pool.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool running `threads` workers (`>= 1`; 1 means fully
    /// serial execution on the calling thread).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Pool sized from the `BALSA_PLAN_THREADS` environment variable,
    /// falling back to the machine's available parallelism.
    pub fn from_env() -> Self {
        Self::new(env_threads())
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, returning results in input order. `f`
    /// receives `(index, &item)`. Runs on the calling thread when the
    /// pool is serial or the input is trivial.
    ///
    /// # Panics
    /// Propagates the first worker panic.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_init(items, || (), |(), i, t| f(i, t))
    }

    /// Splits `len` items into at most [`WorkerPool::threads`]
    /// contiguous, balanced, non-empty `(start, end)` ranges (empty for
    /// `len == 0`). This is the deterministic partition for intra-query
    /// work — concatenating per-range results in range order reproduces
    /// the serial order for **any** thread count, which is what lets
    /// the beam's parallel expansion stay bit-identical to serial.
    pub fn chunk_ranges(&self, len: usize) -> Vec<(usize, usize)> {
        if len == 0 {
            return Vec::new();
        }
        let chunks = self.threads.min(len);
        let (base, rem) = (len / chunks, len % chunks);
        let mut out = Vec::with_capacity(chunks);
        let mut lo = 0;
        for c in 0..chunks {
            let hi = lo + base + usize::from(c < rem);
            out.push((lo, hi));
            lo = hi;
        }
        out
    }

    /// Like [`WorkerPool::map`], but every worker thread first builds a
    /// private state with `init` (once per worker, not per item) and
    /// `f` receives `(&mut state, index, &item)` — the hook for
    /// per-worker planners whose scratch memo amortizes across the
    /// items a worker processes.
    ///
    /// # Panics
    /// Propagates the first worker panic.
    pub fn map_init<S, T, R, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            let mut state = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| f(&mut state, i, t))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        let results = std::sync::Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // Compute a local batch, then publish by index so
                    // output order never depends on scheduling.
                    let mut state = init();
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        produced.push((i, f(&mut state, i, &items[i])));
                    }
                    let mut out = results.lock().expect("no poisoned result slots");
                    for (i, r) in produced {
                        out[i] = Some(r);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every index produced exactly once"))
            .collect()
    }
}

/// Realized speedup of a parallel phase — the summed per-item walls
/// over the phase's wall-clock — or `None` when the pool was serial, in
/// which case the "speedup" would only measure measurement overhead and
/// benchmarks suppress the field. Shared by the planner and learning
/// benchmarks so the suppression rule cannot drift between them.
pub fn parallel_speedup(total_secs: f64, wall_secs: f64, threads: usize) -> Option<f64> {
    (threads > 1).then(|| total_secs / wall_secs.max(1e-12))
}

/// Thread count from `BALSA_PLAN_THREADS` (≥ 1), else the machine's
/// available parallelism, else 1.
pub fn env_threads() -> usize {
    std::env::var("BALSA_PLAN_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        // 0 means "pool off" (serial), matching WorkerPool's own clamp.
        .map(|t| t.max(1))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 3, 8, 64] {
            let pool = WorkerPool::new(threads);
            let out = pool.map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..100).collect();
        WorkerPool::new(7).map(&items, |_, &x| {
            counters[x].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn env_zero_threads_means_serial() {
        // Not a full env-var test (process-global state); just the
        // clamp contract both entry points share.
        assert_eq!(WorkerPool::new(0).threads(), 1);
        assert_eq!(WorkerPool::new(1).threads(), 1);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = WorkerPool::new(4);
        let empty: Vec<u8> = Vec::new();
        assert!(pool.map(&empty, |_, &x| x).is_empty());
        assert_eq!(pool.map(&[9u8], |_, &x| x + 1), vec![10]);
        assert_eq!(WorkerPool::new(0).threads(), 1, "clamped to serial");
    }

    #[test]
    fn parallel_map_matches_serial_map() {
        let items: Vec<u64> = (0..512).collect();
        let f = |i: usize, x: &u64| (i as u64).wrapping_mul(0x9E3779B9) ^ x;
        let serial = WorkerPool::new(1).map(&items, f);
        let parallel = WorkerPool::new(5).map(&items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        for threads in [1usize, 2, 3, 7, 16] {
            let pool = WorkerPool::new(threads);
            assert!(pool.chunk_ranges(0).is_empty());
            for len in [1usize, 2, 5, 16, 257] {
                let ranges = pool.chunk_ranges(len);
                assert!(ranges.len() <= threads && !ranges.is_empty());
                // Contiguous, ordered, non-empty, covering [0, len).
                let mut at = 0;
                for &(lo, hi) in &ranges {
                    assert_eq!(lo, at);
                    assert!(hi > lo);
                    at = hi;
                }
                assert_eq!(at, len);
                // Balanced: sizes differ by at most one.
                let sizes: Vec<usize> = ranges.iter().map(|&(l, h)| h - l).collect();
                let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(mx - mn <= 1, "{threads} threads, {len} items: {sizes:?}");
            }
        }
    }

    #[test]
    fn map_init_builds_one_state_per_worker() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 3, 8] {
            let inits = AtomicUsize::new(0);
            let out = WorkerPool::new(threads).map_init(
                &items,
                || {
                    inits.fetch_add(1, Ordering::SeqCst);
                    0usize
                },
                |state, _, &x| {
                    *state += 1; // worker-local: never racy
                    x * 3
                },
            );
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
            let n = inits.load(Ordering::SeqCst);
            assert!(
                (1..=threads.max(1)).contains(&n),
                "{threads} threads built {n} states"
            );
        }
    }
}
