//! A persistent deterministic worker pool for per-query parallelism.
//!
//! Planning is embarrassingly parallel across queries — every
//! [`crate::Planner::plan`] call is independent — and the training
//! loop's per-iteration planning/featurization phase is the dominant
//! CPU cost once execution is simulated. The vendor shims cannot pull
//! in rayon, so [`WorkerPool`] provides the primitives the workspace
//! needs — an indexed parallel map and a work-stealing span map — with
//! zero external dependencies.
//!
//! **Persistence.** Workers are spawned once, lazily, on the first
//! dispatch that wants them (`threads - 1` OS threads; the calling
//! thread is always participant 0) and *parked* on a condvar between
//! calls. A dispatch publishes a type-erased job descriptor (a raw
//! pointer to the caller's task closure plus a participant count),
//! bumps an epoch, and wakes the workers; it then runs its own share
//! and blocks until every participant has checked in, which is what
//! keeps the erased borrow alive. Dropping the last clone of a pool
//! parks no ghosts: drop signals shutdown and joins every worker.
//! Dispatch costs a lock + condvar wake (sub-microsecond) instead of
//! `thread::spawn`'s tens of microseconds, which is why the DP's
//! per-level fan-out cutoff could drop from 8192 to
//! [`crate::DpPlanner::with_parallel_cutoff`]'s new tiny default.
//!
//! **Determinism.** Work is distributed dynamically (an atomic cursor,
//! or range-splitting work-stealing for span work), but results are
//! written to their item's index, so the output order is always the
//! input order regardless of scheduling. Callers that need reproducible
//! randomness seed an RNG per item (e.g. the beam's exploration RNG is
//! keyed on query id), never per worker — under that contract a run
//! with `t` threads is bit-identical to the serial run.
//!
//! **Work stealing.** [`WorkerPool::steal_map_spans`] seeds each worker
//! with one of the [`WorkerPool::chunk_ranges`] and lets idle workers
//! steal the back half of a victim's remaining range, probing victims
//! in a fixed order derived from the thief's own index. Contiguous
//! fixed chunks idle `t - 1` workers whenever per-item cost is skewed
//! toward one chunk (a DP level whose last pairs carry the biggest
//! Pareto sets, a beam level whose candidates cluster on one state);
//! stealing re-balances those tails while every result still lands at
//! its input index, so the output — and, under the span-invariance
//! contract below, every byte of it — is identical for any thread
//! count and any steal schedule.
//!
//! **Nesting and sharing.** One pool instance is meant to be shared
//! (cheaply cloned — clones share the same workers) across the whole
//! workspace: benches, planners, and the training loop. Only one job
//! runs on the workers at a time; a dispatch that finds the pool busy —
//! a concurrent caller, or a *nested* call from inside a running task
//! (a planner fanning out a DP level while the outer bench fans out
//! queries on the same pool) — runs its whole job inline on the calling
//! thread as participant 0. The publish-at-input-index contract makes
//! that fallback bit-identical to the fanned-out execution.
//!
//! **Panic policy.** A panicking task no longer aborts the process via
//! poisoned queue mutexes: every participant runs under
//! `catch_unwind`, the first payload is captured, the surviving
//! participants drain the remaining work, and the payload is rethrown
//! exactly once on the calling thread after the job completes. The
//! pool itself stays usable afterwards.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, TryLockError};
use std::thread::JoinHandle;

/// Locks ignoring poison. The pool's own critical sections never panic,
/// but a panicking *task* on a sibling participant must not cascade into
/// `PoisonError` aborts here (the panic is captured and rethrown once by
/// the dispatcher instead).
fn lock_clean<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A published job: a type-erased pointer to the dispatching caller's
/// task closure, plus how many participants should run it. Participant
/// `p` of `workers` runs `task(p)`; the closure partitions work
/// internally (atomic cursor or per-participant range queues).
#[derive(Clone, Copy)]
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    workers: usize,
}

// SAFETY: the pointer is dereferenced only by pool workers between the
// epoch bump that publishes the job and the `active == 0` handshake
// that lets `run_job` return — an interval during which the dispatching
// caller is blocked with the closure alive on its stack. The closure is
// `Sync`, so shared `&` calls from many workers are fine.
unsafe impl Send for Job {}

/// Condvar-guarded pool state: the published job, its epoch (so parked
/// workers can tell a fresh job from a spurious wake), how many
/// *worker* participants are still running it, the first captured panic
/// payload, and the shutdown flag.
struct PoolState {
    job: Option<Job>,
    epoch: u64,
    active: usize,
    panic: Option<Box<dyn Any + Send + 'static>>,
    shutdown: bool,
}

struct PoolCore {
    state: Mutex<PoolState>,
    /// Workers park here between jobs; notified on publish and shutdown.
    work_cv: Condvar,
    /// The dispatching caller parks here until `active == 0`.
    done_cv: Condvar,
}

/// The clone-shared half of a pool: core + worker handles. Dropping the
/// last clone signals shutdown and joins every spawned worker, so a
/// pool never leaks threads past its own lifetime.
struct PoolShared {
    threads: usize,
    core: Arc<PoolCore>,
    /// Lazily grown to `threads - 1`; joined on drop.
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Held across one `run_job`. `try_lock` contention is how a nested
    /// or concurrent dispatch detects it must run inline instead.
    dispatch: Mutex<()>,
}

impl Drop for PoolShared {
    fn drop(&mut self) {
        lock_clean(&self.core.state).shutdown = true;
        self.core.work_cv.notify_all();
        let handles = std::mem::take(
            self.handles
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for h in handles {
            let _ = h.join();
        }
    }
}

/// The parked-worker loop for participant `p` (`1..threads`; the
/// dispatching caller is always participant 0). Sleeps on `work_cv`,
/// runs each new epoch's job if `p` participates, checks in through
/// `active`, and exits on shutdown.
fn worker_loop(core: Arc<PoolCore>, p: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = lock_clean(&core.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.job;
                }
                st = core
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // `job` is None only when this worker slept through an entire
        // job (possible iff it was not a participant — dispatch waits
        // for every participant before clearing the slot).
        let Some(job) = job else { continue };
        if p < job.workers {
            // SAFETY: see `Job` — the dispatcher is blocked until our
            // check-in below, so the erased pointer is alive here.
            let task = unsafe { &*job.task };
            let result = catch_unwind(AssertUnwindSafe(|| task(p)));
            let mut st = lock_clean(&core.state);
            if let Err(payload) = result {
                if st.panic.is_none() {
                    st.panic = Some(payload);
                }
            }
            st.active -= 1;
            if st.active == 0 {
                core.done_cv.notify_all();
            }
        }
    }
}

/// A fixed-width persistent worker pool. Cheap to clone — clones share
/// the same parked workers — and joins its workers when the last clone
/// drops.
#[derive(Clone)]
pub struct WorkerPool {
    shared: Arc<PoolShared>,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool running `threads` workers (`>= 1`; 1 means fully
    /// serial execution on the calling thread). No OS threads are
    /// spawned until the first dispatch that wants them.
    pub fn new(threads: usize) -> Self {
        Self {
            shared: Arc::new(PoolShared {
                threads: threads.max(1),
                core: Arc::new(PoolCore {
                    state: Mutex::new(PoolState {
                        job: None,
                        epoch: 0,
                        active: 0,
                        panic: None,
                        shutdown: false,
                    }),
                    work_cv: Condvar::new(),
                    done_cv: Condvar::new(),
                }),
                handles: Mutex::new(Vec::new()),
                dispatch: Mutex::new(()),
            }),
        }
    }

    /// Pool sized from the `BALSA_PLAN_THREADS` environment variable
    /// (see [`env_threads`]), falling back to the machine's available
    /// parallelism.
    pub fn from_env() -> Self {
        Self::new(env_threads())
    }

    /// Worker count (participants per job, including the caller).
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// How many participants a [`WorkerPool::steal_map_spans`] call
    /// over `len` items with the given `max_span` would fan out to
    /// (1 means the call runs serially on the caller). Exposed so
    /// callers can tell whether a span map *actually* parallelized —
    /// e.g. to count fanned-out items for honest speedup reporting.
    pub fn span_workers(&self, len: usize, max_span: usize) -> usize {
        self.threads().min(len.div_ceil(max_span.max(1))).max(1)
    }

    /// Lazily spawns the pool's `threads - 1` parked workers. Called
    /// only under the dispatch lock, so growth is race-free.
    fn ensure_spawned(&self) {
        let want = self.shared.threads - 1;
        let mut handles = lock_clean(&self.shared.handles);
        while handles.len() < want {
            let core = Arc::clone(&self.shared.core);
            let p = handles.len() + 1; // participant index
            let h = std::thread::Builder::new()
                .name(format!("balsa-pool-{p}"))
                .spawn(move || worker_loop(core, p))
                .expect("spawn pool worker");
            handles.push(h);
        }
    }

    /// Spawned (parked) worker threads right now — 0 until the first
    /// parallel dispatch, then `threads - 1`.
    #[cfg(test)]
    fn spawned_workers(&self) -> usize {
        lock_clean(&self.shared.handles).len()
    }

    /// Runs `task(p)` for participants `0..workers`: participant 0 on
    /// the calling thread, the rest on the parked workers. Blocks until
    /// every participant finishes. If the pool is busy (a concurrent
    /// dispatch, or a nested call from inside a running task) the whole
    /// job runs inline as `task(0)` — bit-identical by the
    /// publish-at-input-index contract. Rethrows the first captured
    /// participant panic exactly once, after all participants finish.
    fn run_job(&self, workers: usize, task: &(dyn Fn(usize) + Sync)) {
        debug_assert!(workers >= 2, "serial jobs never reach run_job");
        let _guard = match self.shared.dispatch.try_lock() {
            Ok(g) => g,
            // A rethrown panic may have poisoned the lock; the pool
            // stays usable.
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                task(0);
                return;
            }
        };
        self.ensure_spawned();
        let core = &self.shared.core;
        // SAFETY (lifetime erasure): the raw pointer's implicit bound
        // is `'static`, but `task` only lives for this call — sound
        // because we block below until every participant has checked
        // in, and workers touch the pointer only while participating.
        let job = Job {
            task: unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(task)
            },
            workers: workers.min(self.shared.threads),
        };
        {
            let mut st = lock_clean(&core.state);
            st.job = Some(job);
            st.epoch = st.epoch.wrapping_add(1);
            st.active = job.workers - 1;
            st.panic = None;
            core.work_cv.notify_all();
        }
        let mine = catch_unwind(AssertUnwindSafe(|| task(0)));
        let captured = {
            let mut st = lock_clean(&core.state);
            while st.active > 0 {
                st = core
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            st.job = None;
            st.panic.take()
        };
        drop(_guard);
        match (captured, mine) {
            (Some(payload), _) => resume_unwind(payload),
            (None, Err(payload)) => resume_unwind(payload),
            (None, Ok(())) => {}
        }
    }

    /// Maps `f` over `items`, returning results in input order. `f`
    /// receives `(index, &item)`. Runs on the calling thread when the
    /// pool is serial or the input is trivial.
    ///
    /// # Panics
    /// Rethrows the first participant panic (once, on this thread).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_init(items, || (), |(), i, t| f(i, t))
    }

    /// Splits `len` items into at most [`WorkerPool::threads`]
    /// contiguous, balanced, non-empty `(start, end)` ranges (empty for
    /// `len == 0`). This is the deterministic partition for intra-query
    /// work — concatenating per-range results in range order reproduces
    /// the serial order for **any** thread count, which is what lets
    /// the beam's parallel expansion stay bit-identical to serial.
    pub fn chunk_ranges(&self, len: usize) -> Vec<(usize, usize)> {
        balanced_ranges(self.threads(), len)
    }

    /// Deterministic work-stealing map over index spans.
    ///
    /// `f(lo, hi, out)` must append **exactly `hi - lo`** results for
    /// items `lo..hi`, and must be *span-invariant*: running it over
    /// any partition of `0..len` into ordered spans and concatenating
    /// must equal one `f(0, len, out)` call (true whenever the per-item
    /// result does not depend on which span the item landed in — e.g.
    /// batched scoring whose batch layout never changes the math).
    /// Under that contract the returned vector is bit-identical to the
    /// serial run for every thread count.
    ///
    /// Scheduling: each participant is seeded with one of the
    /// [`WorkerPool::chunk_ranges`] and claims up to `max_span` items
    /// at a time from its range's front; a participant whose range is
    /// exhausted probes the others in a fixed order (`w + 1`, `w + 2`,
    /// … modulo the participant count) and steals the back half of the
    /// first non-empty range it finds. Results are published at their
    /// input index, so the steal schedule never shows in the output.
    ///
    /// # Panics
    /// Panics if `max_span == 0` or `f` appends a wrong count for some
    /// span; rethrows the first participant panic.
    pub fn steal_map_spans<R, F>(&self, len: usize, max_span: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, usize, &mut Vec<R>) + Sync,
    {
        assert!(max_span >= 1, "max_span must be at least 1");
        let workers = self.span_workers(len, max_span);
        if workers <= 1 {
            let mut out = Vec::with_capacity(len);
            if len > 0 {
                f(0, len, &mut out);
                assert_eq!(out.len(), len, "span fn must produce one result per item");
            }
            return out;
        }
        // One remaining-range deque per participant, seeded contiguously
        // — exactly `workers` ranges (not `self.threads`: every queue
        // must have an owner, and thieves only probe owned queues).
        let queues: Vec<Mutex<(usize, usize)>> = balanced_ranges(workers, len)
            .into_iter()
            .map(Mutex::new)
            .collect();
        debug_assert_eq!(queues.len(), workers);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(len);
        slots.resize_with(len, || None);
        let results = Mutex::new(&mut slots);
        self.run_job(workers, &|w| {
            let mut produced: Vec<(usize, usize, Vec<R>)> = Vec::new();
            'work: loop {
                // Claim up to `max_span` items from the front of our
                // own range.
                let claimed = {
                    let mut own = lock_clean(&queues[w]);
                    if own.0 < own.1 {
                        let hi = (own.0 + max_span).min(own.1);
                        let span = (own.0, hi);
                        own.0 = hi;
                        Some(span)
                    } else {
                        None
                    }
                };
                if let Some((lo, hi)) = claimed {
                    let mut out = Vec::with_capacity(hi - lo);
                    f(lo, hi, &mut out);
                    assert_eq!(
                        out.len(),
                        hi - lo,
                        "span fn must produce one result per item"
                    );
                    produced.push((lo, hi, out));
                    continue;
                }
                // Own range exhausted: steal the back half of the
                // first non-empty victim, probing in the fixed order
                // w+1, w+2, … (deterministic per thief; the output
                // cannot depend on it regardless).
                for k in 1..workers {
                    let v = (w + k) % workers;
                    let stolen = {
                        let mut victim = lock_clean(&queues[v]);
                        if victim.0 < victim.1 {
                            let mid = victim.0 + (victim.1 - victim.0) / 2;
                            let back = (mid, victim.1);
                            victim.1 = mid;
                            Some(back)
                        } else {
                            None
                        }
                    };
                    if let Some(range) = stolen {
                        if range.0 < range.1 {
                            *lock_clean(&queues[w]) = range;
                            continue 'work;
                        }
                    }
                }
                break; // every queue drained
            }
            let mut out = lock_clean(&results);
            for (lo, _hi, vec) in produced {
                for (k, r) in vec.into_iter().enumerate() {
                    out[lo + k] = Some(r);
                }
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every index produced exactly once"))
            .collect()
    }

    /// Per-item convenience over [`WorkerPool::steal_map_spans`]:
    /// work-stealing map of `f` over `items`, results in input order.
    /// `max_span` bounds how many consecutive items one claim covers
    /// (1 = finest-grained balancing; larger spans amortize claim
    /// locking for cheap items).
    pub fn steal_map<T, R, F>(&self, items: &[T], max_span: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.steal_map_spans(items.len(), max_span, |lo, hi, out| {
            out.extend(items[lo..hi].iter().enumerate().map(|(k, t)| f(lo + k, t)));
        })
    }

    /// Like [`WorkerPool::map`], but every participant first builds a
    /// private state with `init` (once per participant, not per item)
    /// and `f` receives `(&mut state, index, &item)` — the hook for
    /// per-worker planners whose scratch memo amortizes across the
    /// items a participant processes.
    ///
    /// # Panics
    /// Rethrows the first participant panic (once, on this thread).
    pub fn map_init<S, T, R, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let workers = self.threads().min(items.len());
        if workers <= 1 {
            let mut state = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| f(&mut state, i, t))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        let results = Mutex::new(&mut slots);
        self.run_job(workers, &|_w| {
            // Compute a local batch, then publish by index so output
            // order never depends on scheduling.
            let mut state = init();
            let mut produced: Vec<(usize, R)> = Vec::new();
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                produced.push((i, f(&mut state, i, &items[i])));
            }
            let mut out = lock_clean(&results);
            for (i, r) in produced {
                out[i] = Some(r);
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every index produced exactly once"))
            .collect()
    }
}

/// Splits `len` items into at most `chunks` contiguous, balanced,
/// non-empty ranges (see [`WorkerPool::chunk_ranges`]).
fn balanced_ranges(chunks: usize, len: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, len);
    let (base, rem) = (len / chunks, len % chunks);
    let mut out = Vec::with_capacity(chunks);
    let mut lo = 0;
    for c in 0..chunks {
        let hi = lo + base + usize::from(c < rem);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

/// Realized speedup of a parallel phase — the summed per-item walls
/// over the phase's wall-clock — or `None` when it would be
/// meaningless: a serial pool (`threads <= 1`), or a parallel pool
/// where nothing actually fanned out (`parallel_items == 0`, e.g.
/// every DP level stayed under the fan-out cutoff), in which case the
/// "speedup" would only measure measurement overhead and benchmarks
/// suppress the field. Shared by the planner and learning benchmarks
/// so the suppression rule cannot drift between them.
pub fn parallel_speedup(
    total_secs: f64,
    wall_secs: f64,
    threads: usize,
    parallel_items: usize,
) -> Option<f64> {
    (threads > 1 && parallel_items > 0).then(|| total_secs / wall_secs.max(1e-12))
}

/// Thread count from `BALSA_PLAN_THREADS` (≥ 1; `0` means serial),
/// else the machine's available parallelism, else 1. A set-but-garbled
/// value (`"four"`, `"2x"`, …) complains on stderr and runs **serial**
/// — never silently multi-threaded on a machine-sized pool, so a
/// typo'd CI leg cannot claim serial numbers it didn't measure.
pub fn env_threads() -> usize {
    match std::env::var("BALSA_PLAN_THREADS") {
        Ok(raw) => parse_env_threads(&raw).unwrap_or_else(|()| {
            eprintln!(
                "warning: BALSA_PLAN_THREADS={raw:?} is not a thread count; \
                 running serial (1 thread)"
            );
            1
        }),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// The parse behind [`env_threads`]: surrounding whitespace is
/// tolerated, `0` clamps to 1 (pool off = serial, matching
/// [`WorkerPool::new`]'s clamp), anything else non-numeric is an error.
fn parse_env_threads(raw: &str) -> Result<usize, ()> {
    raw.trim()
        .parse::<usize>()
        .map(|t| t.max(1))
        .map_err(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 3, 8, 64] {
            let pool = WorkerPool::new(threads);
            let out = pool.map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..100).collect();
        WorkerPool::new(7).map(&items, |_, &x| {
            counters[x].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn env_zero_threads_means_serial() {
        // Not a full env-var test (process-global state); just the
        // clamp contract both entry points share.
        assert_eq!(WorkerPool::new(0).threads(), 1);
        assert_eq!(WorkerPool::new(1).threads(), 1);
    }

    #[test]
    fn env_threads_parse_table() {
        // Parsable values, whitespace tolerated, 0 clamps to serial.
        assert_eq!(parse_env_threads("4"), Ok(4));
        assert_eq!(parse_env_threads("1"), Ok(1));
        assert_eq!(parse_env_threads(" 2 "), Ok(2));
        assert_eq!(parse_env_threads("2\n"), Ok(2));
        assert_eq!(parse_env_threads("0"), Ok(1));
        // Garbled values are loud errors (env_threads maps them to a
        // serial pool, never to available_parallelism).
        assert_eq!(parse_env_threads("four"), Err(()));
        assert_eq!(parse_env_threads(""), Err(()));
        assert_eq!(parse_env_threads("2x"), Err(()));
        assert_eq!(parse_env_threads("-1"), Err(()));
        assert_eq!(parse_env_threads("3.5"), Err(()));
    }

    #[test]
    fn parallel_speedup_suppression_rules() {
        // Serial pool: suppressed regardless of fan-out.
        assert_eq!(parallel_speedup(2.0, 1.0, 1, 100), None);
        // Parallel pool but nothing fanned out: suppressed.
        assert_eq!(parallel_speedup(2.0, 1.0, 4, 0), None);
        // Parallel pool with real fan-out: reported.
        let s = parallel_speedup(2.0, 1.0, 4, 17).unwrap();
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = WorkerPool::new(4);
        let empty: Vec<u8> = Vec::new();
        assert!(pool.map(&empty, |_, &x| x).is_empty());
        assert_eq!(pool.map(&[9u8], |_, &x| x + 1), vec![10]);
        assert_eq!(WorkerPool::new(0).threads(), 1, "clamped to serial");
    }

    #[test]
    fn parallel_map_matches_serial_map() {
        let items: Vec<u64> = (0..512).collect();
        let f = |i: usize, x: &u64| (i as u64).wrapping_mul(0x9E3779B9) ^ x;
        let serial = WorkerPool::new(1).map(&items, f);
        let parallel = WorkerPool::new(5).map(&items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        for threads in [1usize, 2, 3, 7, 16] {
            let pool = WorkerPool::new(threads);
            assert!(pool.chunk_ranges(0).is_empty());
            for len in [1usize, 2, 5, 16, 257] {
                let ranges = pool.chunk_ranges(len);
                assert!(ranges.len() <= threads && !ranges.is_empty());
                // Contiguous, ordered, non-empty, covering [0, len).
                let mut at = 0;
                for &(lo, hi) in &ranges {
                    assert_eq!(lo, at);
                    assert!(hi > lo);
                    at = hi;
                }
                assert_eq!(at, len);
                // Balanced: sizes differ by at most one.
                let sizes: Vec<usize> = ranges.iter().map(|&(l, h)| h - l).collect();
                let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(mx - mn <= 1, "{threads} threads, {len} items: {sizes:?}");
            }
        }
    }

    /// Property test: the work-stealing map is bit-identical to the
    /// contiguous `chunk_ranges` partition (and therefore to the serial
    /// map) under **adversarially skewed** per-item costs — all the
    /// weight piled onto one chunk, alternating heavy/light items, and
    /// front-loaded ramps — for a grid of thread counts and span sizes.
    #[test]
    fn steal_map_matches_chunked_map_under_skew() {
        // Per-item "cost" profiles; the work function burns cycles
        // proportional to the weight so heavy items really do pin
        // their worker while the others drain and steal.
        let n = 193usize;
        let profiles: Vec<Vec<u64>> = vec![
            // All the work in the last chunk's tail.
            (0..n).map(|i| if i > n - 8 { 4000 } else { 1 }).collect(),
            // All the work in the first items.
            (0..n).map(|i| if i < 8 { 4000 } else { 1 }).collect(),
            // Alternating heavy/light.
            (0..n).map(|i| if i % 7 == 0 { 1500 } else { 2 }).collect(),
            // Monotone ramp.
            (0..n).map(|i| (i as u64) * 13).collect(),
        ];
        let work = |i: usize, &wt: &u64| {
            // Deterministic spin: output depends only on the item.
            let mut acc = wt ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
            for _ in 0..wt {
                acc = acc.rotate_left(7) ^ 0xD1B54A32D192ED03;
            }
            acc
        };
        for weights in &profiles {
            let serial: Vec<u64> = weights
                .iter()
                .enumerate()
                .map(|(i, w)| work(i, w))
                .collect();
            for threads in [1usize, 2, 4, 8] {
                let pool = WorkerPool::new(threads);
                // Reference: the fixed contiguous partition.
                let ranges = pool.chunk_ranges(n);
                let chunked: Vec<u64> = pool
                    .map(&ranges, |_, &(lo, hi)| {
                        weights[lo..hi]
                            .iter()
                            .enumerate()
                            .map(|(k, w)| work(lo + k, w))
                            .collect::<Vec<u64>>()
                    })
                    .into_iter()
                    .flatten()
                    .collect();
                assert_eq!(chunked, serial, "{threads} threads (chunked)");
                for span in [1usize, 3, 16, 64] {
                    let stolen = pool.steal_map(weights, span, work);
                    assert_eq!(stolen, serial, "{threads} threads, span {span}");
                }
            }
        }
    }

    #[test]
    fn steal_map_spans_runs_every_index_exactly_once() {
        let n = 211usize;
        for threads in [2usize, 5, 8] {
            for span in [1usize, 4, 32] {
                let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                let out = WorkerPool::new(threads).steal_map_spans(n, span, |lo, hi, out| {
                    assert!(lo < hi && hi <= n && hi - lo <= span);
                    for (i, c) in counters.iter().enumerate().take(hi).skip(lo) {
                        c.fetch_add(1, Ordering::SeqCst);
                        out.push(i * 2);
                    }
                });
                assert_eq!(out, (0..n).map(|i| i * 2).collect::<Vec<_>>());
                assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
            }
        }
    }

    #[test]
    fn steal_map_spans_edge_cases() {
        let pool = WorkerPool::new(4);
        let empty: Vec<usize> = pool.steal_map_spans(0, 8, |_, _, _| unreachable!());
        assert!(empty.is_empty());
        let one = pool.steal_map_spans(1, 8, |lo, hi, out| {
            assert_eq!((lo, hi), (0, 1));
            out.push(42);
        });
        assert_eq!(one, vec![42]);
        // Serial pool takes the single-call fast path.
        let serial = WorkerPool::new(1).steal_map(&[1, 2, 3], 2, |_, &x| x * 10);
        assert_eq!(serial, vec![10, 20, 30]);
    }

    #[test]
    fn span_workers_matches_fanout_rule() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.span_workers(0, 8), 1);
        assert_eq!(pool.span_workers(1, 8), 1);
        assert_eq!(pool.span_workers(8, 8), 1);
        assert_eq!(pool.span_workers(9, 8), 2);
        assert_eq!(pool.span_workers(1000, 8), 4);
        assert_eq!(pool.span_workers(10, 0), 4, "0 span clamps to 1");
        assert_eq!(WorkerPool::new(1).span_workers(1000, 1), 1);
    }

    #[test]
    fn map_init_builds_one_state_per_worker() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 3, 8] {
            let inits = AtomicUsize::new(0);
            let out = WorkerPool::new(threads).map_init(
                &items,
                || {
                    inits.fetch_add(1, Ordering::SeqCst);
                    0usize
                },
                |state, _, &x| {
                    *state += 1; // worker-local: never racy
                    x * 3
                },
            );
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
            let n = inits.load(Ordering::SeqCst);
            assert!(
                (1..=threads.max(1)).contains(&n),
                "{threads} threads built {n} states"
            );
        }
    }

    /// The pool is persistent: the first parallel call spawns
    /// `threads - 1` workers, later calls reuse them, and repeated
    /// mixed calls on one pool are bit-identical to fresh-pool runs.
    #[test]
    fn workers_spawn_once_and_are_reused() {
        let items: Vec<u64> = (0..300).collect();
        let pool = WorkerPool::new(4);
        assert_eq!(pool.spawned_workers(), 0, "spawn is lazy");
        let f = |i: usize, x: &u64| (i as u64).rotate_left(11) ^ (x * 7);
        let first = pool.map(&items, f);
        assert_eq!(pool.spawned_workers(), 3);
        for round in 0..10 {
            let by_map = pool.map(&items, f);
            let by_steal = pool.steal_map(&items, 1 + round % 5, f);
            let fresh = WorkerPool::new(4).map(&items, f);
            assert_eq!(by_map, first, "round {round} map");
            assert_eq!(by_steal, first, "round {round} steal");
            assert_eq!(fresh, first, "round {round} fresh");
        }
        assert_eq!(pool.spawned_workers(), 3, "no respawn across calls");
    }

    /// Clones share one set of workers, and a nested dispatch on the
    /// same (busy) pool falls back to inline execution with identical
    /// results.
    #[test]
    fn nested_dispatch_on_a_shared_pool_runs_inline_and_matches() {
        let outer: Vec<u64> = (0..8).collect();
        let inner: Vec<u64> = (0..64).collect();
        let pool = WorkerPool::new(4);
        let child = pool.clone();
        let expect: Vec<Vec<u64>> = outer
            .iter()
            .map(|&o| inner.iter().map(|&i| o * 1000 + i * 3).collect())
            .collect();
        let got = pool.map(&outer, |_, &o| {
            // The outer job holds the dispatch lock, so this nested
            // call must take the inline path — same bytes either way.
            child.steal_map(&inner, 4, |_, &i| o * 1000 + i * 3)
        });
        assert_eq!(got, expect);
        assert_eq!(pool.spawned_workers(), 3, "nesting never over-spawns");
    }

    /// Satellite regression: a panicking closure must not poison the
    /// shared queues into cascading aborts — siblings drain, the first
    /// payload is rethrown exactly once, and the pool stays usable.
    #[test]
    fn worker_panic_is_rethrown_once_and_pool_survives() {
        let items: Vec<usize> = (0..97).collect();
        for threads in [2usize, 4] {
            let pool = WorkerPool::new(threads);
            let drained = AtomicUsize::new(0);
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.map(&items, |_, &x| {
                    if x == 13 {
                        panic!("boom at 13");
                    }
                    drained.fetch_add(1, Ordering::SeqCst);
                    x
                })
            }));
            let payload = caught.expect_err("panic must propagate to the caller");
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .unwrap_or("non-str payload");
            assert!(msg.contains("boom"), "got {msg:?}");
            assert!(
                drained.load(Ordering::SeqCst) >= items.len() - 1,
                "{threads} threads: siblings must drain past the panic"
            );
            // Same for the work-stealing path.
            let stolen = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.steal_map(&items, 3, |_, &x| {
                    if x == 77 {
                        panic!("steal boom");
                    }
                    x
                })
            }));
            assert!(stolen.is_err(), "{threads} threads: steal panic lost");
            // The pool is still fully functional afterwards.
            let ok = pool.map(&items, |_, &x| x * 2);
            assert_eq!(ok, items.iter().map(|x| x * 2).collect::<Vec<_>>());
            let ok2 = pool.steal_map(&items, 5, |_, &x| x + 1);
            assert_eq!(ok2, items.iter().map(|x| x + 1).collect::<Vec<_>>());
        }
    }

    /// Satellite drop test: dropping the last clone joins every worker
    /// — observable as the workers' `Arc<PoolCore>` clones all being
    /// released by the time `drop` returns (a leaked or still-running
    /// worker would keep the core alive).
    #[test]
    fn dropping_the_pool_joins_its_workers() {
        let items: Vec<u64> = (0..128).collect();
        let pool = WorkerPool::new(4);
        let _ = pool.map(&items, |i, &x| x + i as u64); // force spawn
        assert_eq!(pool.spawned_workers(), 3);
        let core = Arc::downgrade(&pool.shared.core);
        let clone = pool.clone();
        drop(pool);
        assert!(
            core.upgrade().is_some(),
            "a live clone must keep the workers"
        );
        drop(clone);
        assert!(
            core.upgrade().is_none(),
            "last drop must join workers and release the core"
        );
    }
}
