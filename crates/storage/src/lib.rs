//! # balsa-storage
//!
//! Columnar in-memory storage for the balsa-rs reproduction of
//! *Balsa: Learning a Query Optimizer Without Expert Demonstrations*
//! (SIGMOD 2022).
//!
//! This crate provides the data substrate the rest of the system runs on:
//!
//! * [`Column`] / [`Table`] — simple dictionary-encoded columnar tables.
//! * [`Catalog`] / [`Database`] — schema metadata (primary keys, foreign
//!   keys, indexes) plus the table data and per-column [`stats`].
//! * [`datagen`] — deterministic synthetic generators for a **mini-IMDb**
//!   database (the 21-table snowflake schema used by the Join Order
//!   Benchmark) and a **mini-TPC-H** database. The paper evaluates on the
//!   real IMDb dataset; we reproduce its statistical character (zipfian
//!   skew, correlated columns, skewed foreign-key fan-out) at ~1000x
//!   smaller scale so the whole learning loop runs on one CPU core.
//!
//! Everything is deterministic given a seed.

pub mod catalog;
pub mod column;
pub mod datagen;
pub mod stats;
pub mod table;

pub use catalog::{Catalog, ColumnId, ColumnMeta, Database, FkEdge, TableId, TableMeta};
pub use column::{Column, Value, NULL_SENTINEL};
pub use datagen::{mini_imdb, mini_tpch, DataGenConfig};
pub use stats::{ColumnStats, Histogram, TableStats};
pub use table::Table;
