//! Per-column statistics: equi-depth histograms, most-common values,
//! distinct counts. These are exactly the statistics a PostgreSQL-style
//! optimizer keeps (`pg_stats`), and they back the histogram cardinality
//! estimator in `balsa-card`.

use crate::column::{Column, NULL_SENTINEL};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Number of equi-depth buckets kept per histogram.
pub const HISTOGRAM_BUCKETS: usize = 32;
/// Number of most-common values tracked per column.
pub const NUM_MCVS: usize = 10;

/// An equi-depth histogram over the non-null values of a column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    /// Bucket boundaries: `bounds[i]..=bounds[i+1]` is bucket `i`.
    /// Length is `num_buckets + 1`; empty when the column has no values.
    pub bounds: Vec<i64>,
    /// Rows per bucket (equi-depth, so these are near-equal).
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Builds an equi-depth histogram from (a copy of) the values.
    pub fn build(mut values: Vec<i64>, buckets: usize) -> Self {
        if values.is_empty() {
            return Self {
                bounds: vec![],
                counts: vec![],
            };
        }
        values.sort_unstable();
        let n = values.len();
        let b = buckets.min(n).max(1);
        let mut bounds = Vec::with_capacity(b + 1);
        let mut counts = Vec::with_capacity(b);
        bounds.push(values[0]);
        let mut prev_end = 0usize;
        for i in 1..=b {
            let end = (i * n) / b;
            bounds.push(values[end - 1]);
            counts.push((end - prev_end) as u64);
            prev_end = end;
        }
        Self { bounds, counts }
    }

    /// Estimated fraction of values `<= v` (continuous interpolation
    /// within buckets, the textbook assumption).
    pub fn fraction_le(&self, v: i64) -> f64 {
        if self.bounds.is_empty() {
            return 0.0;
        }
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        if v < self.bounds[0] {
            return 0.0;
        }
        if v >= *self.bounds.last().unwrap() {
            return 1.0;
        }
        let mut acc = 0u64;
        for (i, &cnt) in self.counts.iter().enumerate() {
            let lo = self.bounds[i];
            let hi = self.bounds[i + 1];
            if v >= hi {
                acc += cnt;
                continue;
            }
            // v falls inside bucket i: interpolate.
            let width = (hi - lo).max(1) as f64;
            let frac = (v - lo).max(0) as f64 / width;
            return (acc as f64 + cnt as f64 * frac) / total as f64;
        }
        1.0
    }

    /// Estimated selectivity of `lo <= x <= hi`.
    pub fn fraction_between(&self, lo: i64, hi: i64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        (self.fraction_le(hi)
            - if lo == i64::MIN {
                0.0
            } else {
                self.fraction_le(lo - 1)
            })
        .max(0.0)
    }

    /// Minimum observed value (None when empty).
    pub fn min(&self) -> Option<i64> {
        self.bounds.first().copied()
    }

    /// Maximum observed value (None when empty).
    pub fn max(&self) -> Option<i64> {
        self.bounds.last().copied()
    }
}

/// Statistics for one column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Number of rows (including NULLs).
    pub num_rows: u64,
    /// Fraction of NULL values.
    pub null_frac: f64,
    /// Number of distinct non-null values.
    pub ndv: u64,
    /// Most common values with their frequencies (fraction of all rows),
    /// sorted by descending frequency.
    pub mcvs: Vec<(i64, f64)>,
    /// Equi-depth histogram over non-null values.
    pub histogram: Histogram,
}

impl ColumnStats {
    /// Computes statistics for a column.
    pub fn build(col: &Column) -> Self {
        let num_rows = col.len() as u64;
        let mut freq: HashMap<i64, u64> = HashMap::new();
        let mut nulls = 0u64;
        for &v in col.values() {
            if v == NULL_SENTINEL {
                nulls += 1;
            } else {
                *freq.entry(v).or_insert(0) += 1;
            }
        }
        let ndv = freq.len() as u64;
        let mut pairs: Vec<(i64, u64)> = freq.iter().map(|(&v, &c)| (v, c)).collect();
        pairs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mcvs = pairs
            .iter()
            .take(NUM_MCVS)
            .map(|&(v, c)| (v, c as f64 / num_rows.max(1) as f64))
            .collect();
        let values: Vec<i64> = col.non_null().collect();
        Self {
            num_rows,
            null_frac: if num_rows == 0 {
                0.0
            } else {
                nulls as f64 / num_rows as f64
            },
            ndv,
            mcvs,
            histogram: Histogram::build(values, HISTOGRAM_BUCKETS),
        }
    }

    /// Frequency of `v` if it is a tracked MCV.
    pub fn mcv_freq(&self, v: i64) -> Option<f64> {
        self.mcvs.iter().find(|(mv, _)| *mv == v).map(|(_, f)| *f)
    }
}

/// Statistics for all columns of a table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableStats {
    /// Row count.
    pub num_rows: u64,
    /// Per-column statistics, aligned with catalog column ids.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Computes statistics for every column of `table`.
    pub fn build(table: &crate::table::Table) -> Self {
        let columns = (0..table.num_columns())
            .map(|i| ColumnStats::build(table.column(i)))
            .collect();
        Self {
            num_rows: table.num_rows() as u64,
            columns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_uniform() {
        let vals: Vec<i64> = (0..1000).collect();
        let h = Histogram::build(vals, 32);
        assert_eq!(h.counts.len(), 32);
        assert!((h.fraction_le(499) - 0.5).abs() < 0.05);
        assert_eq!(h.fraction_le(-1), 0.0);
        assert_eq!(h.fraction_le(999), 1.0);
        let sel = h.fraction_between(100, 199);
        assert!((sel - 0.1).abs() < 0.05, "sel={sel}");
    }

    #[test]
    fn histogram_empty_and_singleton() {
        let h = Histogram::build(vec![], 32);
        assert_eq!(h.fraction_le(0), 0.0);
        let h = Histogram::build(vec![7], 32);
        assert_eq!(h.fraction_le(7), 1.0);
        assert_eq!(h.fraction_le(6), 0.0);
        assert_eq!(h.min(), Some(7));
        assert_eq!(h.max(), Some(7));
    }

    #[test]
    fn column_stats_skewed() {
        // 90 copies of 1, ten distinct tail values.
        let mut v = vec![1i64; 90];
        v.extend(2..12);
        let c = Column::new(v);
        let s = ColumnStats::build(&c);
        assert_eq!(s.num_rows, 100);
        assert_eq!(s.ndv, 11);
        assert!((s.mcv_freq(1).unwrap() - 0.9).abs() < 1e-9);
        assert!(s.mcv_freq(999).is_none());
    }

    #[test]
    fn null_fraction() {
        let c = Column::new(vec![NULL_SENTINEL, 1, 2, NULL_SENTINEL]);
        let s = ColumnStats::build(&c);
        assert!((s.null_frac - 0.5).abs() < 1e-9);
        assert_eq!(s.ndv, 2);
    }
}
