//! Column storage.
//!
//! Every column is a vector of `i64` values. String columns are
//! dictionary-encoded at generation time (the dictionary itself is not
//! needed by the optimizer — only value identity and ordering matter for
//! predicates and joins), so a single physical representation suffices.
//! NULL is represented by [`NULL_SENTINEL`].

use serde::{Deserialize, Serialize};

/// Sentinel value representing SQL NULL inside a column.
pub const NULL_SENTINEL: i64 = i64::MIN;

/// A single column value.
pub type Value = i64;

/// A dictionary-encoded, in-memory column of `i64` values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    values: Vec<Value>,
}

impl Column {
    /// Creates a column from raw values.
    pub fn new(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at `row` (which must be in bounds).
    #[inline]
    pub fn get(&self, row: usize) -> Value {
        self.values[row]
    }

    /// Returns `true` if the value at `row` is NULL.
    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        self.values[row] == NULL_SENTINEL
    }

    /// Raw value slice.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Iterator over non-null values.
    pub fn non_null(&self) -> impl Iterator<Item = Value> + '_ {
        self.values.iter().copied().filter(|&v| v != NULL_SENTINEL)
    }

    /// Count of NULL entries.
    pub fn null_count(&self) -> usize {
        self.values.iter().filter(|&&v| v == NULL_SENTINEL).count()
    }
}

impl From<Vec<Value>> for Column {
    fn from(values: Vec<Value>) -> Self {
        Self::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_access() {
        let c = Column::new(vec![1, 2, NULL_SENTINEL, 4]);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert_eq!(c.get(1), 2);
        assert!(c.is_null(2));
        assert!(!c.is_null(3));
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.non_null().collect::<Vec<_>>(), vec![1, 2, 4]);
    }

    #[test]
    fn empty_column() {
        let c = Column::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.null_count(), 0);
    }
}
