//! Tables: named collections of equal-length columns.

use crate::column::{Column, Value};

/// An in-memory columnar table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    column_names: Vec<String>,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Creates a table from `(name, column)` pairs. All columns must have
    /// the same length.
    ///
    /// # Panics
    /// Panics if column lengths disagree.
    pub fn new(name: impl Into<String>, cols: Vec<(String, Column)>) -> Self {
        let rows = cols.first().map(|(_, c)| c.len()).unwrap_or(0);
        for (cname, c) in &cols {
            assert_eq!(
                c.len(),
                rows,
                "column {cname} has {} rows, expected {rows}",
                c.len()
            );
        }
        let (column_names, columns) = cols.into_iter().unzip();
        Self {
            name: name.into(),
            column_names,
            columns,
            rows,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column index by name, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.column_names.iter().position(|n| n == name)
    }

    /// Column by positional index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by name.
    ///
    /// # Panics
    /// Panics if the column does not exist (schema errors are programmer
    /// errors in this system; queries are constructed against the catalog).
    pub fn column_by_name(&self, name: &str) -> &Column {
        let idx = self
            .column_index(name)
            .unwrap_or_else(|| panic!("table {} has no column {name}", self.name));
        &self.columns[idx]
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> &[String] {
        &self.column_names
    }

    /// Value at `(row, col)`.
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].get(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::new(
            "t",
            vec![
                ("id".to_string(), Column::new(vec![1, 2, 3])),
                ("x".to_string(), Column::new(vec![10, 20, 30])),
            ],
        )
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.name(), "t");
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.column_index("x"), Some(1));
        assert_eq!(t.column_index("nope"), None);
        assert_eq!(t.column_by_name("x").get(2), 30);
        assert_eq!(t.value(0, 0), 1);
    }

    #[test]
    #[should_panic(expected = "has no column")]
    fn missing_column_panics() {
        sample().column_by_name("nope");
    }

    #[test]
    #[should_panic(expected = "rows, expected")]
    fn mismatched_lengths_panic() {
        Table::new(
            "bad",
            vec![
                ("a".to_string(), Column::new(vec![1])),
                ("b".to_string(), Column::new(vec![1, 2])),
            ],
        );
    }
}
