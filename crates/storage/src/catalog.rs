//! Schema metadata: tables, columns, keys, foreign keys, and indexes.

use crate::stats::TableStats;
use crate::table::Table;
use serde::{Deserialize, Serialize};

/// Identifier of a table within a [`Catalog`].
pub type TableId = usize;
/// Identifier of a column within its table.
pub type ColumnId = usize;

/// Metadata for one column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnMeta {
    /// Column name.
    pub name: String,
    /// Whether an index exists on this column (primary keys and foreign
    /// keys are indexed by the generators, mirroring the paper's setup of
    /// "all primary and foreign key indexes created").
    pub indexed: bool,
}

/// Metadata for one table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableMeta {
    /// Table name.
    pub name: String,
    /// Column metadata in declaration order.
    pub columns: Vec<ColumnMeta>,
    /// Index of the primary-key column, if any.
    pub primary_key: Option<ColumnId>,
}

impl TableMeta {
    /// Column id by name.
    pub fn column_id(&self, name: &str) -> Option<ColumnId> {
        self.columns.iter().position(|c| c.name == name)
    }
}

/// A foreign-key edge `child.child_col -> parent.parent_col`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FkEdge {
    /// Referencing (fact) table.
    pub child: TableId,
    /// Referencing column in `child`.
    pub child_col: ColumnId,
    /// Referenced (dimension) table.
    pub parent: TableId,
    /// Referenced column in `parent` (its primary key).
    pub parent_col: ColumnId,
}

/// The schema: table metadata plus the foreign-key join graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    tables: Vec<TableMeta>,
    fk_edges: Vec<FkEdge>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table, returning its id.
    pub fn add_table(&mut self, meta: TableMeta) -> TableId {
        self.tables.push(meta);
        self.tables.len() - 1
    }

    /// Registers a foreign-key edge.
    pub fn add_fk(&mut self, edge: FkEdge) {
        self.fk_edges.push(edge);
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Table metadata by id.
    pub fn table(&self, id: TableId) -> &TableMeta {
        &self.tables[id]
    }

    /// Table id by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.tables.iter().position(|t| t.name == name)
    }

    /// All tables.
    pub fn tables(&self) -> &[TableMeta] {
        &self.tables
    }

    /// All foreign-key edges.
    pub fn fk_edges(&self) -> &[FkEdge] {
        &self.fk_edges
    }

    /// Foreign-key edges incident to `table` (as child or parent).
    pub fn fks_of(&self, table: TableId) -> impl Iterator<Item = &FkEdge> {
        self.fk_edges
            .iter()
            .filter(move |e| e.child == table || e.parent == table)
    }

    /// Whether `table.col` is indexed.
    pub fn is_indexed(&self, table: TableId, col: ColumnId) -> bool {
        self.tables[table].columns[col].indexed
    }
}

/// A full database: catalog, table data, and per-table statistics.
#[derive(Debug, Clone)]
pub struct Database {
    catalog: Catalog,
    tables: Vec<Table>,
    stats: Vec<TableStats>,
}

impl Database {
    /// Assembles a database from its parts. `tables` and `stats` must be
    /// aligned with catalog table ids.
    ///
    /// # Panics
    /// Panics if the component lengths disagree.
    pub fn new(catalog: Catalog, tables: Vec<Table>, stats: Vec<TableStats>) -> Self {
        assert_eq!(catalog.num_tables(), tables.len());
        assert_eq!(catalog.num_tables(), stats.len());
        Self {
            catalog,
            tables,
            stats,
        }
    }

    /// Schema.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Table data by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id]
    }

    /// Table statistics by id.
    pub fn stats(&self, id: TableId) -> &TableStats {
        &self.stats[id]
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::num_rows).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_roundtrip() {
        let mut c = Catalog::new();
        let a = c.add_table(TableMeta {
            name: "a".into(),
            columns: vec![ColumnMeta {
                name: "id".into(),
                indexed: true,
            }],
            primary_key: Some(0),
        });
        let b = c.add_table(TableMeta {
            name: "b".into(),
            columns: vec![
                ColumnMeta {
                    name: "id".into(),
                    indexed: true,
                },
                ColumnMeta {
                    name: "a_id".into(),
                    indexed: true,
                },
            ],
            primary_key: Some(0),
        });
        c.add_fk(FkEdge {
            child: b,
            child_col: 1,
            parent: a,
            parent_col: 0,
        });
        assert_eq!(c.num_tables(), 2);
        assert_eq!(c.table_id("b"), Some(b));
        assert_eq!(c.table(a).name, "a");
        assert_eq!(c.fks_of(a).count(), 1);
        assert_eq!(c.fks_of(b).count(), 1);
        assert!(c.is_indexed(b, 1));
        assert_eq!(c.table(b).column_id("a_id"), Some(1));
    }
}
