//! Deterministic synthetic database generators.
//!
//! The paper evaluates on the real IMDb dataset (Join Order Benchmark) and
//! TPC-H at scale factor 10. Neither dataset is available offline, so we
//! generate synthetic equivalents that preserve the properties the learning
//! dynamics depend on:
//!
//! * **mini-IMDb** — the same 21-table snowflake schema as IMDb/JOB, with
//!   zipfian foreign-key fan-out (a few movies have enormous casts),
//!   skewed dimension values, and *cross-column correlations* (e.g.
//!   `movie_info.info` is strongly determined by `info_type_id`,
//!   `title.kind_id` correlates with `production_year`). The correlations
//!   are what make the independence-assuming histogram estimator err by
//!   orders of magnitude — the property §1/§10 of the paper rely on.
//! * **mini-TPC-H** — the 8-table TPC-H schema with uniform distributions,
//!   matching the paper's description of TPC-H as generated "from uniform
//!   distributions".
//!
//! All generation is deterministic given [`DataGenConfig::seed`].

use crate::catalog::{Catalog, ColumnMeta, Database, FkEdge, TableMeta};
use crate::column::{Column, NULL_SENTINEL};
use crate::stats::TableStats;
use crate::table::Table;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Configuration for the synthetic generators.
#[derive(Debug, Clone, Copy)]
pub struct DataGenConfig {
    /// Multiplies every table's base row count. 1.0 is the default
    /// "quick" scale (a few thousand rows in the fact tables).
    pub scale: f64,
    /// Master RNG seed; all randomness derives from it.
    pub seed: u64,
}

impl Default for DataGenConfig {
    fn default() -> Self {
        Self {
            scale: 1.0,
            seed: 0xBA15A,
        }
    }
}

impl DataGenConfig {
    /// Scales a base row count, keeping at least 2 rows.
    fn rows(&self, base: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(2)
    }
}

/// A zipfian sampler over `0..n` with exponent `s`, built on an explicit
/// CDF (deterministic, no rejection sampling).
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler. `n` must be > 0.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Samples a rank in `0..n` (0 is the most frequent).
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.random();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Helper that accumulates columns for one table.
struct TableBuilder {
    name: &'static str,
    cols: Vec<(String, Column, bool)>, // (name, data, indexed)
    primary_key: Option<usize>,
}

impl TableBuilder {
    fn new(name: &'static str) -> Self {
        Self {
            name,
            cols: Vec::new(),
            primary_key: None,
        }
    }

    fn pk(mut self, name: &str, n: usize) -> Self {
        self.primary_key = Some(self.cols.len());
        self.cols
            .push((name.to_string(), Column::new((0..n as i64).collect()), true));
        self
    }

    fn col(mut self, name: &str, data: Vec<i64>, indexed: bool) -> Self {
        self.cols
            .push((name.to_string(), Column::new(data), indexed));
        self
    }

    fn finish(self, catalog: &mut Catalog, tables: &mut Vec<Table>) -> usize {
        let meta = TableMeta {
            name: self.name.to_string(),
            columns: self
                .cols
                .iter()
                .map(|(n, _, idx)| ColumnMeta {
                    name: n.clone(),
                    indexed: *idx,
                })
                .collect(),
            primary_key: self.primary_key,
        };
        let id = catalog.add_table(meta);
        tables.push(Table::new(
            self.name,
            self.cols.into_iter().map(|(n, c, _)| (n, c)).collect(),
        ));
        id
    }
}

fn finish_db(catalog: Catalog, tables: Vec<Table>) -> Database {
    let stats = tables.iter().map(TableStats::build).collect();
    Database::new(catalog, tables, stats)
}

/// Samples `n` zipfian foreign keys referencing `0..parent_n`, with ranks
/// shuffled so popularity is not aligned with key order.
fn zipf_fk(rng: &mut SmallRng, n: usize, parent_n: usize, s: f64) -> Vec<i64> {
    let zipf = ZipfSampler::new(parent_n, s);
    // A fixed random permutation decouples "rank" from "id".
    let mut perm: Vec<i64> = (0..parent_n as i64).collect();
    for i in (1..perm.len()).rev() {
        let j = rng.random_range(0..=i);
        perm.swap(i, j);
    }
    (0..n).map(|_| perm[zipf.sample(rng)]).collect()
}

/// Uniform foreign keys referencing `0..parent_n`.
fn uniform_fk(rng: &mut SmallRng, n: usize, parent_n: usize) -> Vec<i64> {
    (0..n)
        .map(|_| rng.random_range(0..parent_n as i64))
        .collect()
}

/// Generates the mini-IMDb database (21-table JOB schema).
pub fn mini_imdb(cfg: DataGenConfig) -> Database {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x1_34D8);
    let mut catalog = Catalog::new();
    let mut tables = Vec::new();

    // ---- dimension sizes ----
    let n_kind_type = 7;
    let n_comp_cast_type = 4;
    let n_company_type = 4;
    let n_role_type = 12;
    let n_link_type = 18;
    let n_info_type = 113;
    let n_title = cfg.rows(4000);
    let n_name = cfg.rows(3000);
    let n_char_name = cfg.rows(2500);
    let n_company_name = cfg.rows(1200);
    let n_keyword = cfg.rows(1500);
    let n_cast_info = cfg.rows(14000);
    let n_movie_info = cfg.rows(8000);
    let n_movie_info_idx = cfg.rows(3500);
    let n_movie_keyword = cfg.rows(6000);
    let n_movie_companies = cfg.rows(5000);
    let n_movie_link = cfg.rows(600);
    let n_complete_cast = cfg.rows(800);
    let n_aka_name = cfg.rows(1200);
    let n_aka_title = cfg.rows(900);
    let n_person_info = cfg.rows(4000);

    // ---- tiny dimensions ----
    let kind_type = TableBuilder::new("kind_type")
        .pk("id", n_kind_type)
        .col("kind", (0..n_kind_type as i64).collect(), false)
        .finish(&mut catalog, &mut tables);
    let comp_cast_type = TableBuilder::new("comp_cast_type")
        .pk("id", n_comp_cast_type)
        .col("kind", (0..n_comp_cast_type as i64).collect(), false)
        .finish(&mut catalog, &mut tables);
    let company_type = TableBuilder::new("company_type")
        .pk("id", n_company_type)
        .col("kind", (0..n_company_type as i64).collect(), false)
        .finish(&mut catalog, &mut tables);
    let role_type = TableBuilder::new("role_type")
        .pk("id", n_role_type)
        .col("role", (0..n_role_type as i64).collect(), false)
        .finish(&mut catalog, &mut tables);
    let link_type = TableBuilder::new("link_type")
        .pk("id", n_link_type)
        .col("link", (0..n_link_type as i64).collect(), false)
        .finish(&mut catalog, &mut tables);
    let info_type = TableBuilder::new("info_type")
        .pk("id", n_info_type)
        .col("info", (0..n_info_type as i64).collect(), false)
        .finish(&mut catalog, &mut tables);

    // ---- title: production_year skews recent; kind correlates with year ----
    let year_zipf = ZipfSampler::new(120, 1.15);
    let mut t_year = Vec::with_capacity(n_title);
    let mut t_kind = Vec::with_capacity(n_title);
    let mut t_season = Vec::with_capacity(n_title);
    for _ in 0..n_title {
        let year = 2020 - year_zipf.sample(&mut rng) as i64;
        // TV episodes (kind 6/7) are much more likely for recent titles.
        let kind = if year >= 2000 && rng.random::<f64>() < 0.45 {
            6 + rng.random_range(0..2i64) % (n_kind_type as i64 - 6).max(1)
        } else {
            // Movies dominate the backlist.
            let z = ZipfSampler::new(6, 1.3);
            z.sample(&mut rng) as i64
        };
        let season = if kind >= 6 {
            rng.random_range(1..=20i64)
        } else {
            NULL_SENTINEL
        };
        t_year.push(year);
        t_kind.push(kind.min(n_kind_type as i64 - 1));
        t_season.push(season);
    }
    let title = TableBuilder::new("title")
        .pk("id", n_title)
        .col("kind_id", t_kind, true)
        .col("production_year", t_year, false)
        .col("season_nr", t_season, false)
        .finish(&mut catalog, &mut tables);
    catalog.add_fk(FkEdge {
        child: title,
        child_col: 1,
        parent: kind_type,
        parent_col: 0,
    });

    // ---- name (people) ----
    let n_gender: Vec<i64> = (0..n_name)
        .map(|_| if rng.random::<f64>() < 0.7 { 0 } else { 1 })
        .collect();
    let name = TableBuilder::new("name")
        .pk("id", n_name)
        .col("gender", n_gender, false)
        .col(
            "name_pcode_cf",
            (0..n_name).map(|_| rng.random_range(0..500i64)).collect(),
            false,
        )
        .finish(&mut catalog, &mut tables);

    let char_name = TableBuilder::new("char_name")
        .pk("id", n_char_name)
        .col(
            "name_pcode_nf",
            (0..n_char_name)
                .map(|_| rng.random_range(0..400i64))
                .collect(),
            false,
        )
        .finish(&mut catalog, &mut tables);

    // ---- company_name: country skews heavily toward a few codes ----
    let country_zipf = ZipfSampler::new(60, 1.4);
    let company_name = TableBuilder::new("company_name")
        .pk("id", n_company_name)
        .col(
            "country_code",
            (0..n_company_name)
                .map(|_| country_zipf.sample(&mut rng) as i64)
                .collect(),
            false,
        )
        .finish(&mut catalog, &mut tables);

    let keyword = TableBuilder::new("keyword")
        .pk("id", n_keyword)
        .col("keyword", (0..n_keyword as i64).collect(), false)
        .finish(&mut catalog, &mut tables);

    // ---- cast_info: zipfian movie fan-out; role correlates with gender ----
    let ci_movie = zipf_fk(&mut rng, n_cast_info, n_title, 0.9);
    let ci_person = zipf_fk(&mut rng, n_cast_info, n_name, 1.0);
    let role_zipf = ZipfSampler::new(n_role_type, 1.2);
    let ci_role: Vec<i64> = (0..n_cast_info)
        .map(|_| role_zipf.sample(&mut rng) as i64)
        .collect();
    let ci_char: Vec<i64> = (0..n_cast_info)
        .map(|_| {
            if rng.random::<f64>() < 0.35 {
                NULL_SENTINEL
            } else {
                rng.random_range(0..n_char_name as i64)
            }
        })
        .collect();
    let cast_info = TableBuilder::new("cast_info")
        .pk("id", n_cast_info)
        .col("person_id", ci_person, true)
        .col("movie_id", ci_movie, true)
        .col("person_role_id", ci_char, true)
        .col("role_id", ci_role, true)
        .col(
            "note",
            (0..n_cast_info)
                .map(|_| rng.random_range(0..50i64))
                .collect(),
            false,
        )
        .finish(&mut catalog, &mut tables);
    catalog.add_fk(FkEdge {
        child: cast_info,
        child_col: 1,
        parent: name,
        parent_col: 0,
    });
    catalog.add_fk(FkEdge {
        child: cast_info,
        child_col: 2,
        parent: title,
        parent_col: 0,
    });
    catalog.add_fk(FkEdge {
        child: cast_info,
        child_col: 3,
        parent: char_name,
        parent_col: 0,
    });
    catalog.add_fk(FkEdge {
        child: cast_info,
        child_col: 4,
        parent: role_type,
        parent_col: 0,
    });

    // ---- movie_info: `info` value strongly determined by info_type_id.
    // This correlation is invisible to an independence-assuming estimator.
    let mi_movie = zipf_fk(&mut rng, n_movie_info, n_title, 0.8);
    let it_zipf = ZipfSampler::new(n_info_type, 1.1);
    let mut mi_it = Vec::with_capacity(n_movie_info);
    let mut mi_info = Vec::with_capacity(n_movie_info);
    for _ in 0..n_movie_info {
        let it = it_zipf.sample(&mut rng) as i64;
        // info values live in a band determined by the info type.
        let v = it * 100 + rng.random_range(0..20i64);
        mi_it.push(it);
        mi_info.push(v);
    }
    let movie_info = TableBuilder::new("movie_info")
        .pk("id", n_movie_info)
        .col("movie_id", mi_movie, true)
        .col("info_type_id", mi_it, true)
        .col("info", mi_info, false)
        .finish(&mut catalog, &mut tables);
    catalog.add_fk(FkEdge {
        child: movie_info,
        child_col: 1,
        parent: title,
        parent_col: 0,
    });
    catalog.add_fk(FkEdge {
        child: movie_info,
        child_col: 2,
        parent: info_type,
        parent_col: 0,
    });

    // ---- movie_info_idx: ratings/votes style info ----
    let mii_movie = zipf_fk(&mut rng, n_movie_info_idx, n_title, 0.7);
    let mut mii_it = Vec::with_capacity(n_movie_info_idx);
    let mut mii_info = Vec::with_capacity(n_movie_info_idx);
    for i in 0..n_movie_info_idx {
        // info types 99..103 only (mirrors IMDb's rating/votes types).
        let it = 99 + (i as i64 % 4);
        // "rating" in tenths, correlated with movie popularity (movie id rank).
        let v = rng.random_range(10..100i64);
        mii_it.push(it);
        mii_info.push(v);
    }
    let movie_info_idx = TableBuilder::new("movie_info_idx")
        .pk("id", n_movie_info_idx)
        .col("movie_id", mii_movie, true)
        .col("info_type_id", mii_it, true)
        .col("info", mii_info, false)
        .finish(&mut catalog, &mut tables);
    catalog.add_fk(FkEdge {
        child: movie_info_idx,
        child_col: 1,
        parent: title,
        parent_col: 0,
    });
    catalog.add_fk(FkEdge {
        child: movie_info_idx,
        child_col: 2,
        parent: info_type,
        parent_col: 0,
    });

    // ---- movie_keyword ----
    let mk_movie = zipf_fk(&mut rng, n_movie_keyword, n_title, 0.85);
    let mk_kw = zipf_fk(&mut rng, n_movie_keyword, n_keyword, 1.05);
    let movie_keyword = TableBuilder::new("movie_keyword")
        .pk("id", n_movie_keyword)
        .col("movie_id", mk_movie, true)
        .col("keyword_id", mk_kw, true)
        .finish(&mut catalog, &mut tables);
    catalog.add_fk(FkEdge {
        child: movie_keyword,
        child_col: 1,
        parent: title,
        parent_col: 0,
    });
    catalog.add_fk(FkEdge {
        child: movie_keyword,
        child_col: 2,
        parent: keyword,
        parent_col: 0,
    });

    // ---- movie_companies: company type correlates with country ----
    let mc_movie = zipf_fk(&mut rng, n_movie_companies, n_title, 0.8);
    let mc_company = zipf_fk(&mut rng, n_movie_companies, n_company_name, 1.1);
    let mc_type: Vec<i64> = (0..n_movie_companies)
        .map(|_| {
            if rng.random::<f64>() < 0.6 {
                0 // production companies dominate
            } else {
                rng.random_range(1..n_company_type as i64)
            }
        })
        .collect();
    let movie_companies = TableBuilder::new("movie_companies")
        .pk("id", n_movie_companies)
        .col("movie_id", mc_movie, true)
        .col("company_id", mc_company, true)
        .col("company_type_id", mc_type, true)
        .col(
            "note",
            (0..n_movie_companies)
                .map(|_| rng.random_range(0..30i64))
                .collect(),
            false,
        )
        .finish(&mut catalog, &mut tables);
    catalog.add_fk(FkEdge {
        child: movie_companies,
        child_col: 1,
        parent: title,
        parent_col: 0,
    });
    catalog.add_fk(FkEdge {
        child: movie_companies,
        child_col: 2,
        parent: company_name,
        parent_col: 0,
    });
    catalog.add_fk(FkEdge {
        child: movie_companies,
        child_col: 3,
        parent: company_type,
        parent_col: 0,
    });

    // ---- movie_link (title self-join via linked_movie_id) ----
    let ml_movie = uniform_fk(&mut rng, n_movie_link, n_title);
    let ml_linked = uniform_fk(&mut rng, n_movie_link, n_title);
    let ml_lt: Vec<i64> = (0..n_movie_link)
        .map(|_| rng.random_range(0..n_link_type as i64))
        .collect();
    let movie_link = TableBuilder::new("movie_link")
        .pk("id", n_movie_link)
        .col("movie_id", ml_movie, true)
        .col("linked_movie_id", ml_linked, true)
        .col("link_type_id", ml_lt, true)
        .finish(&mut catalog, &mut tables);
    catalog.add_fk(FkEdge {
        child: movie_link,
        child_col: 1,
        parent: title,
        parent_col: 0,
    });
    catalog.add_fk(FkEdge {
        child: movie_link,
        child_col: 2,
        parent: title,
        parent_col: 0,
    });
    catalog.add_fk(FkEdge {
        child: movie_link,
        child_col: 3,
        parent: link_type,
        parent_col: 0,
    });

    // ---- complete_cast ----
    let cc_movie = uniform_fk(&mut rng, n_complete_cast, n_title);
    let cc_subject: Vec<i64> = (0..n_complete_cast)
        .map(|_| rng.random_range(0..n_comp_cast_type as i64))
        .collect();
    let cc_status: Vec<i64> = (0..n_complete_cast)
        .map(|_| rng.random_range(0..n_comp_cast_type as i64))
        .collect();
    let complete_cast = TableBuilder::new("complete_cast")
        .pk("id", n_complete_cast)
        .col("movie_id", cc_movie, true)
        .col("subject_id", cc_subject, true)
        .col("status_id", cc_status, true)
        .finish(&mut catalog, &mut tables);
    catalog.add_fk(FkEdge {
        child: complete_cast,
        child_col: 1,
        parent: title,
        parent_col: 0,
    });
    catalog.add_fk(FkEdge {
        child: complete_cast,
        child_col: 2,
        parent: comp_cast_type,
        parent_col: 0,
    });
    catalog.add_fk(FkEdge {
        child: complete_cast,
        child_col: 3,
        parent: comp_cast_type,
        parent_col: 0,
    });

    // ---- aka_name / aka_title / person_info ----
    let an_person = zipf_fk(&mut rng, n_aka_name, n_name, 1.1);
    let aka_name = TableBuilder::new("aka_name")
        .pk("id", n_aka_name)
        .col("person_id", an_person, true)
        .finish(&mut catalog, &mut tables);
    catalog.add_fk(FkEdge {
        child: aka_name,
        child_col: 1,
        parent: name,
        parent_col: 0,
    });

    let at_movie = zipf_fk(&mut rng, n_aka_title, n_title, 1.0);
    let aka_title = TableBuilder::new("aka_title")
        .pk("id", n_aka_title)
        .col("movie_id", at_movie, true)
        .finish(&mut catalog, &mut tables);
    catalog.add_fk(FkEdge {
        child: aka_title,
        child_col: 1,
        parent: title,
        parent_col: 0,
    });

    let pi_person = zipf_fk(&mut rng, n_person_info, n_name, 1.0);
    let pi_it: Vec<i64> = (0..n_person_info)
        .map(|_| 15 + (it_zipf.sample(&mut rng) as i64 % 30))
        .collect();
    let person_info = TableBuilder::new("person_info")
        .pk("id", n_person_info)
        .col("person_id", pi_person, true)
        .col("info_type_id", pi_it, true)
        .finish(&mut catalog, &mut tables);
    catalog.add_fk(FkEdge {
        child: person_info,
        child_col: 1,
        parent: name,
        parent_col: 0,
    });
    catalog.add_fk(FkEdge {
        child: person_info,
        child_col: 2,
        parent: info_type,
        parent_col: 0,
    });

    finish_db(catalog, tables)
}

/// Generates the mini-TPC-H database (uniform distributions, 8 tables).
pub fn mini_tpch(cfg: DataGenConfig) -> Database {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x7_9C41);
    let mut catalog = Catalog::new();
    let mut tables = Vec::new();

    let n_region = 5;
    let n_nation = 25;
    let n_supplier = cfg.rows(100);
    let n_customer = cfg.rows(1000);
    let n_part = cfg.rows(1200);
    let n_partsupp = cfg.rows(4000);
    let n_orders = cfg.rows(7000);
    let n_lineitem = cfg.rows(25000);

    let region = TableBuilder::new("region")
        .pk("r_regionkey", n_region)
        .col("r_name", (0..n_region as i64).collect(), false)
        .finish(&mut catalog, &mut tables);

    let na_region = uniform_fk(&mut rng, n_nation, n_region);
    let nation = TableBuilder::new("nation")
        .pk("n_nationkey", n_nation)
        .col("n_regionkey", na_region, true)
        .col("n_name", (0..n_nation as i64).collect(), false)
        .finish(&mut catalog, &mut tables);
    catalog.add_fk(FkEdge {
        child: nation,
        child_col: 1,
        parent: region,
        parent_col: 0,
    });

    let s_nation = uniform_fk(&mut rng, n_supplier, n_nation);
    let supplier = TableBuilder::new("supplier")
        .pk("s_suppkey", n_supplier)
        .col("s_nationkey", s_nation, true)
        .col(
            "s_acctbal",
            (0..n_supplier)
                .map(|_| rng.random_range(-999..10000i64))
                .collect(),
            false,
        )
        .finish(&mut catalog, &mut tables);
    catalog.add_fk(FkEdge {
        child: supplier,
        child_col: 1,
        parent: nation,
        parent_col: 0,
    });

    let c_nation = uniform_fk(&mut rng, n_customer, n_nation);
    let customer = TableBuilder::new("customer")
        .pk("c_custkey", n_customer)
        .col("c_nationkey", c_nation, true)
        .col(
            "c_mktsegment",
            (0..n_customer).map(|_| rng.random_range(0..5i64)).collect(),
            false,
        )
        .finish(&mut catalog, &mut tables);
    catalog.add_fk(FkEdge {
        child: customer,
        child_col: 1,
        parent: nation,
        parent_col: 0,
    });

    let part = TableBuilder::new("part")
        .pk("p_partkey", n_part)
        .col(
            "p_brand",
            (0..n_part).map(|_| rng.random_range(0..25i64)).collect(),
            false,
        )
        .col(
            "p_type",
            (0..n_part).map(|_| rng.random_range(0..150i64)).collect(),
            false,
        )
        .col(
            "p_size",
            (0..n_part).map(|_| rng.random_range(1..=50i64)).collect(),
            false,
        )
        .finish(&mut catalog, &mut tables);

    let ps_part = uniform_fk(&mut rng, n_partsupp, n_part);
    let ps_supp = uniform_fk(&mut rng, n_partsupp, n_supplier);
    let partsupp = TableBuilder::new("partsupp")
        .pk("ps_key", n_partsupp)
        .col("ps_partkey", ps_part, true)
        .col("ps_suppkey", ps_supp, true)
        .col(
            "ps_supplycost",
            (0..n_partsupp)
                .map(|_| rng.random_range(1..1000i64))
                .collect(),
            false,
        )
        .finish(&mut catalog, &mut tables);
    catalog.add_fk(FkEdge {
        child: partsupp,
        child_col: 1,
        parent: part,
        parent_col: 0,
    });
    catalog.add_fk(FkEdge {
        child: partsupp,
        child_col: 2,
        parent: supplier,
        parent_col: 0,
    });

    let o_cust = uniform_fk(&mut rng, n_orders, n_customer);
    let orders = TableBuilder::new("orders")
        .pk("o_orderkey", n_orders)
        .col("o_custkey", o_cust, true)
        .col(
            "o_orderdate",
            (0..n_orders)
                .map(|_| rng.random_range(0..2557i64)) // days over 7 years
                .collect(),
            false,
        )
        .col(
            "o_orderpriority",
            (0..n_orders).map(|_| rng.random_range(0..5i64)).collect(),
            false,
        )
        .finish(&mut catalog, &mut tables);
    catalog.add_fk(FkEdge {
        child: orders,
        child_col: 1,
        parent: customer,
        parent_col: 0,
    });

    let l_order = uniform_fk(&mut rng, n_lineitem, n_orders);
    let l_part = uniform_fk(&mut rng, n_lineitem, n_part);
    let l_supp = uniform_fk(&mut rng, n_lineitem, n_supplier);
    let lineitem = TableBuilder::new("lineitem")
        .pk("l_key", n_lineitem)
        .col("l_orderkey", l_order, true)
        .col("l_partkey", l_part, true)
        .col("l_suppkey", l_supp, true)
        .col(
            "l_shipdate",
            (0..n_lineitem)
                .map(|_| rng.random_range(0..2557i64))
                .collect(),
            false,
        )
        .col(
            "l_quantity",
            (0..n_lineitem)
                .map(|_| rng.random_range(1..=50i64))
                .collect(),
            false,
        )
        .col(
            "l_shipmode",
            (0..n_lineitem).map(|_| rng.random_range(0..7i64)).collect(),
            false,
        )
        .finish(&mut catalog, &mut tables);
    catalog.add_fk(FkEdge {
        child: lineitem,
        child_col: 1,
        parent: orders,
        parent_col: 0,
    });
    catalog.add_fk(FkEdge {
        child: lineitem,
        child_col: 2,
        parent: part,
        parent_col: 0,
    });
    catalog.add_fk(FkEdge {
        child: lineitem,
        child_col: 3,
        parent: supplier,
        parent_col: 0,
    });

    finish_db(catalog, tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_sampler_is_skewed() {
        let mut rng = SmallRng::seed_from_u64(1);
        let z = ZipfSampler::new(100, 1.2);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[50] * 5, "rank 0 should dominate");
        assert!(counts.iter().sum::<usize>() == 20_000);
    }

    #[test]
    fn mini_imdb_schema_matches_job() {
        let db = mini_imdb(DataGenConfig::default());
        assert_eq!(db.catalog().num_tables(), 21);
        for name in [
            "title",
            "cast_info",
            "movie_info",
            "movie_info_idx",
            "movie_keyword",
            "movie_companies",
            "movie_link",
            "complete_cast",
            "aka_title",
            "aka_name",
            "person_info",
            "name",
            "char_name",
            "company_name",
            "company_type",
            "keyword",
            "kind_type",
            "comp_cast_type",
            "info_type",
            "link_type",
            "role_type",
        ] {
            assert!(db.catalog().table_id(name).is_some(), "missing {name}");
        }
        // FK integrity: every FK value is NULL or a valid parent PK.
        for fk in db.catalog().fk_edges() {
            let child = db.table(fk.child);
            let parent_rows = db.table(fk.parent).num_rows() as i64;
            for &v in child.column(fk.child_col).values() {
                assert!(
                    v == NULL_SENTINEL || (0..parent_rows).contains(&v),
                    "dangling FK {v} in {}",
                    child.name()
                );
            }
        }
    }

    #[test]
    fn mini_imdb_deterministic() {
        let a = mini_imdb(DataGenConfig::default());
        let b = mini_imdb(DataGenConfig::default());
        let t1 = a.table(a.catalog().table_id("cast_info").unwrap());
        let t2 = b.table(b.catalog().table_id("cast_info").unwrap());
        assert_eq!(t1.column(1).values(), t2.column(1).values());
    }

    #[test]
    fn mini_imdb_seed_changes_data() {
        let a = mini_imdb(DataGenConfig::default());
        let b = mini_imdb(DataGenConfig {
            seed: 42,
            ..Default::default()
        });
        let t1 = a.table(a.catalog().table_id("cast_info").unwrap());
        let t2 = b.table(b.catalog().table_id("cast_info").unwrap());
        assert_ne!(t1.column(1).values(), t2.column(1).values());
    }

    #[test]
    fn fan_out_is_skewed() {
        // The busiest movie should have far more cast entries than the median.
        let db = mini_imdb(DataGenConfig::default());
        let ci = db.table(db.catalog().table_id("cast_info").unwrap());
        let nt = db.table(db.catalog().table_id("title").unwrap()).num_rows();
        let mut fanout = vec![0usize; nt];
        for &m in ci.column_by_name("movie_id").values() {
            fanout[m as usize] += 1;
        }
        fanout.sort_unstable();
        let max = *fanout.last().unwrap();
        let median = fanout[nt / 2];
        assert!(max >= (median.max(1)) * 10, "max={max} median={median}");
    }

    #[test]
    fn mini_tpch_schema() {
        let db = mini_tpch(DataGenConfig::default());
        assert_eq!(db.catalog().num_tables(), 8);
        for name in [
            "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
        ] {
            assert!(db.catalog().table_id(name).is_some(), "missing {name}");
        }
        let li = db.table(db.catalog().table_id("lineitem").unwrap());
        assert!(li.num_rows() > 10_000);
    }

    #[test]
    fn scale_factor_scales_rows() {
        let small = mini_tpch(DataGenConfig {
            scale: 0.1,
            ..Default::default()
        });
        let big = mini_tpch(DataGenConfig::default());
        let s = small.table(small.catalog().table_id("lineitem").unwrap());
        let b = big.table(big.catalog().table_id("lineitem").unwrap());
        assert!(s.num_rows() * 5 < b.num_rows());
    }

    #[test]
    fn stats_are_built() {
        let db = mini_imdb(DataGenConfig {
            scale: 0.2,
            ..Default::default()
        });
        let tid = db.catalog().table_id("title").unwrap();
        let st = db.stats(tid);
        assert_eq!(st.num_rows, db.table(tid).num_rows() as u64);
        let year = db
            .catalog()
            .table(tid)
            .column_id("production_year")
            .unwrap();
        assert!(st.columns[year].ndv > 10);
        assert!(!st.columns[year].histogram.bounds.is_empty());
    }
}
