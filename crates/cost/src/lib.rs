//! # balsa-cost
//!
//! Cost models for balsa-rs.
//!
//! * [`CoutModel`] — the paper's **minimal simulator** (§3.1): the
//!   `C_out` cost model of Cluet & Moerkotte, which sums estimated result
//!   sizes over all operators and is deliberately blind to physical
//!   operators ("fewer tuples lead to better plans").
//! * [`CmmModel`] — the `C_mm` in-memory cost model of Leis et al. 2015,
//!   mentioned in §3.3 as an alternative simulator with more physical
//!   knowledge.
//! * [`ExpertCostModel`] — a full physical cost model mirroring the
//!   execution engine's per-operator work formulas
//!   ([`physical::OpWeights`]). Driven by *estimated* cardinalities it
//!   plays the role of PostgreSQL's own cost model (the "Expert
//!   Simulator" ablation of §8.3.1 and the classical expert optimizer
//!   baseline); driven by *true* cardinalities inside `balsa-engine` the
//!   very same formulas define the ground-truth latency of a plan.
//!
//! All models implement [`CostModel`] and are parameterized by a
//! [`balsa_card::CardEstimator`], so estimated/true/noisy cardinalities
//! can be swapped freely (used by the §10 noise study).
//!
//! The [`scorer`] module defines [`PlanScorer`], the generic scoring
//! interface the beam search consumes; [`CostScorer`] adapts any
//! `CostModel` to it, and `balsa-learn` plugs its learned value model
//! into the same slot.

pub mod cmm;
pub mod cout;
pub mod expert;
pub mod orders;
pub mod physical;
pub mod scorer;

pub use cmm::CmmModel;
pub use cout::CoutModel;
pub use expert::ExpertCostModel;
pub use orders::{OrderInterner, OrderMask};
pub use physical::{
    clamp_cost, join_cost, physical_cost, scan_cost, JoinPairCost, NodeCost, OpWeights,
    SubtreeCost, COST_CEILING,
};
pub use scorer::{CostScorer, JoinCandidate, PlanScorer, QueryScorer, ScoredTree, SubtreeExt};

use balsa_card::CardEstimator;
use balsa_query::{JoinOp, Plan, Query, TableMask};
use std::sync::Arc;

/// How a join operator's output-order set derives from its inputs —
/// declared once per `(session, operator)` so enumerator hot loops
/// never compute (or intern) an order list per candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderSource {
    /// The join emits no interesting order (e.g. hash joins).
    Empty,
    /// The join preserves the left (outer) input's orders (e.g. nested
    /// loops).
    LeftInput,
    /// The join emits the session-constant order list
    /// ([`PairCoster::pair_sorted_on`], e.g. merge-join keys).
    Pair,
}

/// A per-orientation join-costing session for planner hot loops.
///
/// A DP enumerator costs every `(left entry, right entry, operator)`
/// candidate of one csg–cmp orientation; everything that depends only
/// on the two masks (output cardinality, crossing-edge keys,
/// index-NL eligibility, merge output orders) is resolved once when
/// [`CostModel::pair_coster`] opens the session, leaving the
/// per-candidate path allocation-free.
pub trait PairCoster {
    /// `(work, out_rows)` of joining children with summaries `lc`/`rc`
    /// under `op` (`work` includes both children). `right_index_scan`:
    /// whether the right child is literally an index-scan leaf — the
    /// one per-candidate fact the masks cannot carry.
    fn work_out(
        &self,
        op: JoinOp,
        lc: &SubtreeCost,
        rc: &SubtreeCost,
        right_index_scan: bool,
    ) -> (f64, f64);

    /// Whether every operator's `work` is **child-monotone**: at least
    /// `lc.work + rc.work`. Only when this holds may a DP enumerator
    /// reject candidates against `lc.work + rc.work` before costing
    /// them. Models whose formulas drop a child's work (e.g. `C_mm`'s
    /// nested loop, which charges the inner side as lookups rather
    /// than a materialized subtree) must return `false`.
    fn child_monotone(&self) -> bool {
        true
    }

    /// The output-order semantics of `op` under this model. Together
    /// with [`PairCoster::pair_sorted_on`] this must reproduce exactly
    /// the `sorted_on` that [`CostModel::join_summary`] reports.
    fn order_source(&self, op: JoinOp) -> OrderSource;

    /// The session-constant order list of [`OrderSource::Pair`]
    /// operators (for the expert model: the merge keys — left-side
    /// keys then right-side keys, in edge order).
    fn pair_sorted_on(&self) -> &[(usize, usize)];
}

/// A cost model scores a (query, plan) pair given a cardinality source.
pub trait CostModel: Send + Sync {
    /// Cost of executing `plan` for `query`. Lower is better. Units are
    /// model-specific (tuples for `C_out`, abstract work for physical
    /// models).
    fn plan_cost(&self, query: &Query, plan: &Plan, est: &dyn CardEstimator) -> f64;

    /// Human-readable model name (used in experiment reports).
    fn name(&self) -> &'static str;

    /// Costed summary of a scan leaf, used compositionally by planners
    /// (the DP enumerator and beam search of `balsa-search`).
    ///
    /// The default recomputes via [`CostModel::plan_cost`] and reports no
    /// output order; models that know about physical orders (the expert
    /// model) override it.
    fn scan_summary(&self, query: &Query, scan: &Plan, est: &dyn CardEstimator) -> SubtreeCost {
        SubtreeCost {
            work: self.plan_cost(query, scan, est),
            out_rows: est.cardinality(query, scan.mask()).max(0.0),
            sorted_on: Vec::new(),
        }
    }

    /// Costed summary of `join` (a [`Plan::Join`]) given its children's
    /// summaries `lc`/`rc`. `work` covers the whole subtree. Must agree
    /// with [`CostModel::plan_cost`] on the same tree; the default
    /// guarantees that by recomputing from scratch (O(tree) per call),
    /// while overrides compose in O(1).
    fn join_summary(
        &self,
        query: &Query,
        join: &Plan,
        lc: &SubtreeCost,
        rc: &SubtreeCost,
        est: &dyn CardEstimator,
    ) -> SubtreeCost {
        let _ = (lc, rc);
        SubtreeCost {
            work: self.plan_cost(query, join, est),
            out_rows: est.cardinality(query, join.mask()).max(0.0),
            sorted_on: Vec::new(),
        }
    }

    /// Costed summary of joining `left` and `right` under `op`
    /// **without materializing the join node** — the DP enumerator's
    /// per-candidate hot path, where the overwhelming majority of
    /// candidates are Pareto-dominated and their plan nodes would be
    /// allocated only to be dropped.
    ///
    /// Must agree bit-for-bit with [`CostModel::join_summary`] on the
    /// built node. The default guarantees that by building the node;
    /// the bundled models override it to cost from the children alone.
    // The argument list is the full join-costing context; bundling it
    // would force planner hot loops to build a struct per candidate.
    #[allow(clippy::too_many_arguments)]
    fn join_summary_parts(
        &self,
        query: &Query,
        op: JoinOp,
        left: &Arc<Plan>,
        lc: &SubtreeCost,
        right: &Arc<Plan>,
        rc: &SubtreeCost,
        est: &dyn CardEstimator,
    ) -> SubtreeCost {
        let join = Plan::join(op, left.clone(), right.clone());
        self.join_summary(query, &join, lc, rc, est)
    }

    /// Opens a [`PairCoster`] session for candidates joining exactly
    /// `(lmask, rmask)` in that orientation, or `None` when the model
    /// has no session implementation (enumerators then fall back to
    /// [`CostModel::join_summary_parts`] per candidate). A session must
    /// agree bit-for-bit with the per-candidate entry points.
    fn pair_coster<'c>(
        &'c self,
        query: &Query,
        lmask: TableMask,
        rmask: TableMask,
        est: &dyn CardEstimator,
    ) -> Option<Box<dyn PairCoster + 'c>> {
        let _ = (query, lmask, rmask, est);
        None
    }
}
