//! # balsa-cost
//!
//! Cost models for balsa-rs.
//!
//! * [`CoutModel`] — the paper's **minimal simulator** (§3.1): the
//!   `C_out` cost model of Cluet & Moerkotte, which sums estimated result
//!   sizes over all operators and is deliberately blind to physical
//!   operators ("fewer tuples lead to better plans").
//! * [`CmmModel`] — the `C_mm` in-memory cost model of Leis et al. 2015,
//!   mentioned in §3.3 as an alternative simulator with more physical
//!   knowledge.
//! * [`ExpertCostModel`] — a full physical cost model mirroring the
//!   execution engine's per-operator work formulas
//!   ([`physical::OpWeights`]). Driven by *estimated* cardinalities it
//!   plays the role of PostgreSQL's own cost model (the "Expert
//!   Simulator" ablation of §8.3.1 and the classical expert optimizer
//!   baseline); driven by *true* cardinalities inside `balsa-engine` the
//!   very same formulas define the ground-truth latency of a plan.
//!
//! All models implement [`CostModel`] and are parameterized by a
//! [`balsa_card::CardEstimator`], so estimated/true/noisy cardinalities
//! can be swapped freely (used by the §10 noise study).
//!
//! The [`scorer`] module defines [`PlanScorer`], the generic scoring
//! interface the beam search consumes; [`CostScorer`] adapts any
//! `CostModel` to it, and `balsa-learn` plugs its learned value model
//! into the same slot.

pub mod cmm;
pub mod cout;
pub mod expert;
pub mod physical;
pub mod scorer;

pub use cmm::CmmModel;
pub use cout::CoutModel;
pub use expert::ExpertCostModel;
pub use physical::{join_cost, physical_cost, scan_cost, NodeCost, OpWeights, SubtreeCost};
pub use scorer::{CostScorer, PlanScorer, QueryScorer, ScoredTree, SubtreeExt};

use balsa_card::CardEstimator;
use balsa_query::{Plan, Query};

/// A cost model scores a (query, plan) pair given a cardinality source.
pub trait CostModel: Send + Sync {
    /// Cost of executing `plan` for `query`. Lower is better. Units are
    /// model-specific (tuples for `C_out`, abstract work for physical
    /// models).
    fn plan_cost(&self, query: &Query, plan: &Plan, est: &dyn CardEstimator) -> f64;

    /// Human-readable model name (used in experiment reports).
    fn name(&self) -> &'static str;

    /// Costed summary of a scan leaf, used compositionally by planners
    /// (the DP enumerator and beam search of `balsa-search`).
    ///
    /// The default recomputes via [`CostModel::plan_cost`] and reports no
    /// output order; models that know about physical orders (the expert
    /// model) override it.
    fn scan_summary(&self, query: &Query, scan: &Plan, est: &dyn CardEstimator) -> SubtreeCost {
        SubtreeCost {
            work: self.plan_cost(query, scan, est),
            out_rows: est.cardinality(query, scan.mask()).max(0.0),
            sorted_on: Vec::new(),
        }
    }

    /// Costed summary of `join` (a [`Plan::Join`]) given its children's
    /// summaries `lc`/`rc`. `work` covers the whole subtree. Must agree
    /// with [`CostModel::plan_cost`] on the same tree; the default
    /// guarantees that by recomputing from scratch (O(tree) per call),
    /// while overrides compose in O(1).
    fn join_summary(
        &self,
        query: &Query,
        join: &Plan,
        lc: &SubtreeCost,
        rc: &SubtreeCost,
        est: &dyn CardEstimator,
    ) -> SubtreeCost {
        let _ = (lc, rc);
        SubtreeCost {
            work: self.plan_cost(query, join, est),
            out_rows: est.cardinality(query, join.mask()).max(0.0),
            sorted_on: Vec::new(),
        }
    }
}
