//! Interned interesting-order sets.
//!
//! The DP enumerator keeps a Pareto set of `(cost, output-order-set)`
//! entries per table subset, and the dominance check "does entry A offer
//! a superset of entry B's orders" sits on the planner's hottest loop.
//! Representing order sets as `BTreeSet<(usize, usize)>` means a heap
//! allocation per candidate and an ordered-set walk per comparison.
//!
//! An [`OrderInterner`] instead assigns each distinct `(qt, col)` order
//! a small integer id — once per query, lazily on first sight — and
//! packs an order set into an [`OrderMask`] bitmask. Dominance becomes
//! two integer ops (`and` + compare), and converting a
//! [`crate::SubtreeCost`]'s `sorted_on` list costs one hash lookup per
//! element with no allocation.
//!
//! Capacity is 128 distinct orders per query: the universe is bounded by
//! the query's join-edge endpoints plus its indexed columns, far below
//! the cap for every workload in the repo (a 14-table JOB-like query
//! has ~40–80).

use crate::SubtreeCost;
use std::collections::HashMap;

/// A set of interesting orders, packed as a bitmask over the ids an
/// [`OrderInterner`] assigned. Only meaningful relative to the interner
/// that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OrderMask(pub u128);

impl OrderMask {
    /// The empty order set.
    pub const EMPTY: OrderMask = OrderMask(0);

    /// Whether `self` offers every order in `other` — the superset side
    /// of the Pareto dominance check, in two integer ops.
    #[inline]
    pub fn contains_all(self, other: OrderMask) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of distinct orders in the set.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }
}

/// Assigns per-query small-integer ids to `(qt, col)` interesting
/// orders, packing order sets into [`OrderMask`] bitmasks.
///
/// One interner serves exactly one query (ids are assigned in first-seen
/// order); clear it between queries with [`OrderInterner::clear`] to
/// reuse the allocation.
#[derive(Debug, Default)]
pub struct OrderInterner {
    ids: HashMap<(usize, usize), u32>,
}

impl OrderInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets for the next query, keeping the map's allocation.
    pub fn clear(&mut self) {
        self.ids.clear();
    }

    /// Number of distinct orders seen so far.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no order has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Packs an order list (possibly with duplicates, e.g. a
    /// [`SubtreeCost::sorted_on`]) into its bitmask, assigning fresh ids
    /// to unseen orders.
    ///
    /// # Panics
    /// Panics if a query produces more than 128 distinct orders.
    pub fn intern(&mut self, orders: &[(usize, usize)]) -> OrderMask {
        let mut mask = 0u128;
        for &o in orders {
            let next = self.ids.len() as u32;
            let id = *self.ids.entry(o).or_insert(next);
            assert!(id < 128, "query exceeds 128 distinct interesting orders");
            mask |= 1u128 << id;
        }
        OrderMask(mask)
    }

    /// Packs a subtree summary's output orders.
    pub fn intern_cost(&mut self, sc: &SubtreeCost) -> OrderMask {
        self.intern(&sc.sorted_on)
    }

    /// Read-only mask lookup for orders interned ahead of time.
    ///
    /// Enumerators that pre-intern a query's whole order universe (so
    /// the interner can be shared immutably across worker threads) use
    /// this on their hot path; bit assignments are then fixed by the
    /// pre-interning pass, so masks are identical no matter which
    /// thread — or how many — performs the lookup.
    ///
    /// # Panics
    /// Panics if `orders` contains an order that was never interned —
    /// that means the caller's universe computation missed a
    /// `sorted_on` source, which would silently corrupt dominance
    /// checks if tolerated.
    pub fn mask_of(&self, orders: &[(usize, usize)]) -> OrderMask {
        let mut mask = 0u128;
        for o in orders {
            let id = *self
                .ids
                .get(o)
                .unwrap_or_else(|| panic!("order {o:?} outside the pre-interned universe"));
            mask |= 1u128 << id;
        }
        OrderMask(mask)
    }

    /// Read-only lookup of a subtree summary's output orders.
    ///
    /// # Panics
    /// As [`OrderInterner::mask_of`].
    pub fn mask_of_cost(&self, sc: &SubtreeCost) -> OrderMask {
        self.mask_of(&sc.sorted_on)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn interning_matches_btreeset_superset_semantics() {
        // Pseudo-random order lists; compare mask superset against the
        // reference BTreeSet implementation the DP used to carry.
        let universe: Vec<(usize, usize)> = (0..6).flat_map(|t| [(t, 0), (t, 1)]).collect();
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let lists: Vec<Vec<(usize, usize)>> = (0..24)
            .map(|_| {
                let bits = next() as usize;
                universe
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| bits >> i & 1 == 1)
                    .map(|(_, &o)| o)
                    .collect()
            })
            .collect();
        let mut interner = OrderInterner::new();
        let masks: Vec<OrderMask> = lists.iter().map(|l| interner.intern(l)).collect();
        let sets: Vec<BTreeSet<(usize, usize)>> =
            lists.iter().map(|l| l.iter().copied().collect()).collect();
        for i in 0..lists.len() {
            assert_eq!(masks[i].count() as usize, sets[i].len());
            for j in 0..lists.len() {
                assert_eq!(
                    masks[i].contains_all(masks[j]),
                    sets[i].is_superset(&sets[j]),
                    "lists {i} vs {j}"
                );
            }
        }
    }

    #[test]
    fn duplicates_collapse_and_ids_are_stable() {
        let mut it = OrderInterner::new();
        let a = it.intern(&[(1, 2), (1, 2), (3, 4)]);
        assert_eq!(a.count(), 2);
        let b = it.intern(&[(3, 4)]);
        assert!(a.contains_all(b));
        assert!(!b.contains_all(a));
        assert_eq!(it.len(), 2);
        it.clear();
        assert!(it.is_empty());
        assert_eq!(it.intern(&[]), OrderMask::EMPTY);
        assert!(OrderMask::EMPTY.is_empty());
    }

    #[test]
    fn mask_of_matches_intern_after_universe_preinterning() {
        // Pre-intern a universe, then check the read-only lookup agrees
        // with mutable interning for every subset — the contract the
        // parallel DP relies on when sharing one interner across
        // workers.
        let universe: Vec<(usize, usize)> = (0..5).flat_map(|t| [(t, 0), (t, 3)]).collect();
        let mut it = OrderInterner::new();
        it.intern(&universe);
        let before = it.len();
        for i in 0..universe.len() {
            for j in i..universe.len() {
                let list = &universe[i..=j];
                assert_eq!(it.mask_of(list), it.intern(list), "{list:?}");
            }
        }
        assert_eq!(it.len(), before, "lookups must not grow the interner");
        let sc = SubtreeCost {
            work: 1.0,
            out_rows: 1.0,
            sorted_on: vec![universe[2], universe[7]],
        };
        assert_eq!(it.mask_of_cost(&sc), it.mask_of(&sc.sorted_on));
        assert_eq!(it.mask_of(&[]), OrderMask::EMPTY);
    }

    #[test]
    #[should_panic(expected = "outside the pre-interned universe")]
    fn mask_of_rejects_unseen_orders() {
        let mut it = OrderInterner::new();
        it.intern(&[(0, 0)]);
        it.mask_of(&[(9, 9)]);
    }

    #[test]
    fn intern_cost_reads_sorted_on() {
        let mut it = OrderInterner::new();
        let sc = SubtreeCost {
            work: 1.0,
            out_rows: 1.0,
            sorted_on: vec![(0, 1), (2, 3)],
        };
        let m = it.intern_cost(&sc);
        assert_eq!(m.count(), 2);
    }
}
