//! Physical per-operator work formulas.
//!
//! These formulas are the single source of truth for "how much work does
//! this physical operator do", shared by:
//!
//! * the **execution engine** (`balsa-engine`), which evaluates them on
//!   *true* cardinalities to produce ground-truth latencies, and
//! * the **expert cost model** ([`crate::ExpertCostModel`]), which
//!   evaluates them on *estimated* cardinalities — exactly the classical
//!   optimizer architecture (accurate model × inaccurate estimates).
//!
//! Work is measured in abstract tuple-operations; an engine profile
//! converts work to seconds.

use balsa_card::CardEstimator;
use balsa_query::{JoinOp, Plan, Query, ScanOp, TableMask};
use balsa_storage::Database;

/// Per-operator work weights. Two presets model the two engines of the
/// paper's evaluation (§8.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpWeights {
    /// Per tuple scanned sequentially (includes filter evaluation).
    pub seq_tuple: f64,
    /// Fixed cost of descending an index (per lookup).
    pub index_lookup: f64,
    /// Per tuple fetched through an index.
    pub index_tuple: f64,
    /// Per tuple on the hash-join build side.
    pub hash_build: f64,
    /// Per tuple on the hash-join probe side.
    pub hash_probe: f64,
    /// Per input tuple consumed by a merge join.
    pub merge_tuple: f64,
    /// Per tuple × log2(n) when an input must be sorted for a merge join.
    pub sort_tuple_log: f64,
    /// Per (outer × inner) tuple pair for an unindexed nested-loop join.
    pub nl_pair: f64,
    /// Per outer tuple × log2(inner) for an index nested-loop join.
    pub nl_index_outer: f64,
    /// Per output tuple materialized by any join.
    pub output_tuple: f64,
}

impl OpWeights {
    /// PostgreSQL-flavoured weights: cheap index nested loops, moderate
    /// hash joins, sorts hurt.
    pub fn postgres_like() -> Self {
        Self {
            seq_tuple: 1.0,
            index_lookup: 40.0,
            index_tuple: 2.0,
            hash_build: 1.6,
            hash_probe: 1.0,
            merge_tuple: 0.8,
            sort_tuple_log: 0.25,
            nl_pair: 0.25,
            nl_index_outer: 0.35,
            output_tuple: 0.3,
        }
    }

    /// Commercial-engine-flavoured weights: highly optimized hash joins
    /// and scans, relatively expensive nested loops — a different
    /// operator-preference landscape for the agent to learn (§8.6).
    pub fn commdb_like() -> Self {
        Self {
            seq_tuple: 0.55,
            index_lookup: 60.0,
            index_tuple: 2.5,
            hash_build: 0.9,
            hash_probe: 0.5,
            merge_tuple: 0.6,
            sort_tuple_log: 0.18,
            nl_pair: 0.5,
            nl_index_outer: 0.9,
            output_tuple: 0.25,
        }
    }
}

/// Cost/cardinality report for one plan node.
#[derive(Debug, Clone, Copy)]
pub struct NodeCost {
    /// Tables covered by the node.
    pub mask: TableMask,
    /// Work performed by this node alone.
    pub work: f64,
    /// Output cardinality of the node.
    pub out_rows: f64,
}

/// Costed summary of a plan subtree.
///
/// This is the compositional currency of the planning layer: the DP
/// enumerator and beam search build candidate joins by combining child
/// summaries through [`join_cost`] instead of re-costing whole trees,
/// and [`physical_cost`] itself is defined in terms of the same two
/// builders, so planner scores and engine charges can never diverge.
#[derive(Debug, Clone, Default)]
pub struct SubtreeCost {
    /// Total work of the subtree (this node plus all descendants).
    pub work: f64,
    /// Output cardinality of the subtree.
    pub out_rows: f64,
    /// `(qt, col)` pairs the output is sorted on (equivalence class of the
    /// last order-producing operator), used to elide merge-join sorts.
    pub sorted_on: Vec<(usize, usize)>,
}

/// Costs a scan leaf of query-table `qt` with operator `op`.
pub fn scan_cost(
    db: &Database,
    q: &Query,
    qt: usize,
    op: ScanOp,
    est: &dyn CardEstimator,
    w: &OpWeights,
) -> SubtreeCost {
    let tid = q.tables[qt].table;
    let base = db.stats(tid).num_rows as f64;
    let out = est.cardinality(q, TableMask::single(qt)).max(0.0);
    let (work, sorted_on) = match op {
        ScanOp::Seq => (w.seq_tuple * base, Vec::new()),
        ScanOp::Index => {
            // An index scan drives through whichever index serves the
            // access (filter column or join key); its output is ordered
            // by that key. We expose the full set of indexed columns as
            // candidate orders; the parent join picks the one it needs.
            let sorted: Vec<(usize, usize)> = db
                .catalog()
                .table(tid)
                .columns
                .iter()
                .enumerate()
                .filter(|(_, c)| c.indexed)
                .map(|(ci, _)| (qt, ci))
                .collect();
            let work = w.index_lookup * (base + 2.0).log2() + w.index_tuple * out;
            (work, sorted)
        }
    };
    SubtreeCost {
        work,
        out_rows: out,
        sorted_on,
    }
}

/// Costs a join of `left` and `right` (whose summaries are `lc`/`rc`)
/// under operator `op`, returning the summary of the combined subtree
/// (`work` includes both children).
// The argument list is the full join-costing context; bundling it into a
// struct would force every planner hot loop to build one per candidate.
#[allow(clippy::too_many_arguments)]
pub fn join_cost(
    db: &Database,
    q: &Query,
    op: JoinOp,
    left: &Plan,
    lc: &SubtreeCost,
    right: &Plan,
    rc: &SubtreeCost,
    est: &dyn CardEstimator,
    w: &OpWeights,
) -> SubtreeCost {
    let mask = left.mask().union(right.mask());
    let out = est.cardinality(q, mask).max(0.0);
    let edges = q.edges_between(left.mask(), right.mask());
    let mut sorted_on = Vec::new();
    let work = match op {
        JoinOp::Hash => {
            // Build on the right, probe from the left.
            w.hash_build * rc.out_rows + w.hash_probe * lc.out_rows + w.output_tuple * out
        }
        JoinOp::Merge => {
            // Sort either input unless it already streams in the join
            // key's order.
            let key_of = |side_mask: TableMask| -> Vec<(usize, usize)> {
                edges
                    .iter()
                    .map(|e| {
                        if side_mask.contains(e.left_qt) {
                            (e.left_qt, e.left_col)
                        } else {
                            (e.right_qt, e.right_col)
                        }
                    })
                    .collect()
            };
            let lkeys = key_of(left.mask());
            let rkeys = key_of(right.mask());
            let sort_cost = |rows: f64| w.sort_tuple_log * rows * (rows + 2.0).log2();
            let l_sorted = lkeys.iter().any(|k| lc.sorted_on.contains(k));
            let r_sorted = rkeys.iter().any(|k| rc.sorted_on.contains(k));
            let mut wk = w.merge_tuple * (lc.out_rows + rc.out_rows) + w.output_tuple * out;
            if !l_sorted {
                wk += sort_cost(lc.out_rows);
            }
            if !r_sorted {
                wk += sort_cost(rc.out_rows);
            }
            // Output is ordered on the merge keys.
            sorted_on.extend(lkeys);
            sorted_on.extend(rkeys);
            wk
        }
        JoinOp::NestLoop => {
            // Index nested loop when the inner (right) side is a base
            // *index* scan with an index on some join column. A
            // sequential inner forces re-scanning the table per outer
            // tuple — the quadratic case.
            let indexed_inner = match right {
                Plan::Scan {
                    qt,
                    op: ScanOp::Index,
                } => {
                    let qt = *qt as usize;
                    let tid = q.tables[qt].table;
                    edges.iter().any(|e| {
                        let col = if e.right_qt == qt {
                            Some(e.right_col)
                        } else if e.left_qt == qt {
                            Some(e.left_col)
                        } else {
                            None
                        };
                        col.is_some_and(|c| db.catalog().is_indexed(tid, c))
                    })
                }
                _ => false,
            };
            // NL preserves the outer (left) input's order.
            sorted_on = lc.sorted_on.clone();
            if indexed_inner {
                let inner_base = match right {
                    Plan::Scan { qt, .. } => db.stats(q.tables[*qt as usize].table).num_rows as f64,
                    _ => rc.out_rows,
                };
                w.nl_index_outer * lc.out_rows * (inner_base + 2.0).log2()
                    + w.index_tuple * out
                    + w.output_tuple * out
            } else {
                // The disaster case: quadratic pairing.
                w.nl_pair * lc.out_rows * rc.out_rows + w.output_tuple * out
            }
        }
    };
    SubtreeCost {
        work: lc.work + rc.work + work,
        out_rows: out,
        sorted_on,
    }
}

/// Computes the physical cost of `plan`, appending per-node reports to
/// `nodes` (pass `None` when only the total is needed).
///
/// Cardinalities come from `est`, which may be an estimator or the true
/// oracle. Index availability comes from the catalog in `db`. Defined
/// entirely in terms of [`scan_cost`] and [`join_cost`].
pub fn physical_cost(
    db: &Database,
    query: &Query,
    plan: &Plan,
    est: &dyn CardEstimator,
    w: &OpWeights,
    mut nodes: Option<&mut Vec<NodeCost>>,
) -> f64 {
    fn rec(
        db: &Database,
        q: &Query,
        p: &Plan,
        est: &dyn CardEstimator,
        w: &OpWeights,
        nodes: &mut Option<&mut Vec<NodeCost>>,
    ) -> SubtreeCost {
        match p {
            Plan::Scan { qt, op } => {
                let qt = *qt as usize;
                let s = scan_cost(db, q, qt, *op, est, w);
                if let Some(ns) = nodes.as_deref_mut() {
                    ns.push(NodeCost {
                        mask: TableMask::single(qt),
                        work: s.work,
                        out_rows: s.out_rows,
                    });
                }
                s
            }
            Plan::Join {
                op,
                left,
                right,
                mask,
            } => {
                let l = rec(db, q, left, est, w, nodes);
                let r = rec(db, q, right, est, w, nodes);
                let s = join_cost(db, q, *op, left, &l, right, &r, est, w);
                if let Some(ns) = nodes.as_deref_mut() {
                    ns.push(NodeCost {
                        mask: *mask,
                        work: s.work - l.work - r.work,
                        out_rows: s.out_rows,
                    });
                }
                s
            }
        }
    }
    rec(db, query, plan, est, w, &mut nodes).work
}

#[cfg(test)]
mod tests {
    use super::*;
    use balsa_query::{JoinEdge, QueryTable};
    use balsa_storage::{mini_imdb, DataGenConfig};

    fn fixture() -> (Database, Query) {
        let db = mini_imdb(DataGenConfig {
            scale: 0.1,
            ..Default::default()
        });
        let t = db.catalog().table_id("title").unwrap();
        let mc = db.catalog().table_id("movie_companies").unwrap();
        let movie_id = db.catalog().table(mc).column_id("movie_id").unwrap();
        let q = Query {
            id: 0,
            name: "j".into(),
            template: 0,
            tables: vec![
                QueryTable {
                    table: t,
                    alias: "t".into(),
                },
                QueryTable {
                    table: mc,
                    alias: "mc".into(),
                },
            ],
            joins: vec![JoinEdge {
                left_qt: 0,
                left_col: 0,
                right_qt: 1,
                right_col: movie_id,
            }],
            filters: vec![],
        };
        (db, q)
    }

    fn est(db: &Database) -> balsa_card::HistogramEstimator<'_> {
        balsa_card::HistogramEstimator::new(db)
    }

    #[test]
    fn unindexed_nl_is_disastrous() {
        let (db, q) = fixture();
        let w = OpWeights::postgres_like();
        let e = est(&db);
        let hash = Plan::join(
            JoinOp::Hash,
            Plan::scan(0, ScanOp::Seq),
            Plan::scan(1, ScanOp::Seq),
        );
        // Sequential inner: re-scan per outer tuple -> quadratic pairing.
        let nl_bad = Plan::join(
            JoinOp::NestLoop,
            Plan::scan(1, ScanOp::Seq),
            Plan::scan(0, ScanOp::Seq),
        );
        // Index scan on title.id (the PK the edge targets): index NL.
        let nl_good = Plan::join(
            JoinOp::NestLoop,
            Plan::scan(1, ScanOp::Seq),
            Plan::scan(0, ScanOp::Index),
        );
        let ch = physical_cost(&db, &q, &hash, &e, &w, None);
        let cb = physical_cost(&db, &q, &nl_bad, &e, &w, None);
        let cg = physical_cost(&db, &q, &nl_good, &e, &w, None);
        assert!(ch > 0.0 && cb > 0.0 && cg > 0.0);
        assert!(
            cg * 10.0 < cb,
            "index NL {cg} should be far below pair NL {cb}"
        );
        assert!(ch * 10.0 < cb, "hash {ch} should be far below pair NL {cb}");
    }

    #[test]
    fn index_nl_requires_seq_vs_index_distinction() {
        let (db, q) = fixture();
        let w = OpWeights::postgres_like();
        let e = est(&db);
        // Right side = mc.movie_id (indexed FK): index scan enables cheap NL.
        let nl_idx = Plan::join(
            JoinOp::NestLoop,
            Plan::scan(0, ScanOp::Seq),
            Plan::scan(1, ScanOp::Index),
        );
        let nl_seq = Plan::join(
            JoinOp::NestLoop,
            Plan::scan(0, ScanOp::Seq),
            Plan::scan(1, ScanOp::Seq),
        );
        let ci = physical_cost(&db, &q, &nl_idx, &e, &w, None);
        let cs = physical_cost(&db, &q, &nl_seq, &e, &w, None);
        // Only the index-scan inner qualifies as an index NL; the
        // sequential inner pays the quadratic pairing cost.
        let quad = w.nl_pair
            * db.stats(q.tables[0].table).num_rows as f64
            * db.stats(q.tables[1].table).num_rows as f64;
        assert!(ci < quad / 4.0, "index NL {ci} vs quad {quad}");
        assert!(cs >= quad, "seq NL {cs} should pay quadratic {quad}");
    }

    #[test]
    fn merge_join_sort_elision_with_index_scans() {
        let (db, q) = fixture();
        let w = OpWeights::postgres_like();
        let e = est(&db);
        let merge_sorted = Plan::join(
            JoinOp::Merge,
            Plan::scan(0, ScanOp::Index),
            Plan::scan(1, ScanOp::Index),
        );
        let merge_unsorted = Plan::join(
            JoinOp::Merge,
            Plan::scan(0, ScanOp::Seq),
            Plan::scan(1, ScanOp::Seq),
        );
        let cs = physical_cost(&db, &q, &merge_sorted, &e, &w, None);
        let cu = physical_cost(&db, &q, &merge_unsorted, &e, &w, None);
        assert!(cs < cu, "pre-sorted merge {cs} should beat sort-merge {cu}");
    }

    #[test]
    fn per_node_reports_cover_all_nodes() {
        let (db, q) = fixture();
        let w = OpWeights::postgres_like();
        let e = est(&db);
        let p = Plan::join(
            JoinOp::Hash,
            Plan::scan(0, ScanOp::Seq),
            Plan::scan(1, ScanOp::Seq),
        );
        let mut nodes = Vec::new();
        let total = physical_cost(&db, &q, &p, &e, &w, Some(&mut nodes));
        assert_eq!(nodes.len(), 3);
        let sum: f64 = nodes.iter().map(|n| n.work).sum();
        assert!((sum - total).abs() < 1e-6);
    }

    #[test]
    fn engine_profiles_differ() {
        let (db, q) = fixture();
        let e = est(&db);
        let p = Plan::join(
            JoinOp::Hash,
            Plan::scan(0, ScanOp::Seq),
            Plan::scan(1, ScanOp::Seq),
        );
        let pg = physical_cost(&db, &q, &p, &e, &OpWeights::postgres_like(), None);
        let cd = physical_cost(&db, &q, &p, &e, &OpWeights::commdb_like(), None);
        assert_ne!(pg, cd);
    }
}
