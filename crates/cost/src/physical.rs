//! Physical per-operator work formulas.
//!
//! These formulas are the single source of truth for "how much work does
//! this physical operator do", shared by:
//!
//! * the **execution engine** (`balsa-engine`), which evaluates them on
//!   *true* cardinalities to produce ground-truth latencies, and
//! * the **expert cost model** ([`crate::ExpertCostModel`]), which
//!   evaluates them on *estimated* cardinalities — exactly the classical
//!   optimizer architecture (accurate model × inaccurate estimates).
//!
//! Work is measured in abstract tuple-operations; an engine profile
//! converts work to seconds.

use crate::PairCoster as _;
use balsa_card::CardEstimator;
use balsa_query::{JoinEdge, JoinOp, Plan, Query, ScanOp, TableMask};
use balsa_storage::Database;

/// Ceiling on any cost/work value produced by the physical formulas.
///
/// Cardinality products can overflow `f64` toward `inf` (a 25-table
/// worst case multiplies ~1e5-row relations 24 times), and `inf - inf`
/// or `0 * inf` downstream silently produces NaN — which then poisons
/// Pareto dominance: the `f64::min` fold in the DP's dominance
/// threshold drops NaN candidates nondeterministically. Every
/// accumulation in [`scan_cost`] / [`join_cost`] / [`JoinPairCost`]
/// therefore clamps through [`clamp_cost`]: values at or below the
/// ceiling pass through **bit-unchanged** (normal JOB costs are ~1e9,
/// twenty-one orders of magnitude below), while `inf`, NaN, and
/// anything above saturate to this finite, totally-ordered worst cost.
/// The independent plan verifier rejects any cost above this ceiling.
pub const COST_CEILING: f64 = 1e30;

/// Saturating cost guard: identity for `x <= COST_CEILING`, otherwise
/// (including `inf` and NaN, which fail the comparison) the ceiling.
#[inline]
pub fn clamp_cost(x: f64) -> f64 {
    if x <= COST_CEILING {
        x
    } else {
        COST_CEILING
    }
}

/// Per-operator work weights. Two presets model the two engines of the
/// paper's evaluation (§8.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpWeights {
    /// Per tuple scanned sequentially (includes filter evaluation).
    pub seq_tuple: f64,
    /// Fixed cost of descending an index (per lookup).
    pub index_lookup: f64,
    /// Per tuple fetched through an index.
    pub index_tuple: f64,
    /// Per tuple on the hash-join build side.
    pub hash_build: f64,
    /// Per tuple on the hash-join probe side.
    pub hash_probe: f64,
    /// Per input tuple consumed by a merge join.
    pub merge_tuple: f64,
    /// Per tuple × log2(n) when an input must be sorted for a merge join.
    pub sort_tuple_log: f64,
    /// Per (outer × inner) tuple pair for an unindexed nested-loop join.
    pub nl_pair: f64,
    /// Per outer tuple × log2(inner) for an index nested-loop join.
    pub nl_index_outer: f64,
    /// Per output tuple materialized by any join.
    pub output_tuple: f64,
}

impl OpWeights {
    /// PostgreSQL-flavoured weights: cheap index nested loops, moderate
    /// hash joins, sorts hurt.
    pub fn postgres_like() -> Self {
        Self {
            seq_tuple: 1.0,
            index_lookup: 40.0,
            index_tuple: 2.0,
            hash_build: 1.6,
            hash_probe: 1.0,
            merge_tuple: 0.8,
            sort_tuple_log: 0.25,
            nl_pair: 0.25,
            nl_index_outer: 0.35,
            output_tuple: 0.3,
        }
    }

    /// Commercial-engine-flavoured weights: highly optimized hash joins
    /// and scans, relatively expensive nested loops — a different
    /// operator-preference landscape for the agent to learn (§8.6).
    pub fn commdb_like() -> Self {
        Self {
            seq_tuple: 0.55,
            index_lookup: 60.0,
            index_tuple: 2.5,
            hash_build: 0.9,
            hash_probe: 0.5,
            merge_tuple: 0.6,
            sort_tuple_log: 0.18,
            nl_pair: 0.5,
            nl_index_outer: 0.9,
            output_tuple: 0.25,
        }
    }
}

/// Cost/cardinality report for one plan node.
#[derive(Debug, Clone, Copy)]
pub struct NodeCost {
    /// Tables covered by the node.
    pub mask: TableMask,
    /// Work performed by this node alone.
    pub work: f64,
    /// Output cardinality of the node.
    pub out_rows: f64,
}

/// Costed summary of a plan subtree.
///
/// This is the compositional currency of the planning layer: the DP
/// enumerator and beam search build candidate joins by combining child
/// summaries through [`join_cost`] instead of re-costing whole trees,
/// and [`physical_cost`] itself is defined in terms of the same two
/// builders, so planner scores and engine charges can never diverge.
#[derive(Debug, Clone, Default)]
pub struct SubtreeCost {
    /// Total work of the subtree (this node plus all descendants).
    pub work: f64,
    /// Output cardinality of the subtree.
    pub out_rows: f64,
    /// `(qt, col)` pairs the output is sorted on (equivalence class of the
    /// last order-producing operator), used to elide merge-join sorts.
    pub sorted_on: Vec<(usize, usize)>,
}

/// Costs a scan leaf of query-table `qt` with operator `op`.
pub fn scan_cost(
    db: &Database,
    q: &Query,
    qt: usize,
    op: ScanOp,
    est: &dyn CardEstimator,
    w: &OpWeights,
) -> SubtreeCost {
    let tid = q.tables[qt].table;
    let base = db.stats(tid).num_rows as f64;
    let out = est.cardinality(q, TableMask::single(qt)).max(0.0);
    let (work, sorted_on) = match op {
        ScanOp::Seq => (w.seq_tuple * base, Vec::new()),
        ScanOp::Index => {
            // An index scan drives through whichever index serves the
            // access (filter column or join key); its output is ordered
            // by that key. We expose the full set of indexed columns as
            // candidate orders; the parent join picks the one it needs.
            let sorted: Vec<(usize, usize)> = db
                .catalog()
                .table(tid)
                .columns
                .iter()
                .enumerate()
                .filter(|(_, c)| c.indexed)
                .map(|(ci, _)| (qt, ci))
                .collect();
            let work = w.index_lookup * (base + 2.0).log2() + w.index_tuple * out;
            (work, sorted)
        }
    };
    SubtreeCost {
        work: clamp_cost(work),
        out_rows: out,
        sorted_on,
    }
}

/// Costs a join of `left` and `right` (whose summaries are `lc`/`rc`)
/// under operator `op`, returning the summary of the combined subtree
/// (`work` includes both children).
///
/// One-shot convenience over [`JoinPairCost`], which is the same
/// machinery opened once per `(left-mask, right-mask)` orientation for
/// planner hot loops.
// The argument list is the full join-costing context; bundling it into a
// struct would force every planner hot loop to build one per candidate.
#[allow(clippy::too_many_arguments)]
pub fn join_cost(
    db: &Database,
    q: &Query,
    op: JoinOp,
    left: &Plan,
    lc: &SubtreeCost,
    right: &Plan,
    rc: &SubtreeCost,
    est: &dyn CardEstimator,
    w: &OpWeights,
) -> SubtreeCost {
    let ctx = JoinPairCost::new(db, q, left.mask(), right.mask(), est, *w);
    let right_index_scan = matches!(
        right,
        Plan::Scan {
            op: ScanOp::Index,
            ..
        }
    );
    let (work, out_rows) = ctx.work_out(op, lc, rc, right_index_scan);
    let sorted_on = match ctx.order_source(op) {
        crate::OrderSource::Empty => Vec::new(),
        crate::OrderSource::LeftInput => lc.sorted_on.clone(),
        crate::OrderSource::Pair => ctx.pair_sorted_on().to_vec(),
    };
    SubtreeCost {
        work,
        out_rows,
        sorted_on,
    }
}

/// Everything about costing the join of one `(left-mask, right-mask)`
/// orientation that does **not** depend on the particular child
/// entries: the output cardinality, the crossing-edge merge keys (and
/// the merge output-order list), and whether a single-table right side
/// could drive an index nested loop.
///
/// Planner inner loops open one context per csg–cmp orientation and
/// cost every `(left entry, right entry, operator)` candidate through
/// it allocation-free; [`join_cost`] itself is defined on top, so the
/// two paths cannot diverge.
pub struct JoinPairCost {
    out: f64,
    /// `(left-side key, right-side key)` of each crossing edge, in edge
    /// order.
    keys: Vec<((usize, usize), (usize, usize))>,
    /// Merge output orders (left keys then right keys), materialized on
    /// first use so one-shot hash/NL costings never pay for it.
    merge_sorted: std::cell::OnceCell<Vec<(usize, usize)>>,
    /// Whether a right-side index scan of this orientation has an index
    /// on a crossing join column (single-table right sides only).
    nl_indexable: bool,
    /// `log2(inner_base + 2)` of the single right table (unused when
    /// the right side is not a single table).
    nl_log_inner: f64,
    /// Last `(rows, sort_work)` computed for the left / right merge
    /// input — the `log2` in the sort formula is the hot loop's only
    /// libm call, and each side's rows repeat across the opposite
    /// side's entries and the operator loop.
    lsort: std::cell::Cell<(f64, f64)>,
    rsort: std::cell::Cell<(f64, f64)>,
    w: OpWeights,
}

impl JoinPairCost {
    /// Opens the context for joining `lmask` with `rmask` (disjoint,
    /// connected by at least one edge).
    pub fn new(
        db: &Database,
        q: &Query,
        lmask: TableMask,
        rmask: TableMask,
        est: &dyn CardEstimator,
        w: OpWeights,
    ) -> Self {
        let out = est.cardinality(q, lmask.union(rmask)).max(0.0);
        let key_of = |e: &JoinEdge, side_mask: TableMask| -> (usize, usize) {
            if side_mask.contains(e.left_qt) {
                (e.left_qt, e.left_col)
            } else {
                (e.right_qt, e.right_col)
            }
        };
        let mut keys = Vec::new();
        for e in &q.joins {
            if e.crosses(lmask, rmask) {
                keys.push((key_of(e, lmask), key_of(e, rmask)));
            }
        }
        // The right-side crossing keys are exactly the (qt, col)
        // endpoints an index nested loop would drive through.
        let (nl_indexable, inner_base) = match (rmask.count(), rmask.lowest()) {
            (1, Some(qt)) => {
                let tid = q.tables[qt].table;
                let indexable = keys
                    .iter()
                    .any(|&(_, (kqt, col))| kqt == qt && db.catalog().is_indexed(tid, col));
                (indexable, db.stats(tid).num_rows as f64)
            }
            _ => (false, 0.0),
        };
        Self {
            out,
            keys,
            merge_sorted: std::cell::OnceCell::new(),
            nl_indexable,
            nl_log_inner: (inner_base + 2.0).log2(),
            lsort: std::cell::Cell::new((f64::NAN, 0.0)),
            rsort: std::cell::Cell::new((f64::NAN, 0.0)),
            w,
        }
    }

    /// `sort_tuple_log · rows · log2(rows + 2)`, memoized on `cell` for
    /// repeated row counts.
    #[inline]
    fn sort_work(&self, cell: &std::cell::Cell<(f64, f64)>, rows: f64) -> f64 {
        let (cached_rows, cached) = cell.get();
        if cached_rows == rows {
            return cached;
        }
        let v = self.w.sort_tuple_log * rows * (rows + 2.0).log2();
        cell.set((rows, v));
        v
    }

    /// `(work, out_rows)` of joining children with summaries `lc`/`rc`
    /// under `op`; `work` includes both children. `right_index_scan`
    /// says whether the right child is literally an index-scan leaf
    /// (the one per-candidate fact the masks cannot carry).
    pub fn work_out(
        &self,
        op: JoinOp,
        lc: &SubtreeCost,
        rc: &SubtreeCost,
        right_index_scan: bool,
    ) -> (f64, f64) {
        let w = &self.w;
        let out = self.out;
        let work = match op {
            JoinOp::Hash => {
                // Build on the right, probe from the left.
                w.hash_build * rc.out_rows + w.hash_probe * lc.out_rows + w.output_tuple * out
            }
            JoinOp::Merge => {
                // Sort either input unless it already streams in the
                // join key's order.
                let l_sorted = self.keys.iter().any(|(lk, _)| lc.sorted_on.contains(lk));
                let r_sorted = self.keys.iter().any(|(_, rk)| rc.sorted_on.contains(rk));
                let mut wk = w.merge_tuple * (lc.out_rows + rc.out_rows) + w.output_tuple * out;
                if !l_sorted {
                    wk += self.sort_work(&self.lsort, lc.out_rows);
                }
                if !r_sorted {
                    wk += self.sort_work(&self.rsort, rc.out_rows);
                }
                wk
            }
            JoinOp::NestLoop => {
                // Index nested loop when the inner (right) side is a
                // base *index* scan with an index on some join column.
                // A sequential inner forces re-scanning the table per
                // outer tuple — the quadratic case.
                if self.nl_indexable && right_index_scan {
                    w.nl_index_outer * lc.out_rows * self.nl_log_inner
                        + w.index_tuple * out
                        + w.output_tuple * out
                } else {
                    // The disaster case: quadratic pairing.
                    w.nl_pair * lc.out_rows * rc.out_rows + w.output_tuple * out
                }
            }
        };
        // Checked accumulation: saturate to COST_CEILING instead of
        // letting `inf`/NaN escape into Pareto dominance comparisons.
        (clamp_cost(lc.work + rc.work + work), out)
    }
}

impl crate::PairCoster for JoinPairCost {
    fn work_out(
        &self,
        op: JoinOp,
        lc: &SubtreeCost,
        rc: &SubtreeCost,
        right_index_scan: bool,
    ) -> (f64, f64) {
        JoinPairCost::work_out(self, op, lc, rc, right_index_scan)
    }

    /// Merge joins emit the session's key list, nested loops preserve
    /// the outer (left) input's order, hash joins none.
    fn order_source(&self, op: JoinOp) -> crate::OrderSource {
        match op {
            JoinOp::Hash => crate::OrderSource::Empty,
            JoinOp::NestLoop => crate::OrderSource::LeftInput,
            JoinOp::Merge => crate::OrderSource::Pair,
        }
    }

    fn pair_sorted_on(&self) -> &[(usize, usize)] {
        self.merge_sorted.get_or_init(|| {
            self.keys
                .iter()
                .map(|&(lk, _)| lk)
                .chain(self.keys.iter().map(|&(_, rk)| rk))
                .collect()
        })
    }
}

/// Computes the physical cost of `plan`, appending per-node reports to
/// `nodes` (pass `None` when only the total is needed).
///
/// Cardinalities come from `est`, which may be an estimator or the true
/// oracle. Index availability comes from the catalog in `db`. Defined
/// entirely in terms of [`scan_cost`] and [`join_cost`].
pub fn physical_cost(
    db: &Database,
    query: &Query,
    plan: &Plan,
    est: &dyn CardEstimator,
    w: &OpWeights,
    mut nodes: Option<&mut Vec<NodeCost>>,
) -> f64 {
    fn rec(
        db: &Database,
        q: &Query,
        p: &Plan,
        est: &dyn CardEstimator,
        w: &OpWeights,
        nodes: &mut Option<&mut Vec<NodeCost>>,
    ) -> SubtreeCost {
        match p {
            Plan::Scan { qt, op } => {
                let qt = *qt as usize;
                let s = scan_cost(db, q, qt, *op, est, w);
                if let Some(ns) = nodes.as_deref_mut() {
                    ns.push(NodeCost {
                        mask: TableMask::single(qt),
                        work: s.work,
                        out_rows: s.out_rows,
                    });
                }
                s
            }
            Plan::Join {
                op,
                left,
                right,
                mask,
                ..
            } => {
                let l = rec(db, q, left, est, w, nodes);
                let r = rec(db, q, right, est, w, nodes);
                let s = join_cost(db, q, *op, left, &l, right, &r, est, w);
                if let Some(ns) = nodes.as_deref_mut() {
                    ns.push(NodeCost {
                        mask: *mask,
                        work: s.work - l.work - r.work,
                        out_rows: s.out_rows,
                    });
                }
                s
            }
        }
    }
    rec(db, query, plan, est, w, &mut nodes).work
}

#[cfg(test)]
mod tests {
    use super::*;
    use balsa_query::{JoinEdge, QueryTable};
    use balsa_storage::{mini_imdb, DataGenConfig};

    fn fixture() -> (Database, Query) {
        let db = mini_imdb(DataGenConfig {
            scale: 0.1,
            ..Default::default()
        });
        let t = db.catalog().table_id("title").unwrap();
        let mc = db.catalog().table_id("movie_companies").unwrap();
        let movie_id = db.catalog().table(mc).column_id("movie_id").unwrap();
        let q = Query {
            id: 0,
            name: "j".into(),
            template: 0,
            tables: vec![
                QueryTable {
                    table: t,
                    alias: "t".into(),
                },
                QueryTable {
                    table: mc,
                    alias: "mc".into(),
                },
            ],
            joins: vec![JoinEdge {
                left_qt: 0,
                left_col: 0,
                right_qt: 1,
                right_col: movie_id,
            }],
            filters: vec![],
        };
        (db, q)
    }

    fn est(db: &Database) -> balsa_card::HistogramEstimator<'_> {
        balsa_card::HistogramEstimator::new(db)
    }

    #[test]
    fn unindexed_nl_is_disastrous() {
        let (db, q) = fixture();
        let w = OpWeights::postgres_like();
        let e = est(&db);
        let hash = Plan::join(
            JoinOp::Hash,
            Plan::scan(0, ScanOp::Seq),
            Plan::scan(1, ScanOp::Seq),
        );
        // Sequential inner: re-scan per outer tuple -> quadratic pairing.
        let nl_bad = Plan::join(
            JoinOp::NestLoop,
            Plan::scan(1, ScanOp::Seq),
            Plan::scan(0, ScanOp::Seq),
        );
        // Index scan on title.id (the PK the edge targets): index NL.
        let nl_good = Plan::join(
            JoinOp::NestLoop,
            Plan::scan(1, ScanOp::Seq),
            Plan::scan(0, ScanOp::Index),
        );
        let ch = physical_cost(&db, &q, &hash, &e, &w, None);
        let cb = physical_cost(&db, &q, &nl_bad, &e, &w, None);
        let cg = physical_cost(&db, &q, &nl_good, &e, &w, None);
        assert!(ch > 0.0 && cb > 0.0 && cg > 0.0);
        assert!(
            cg * 10.0 < cb,
            "index NL {cg} should be far below pair NL {cb}"
        );
        assert!(ch * 10.0 < cb, "hash {ch} should be far below pair NL {cb}");
    }

    #[test]
    fn index_nl_requires_seq_vs_index_distinction() {
        let (db, q) = fixture();
        let w = OpWeights::postgres_like();
        let e = est(&db);
        // Right side = mc.movie_id (indexed FK): index scan enables cheap NL.
        let nl_idx = Plan::join(
            JoinOp::NestLoop,
            Plan::scan(0, ScanOp::Seq),
            Plan::scan(1, ScanOp::Index),
        );
        let nl_seq = Plan::join(
            JoinOp::NestLoop,
            Plan::scan(0, ScanOp::Seq),
            Plan::scan(1, ScanOp::Seq),
        );
        let ci = physical_cost(&db, &q, &nl_idx, &e, &w, None);
        let cs = physical_cost(&db, &q, &nl_seq, &e, &w, None);
        // Only the index-scan inner qualifies as an index NL; the
        // sequential inner pays the quadratic pairing cost.
        let quad = w.nl_pair
            * db.stats(q.tables[0].table).num_rows as f64
            * db.stats(q.tables[1].table).num_rows as f64;
        assert!(ci < quad / 4.0, "index NL {ci} vs quad {quad}");
        assert!(cs >= quad, "seq NL {cs} should pay quadratic {quad}");
    }

    #[test]
    fn merge_join_sort_elision_with_index_scans() {
        let (db, q) = fixture();
        let w = OpWeights::postgres_like();
        let e = est(&db);
        let merge_sorted = Plan::join(
            JoinOp::Merge,
            Plan::scan(0, ScanOp::Index),
            Plan::scan(1, ScanOp::Index),
        );
        let merge_unsorted = Plan::join(
            JoinOp::Merge,
            Plan::scan(0, ScanOp::Seq),
            Plan::scan(1, ScanOp::Seq),
        );
        let cs = physical_cost(&db, &q, &merge_sorted, &e, &w, None);
        let cu = physical_cost(&db, &q, &merge_unsorted, &e, &w, None);
        assert!(cs < cu, "pre-sorted merge {cs} should beat sort-merge {cu}");
    }

    #[test]
    fn per_node_reports_cover_all_nodes() {
        let (db, q) = fixture();
        let w = OpWeights::postgres_like();
        let e = est(&db);
        let p = Plan::join(
            JoinOp::Hash,
            Plan::scan(0, ScanOp::Seq),
            Plan::scan(1, ScanOp::Seq),
        );
        let mut nodes = Vec::new();
        let total = physical_cost(&db, &q, &p, &e, &w, Some(&mut nodes));
        assert_eq!(nodes.len(), 3);
        let sum: f64 = nodes.iter().map(|n| n.work).sum();
        assert!((sum - total).abs() < 1e-6);
    }

    #[test]
    fn cost_clamp_saturates_and_is_identity_below_ceiling() {
        // Identity below the ceiling — bit-for-bit.
        for v in [0.0, 1.0, -7.5, 1e9, 1e29, COST_CEILING] {
            assert_eq!(clamp_cost(v).to_bits(), v.to_bits(), "clamp changed {v}");
        }
        // Saturation for everything pathological.
        for v in [f64::INFINITY, f64::NAN, 2e30, f64::MAX] {
            assert_eq!(clamp_cost(v), COST_CEILING, "clamp missed {v}");
        }
        // The independent verifier (balsa-query, below this crate)
        // duplicates the ceiling; keep the two constants locked.
        assert_eq!(COST_CEILING, balsa_query::verify::VERIFY_COST_CEILING);
    }

    #[test]
    fn poisoned_child_work_cannot_escape_as_nan() {
        let (db, q) = fixture();
        let w = OpWeights::postgres_like();
        let e = est(&db);
        let ctx = JoinPairCost::new(&db, &q, TableMask::single(0), TableMask::single(1), &e, w);
        for poison in [f64::NAN, f64::INFINITY] {
            let lc = SubtreeCost {
                work: poison,
                out_rows: 10.0,
                sorted_on: Vec::new(),
            };
            let rc = SubtreeCost {
                work: 5.0,
                out_rows: 10.0,
                sorted_on: Vec::new(),
            };
            for op in JoinOp::ALL {
                let (work, _) = ctx.work_out(op, &lc, &rc, false);
                assert_eq!(
                    work, COST_CEILING,
                    "{op:?} with poisoned child {poison} must saturate"
                );
            }
        }
    }

    #[test]
    fn engine_profiles_differ() {
        let (db, q) = fixture();
        let e = est(&db);
        let p = Plan::join(
            JoinOp::Hash,
            Plan::scan(0, ScanOp::Seq),
            Plan::scan(1, ScanOp::Seq),
        );
        let pg = physical_cost(&db, &q, &p, &e, &OpWeights::postgres_like(), None);
        let cd = physical_cost(&db, &q, &p, &e, &OpWeights::commdb_like(), None);
        assert_ne!(pg, cd);
    }
}
