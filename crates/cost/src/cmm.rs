//! The `C_mm` in-memory cost model (Leis et al. 2015, §3.3 of the paper).
//!
//! `C_mm` refines `C_out` with a little physical knowledge tuned for
//! main-memory settings: hash joins pay for building, index nested loops
//! pay a per-lookup penalty `τ`, and scans are cheap. We implement the
//! published formulas:
//!
//! ```text
//! C_mm(scan T)         = τ·|T|
//! C_mm(HJ)             = |out| + C(T1) + C(T2) + |T2|          (build right)
//! C_mm(INL)            = |out| + C(T1) + τ·|T1|·max(log|T2|,1)
//! C_mm(MJ/NL fallback) = C_out-style |out| + children
//! ```
//!
//! with `τ = 0.2` (the paper's value for the lookup/scan cost ratio).

use crate::{CostModel, SubtreeCost};
use balsa_card::CardEstimator;
use balsa_query::{JoinOp, Plan, Query, TableMask};

/// Lookup/scan cost ratio.
const TAU: f64 = 0.2;

/// The `C_mm` cost model.
#[derive(Debug, Clone, Copy, Default)]
pub struct CmmModel;

impl CmmModel {
    fn rec(&self, q: &Query, p: &Plan, est: &dyn CardEstimator) -> (f64, f64) {
        match p {
            Plan::Scan { qt, .. } => {
                let rows = est.cardinality(q, TableMask::single(*qt as usize));
                (TAU * rows, rows)
            }
            Plan::Join {
                op,
                left,
                right,
                mask,
                ..
            } => {
                let (cl, rl) = self.rec(q, left, est);
                let (cr, rr) = self.rec(q, right, est);
                let out = est.cardinality(q, *mask);
                let cost = match op {
                    JoinOp::Hash => out + cl + cr + rr,
                    JoinOp::NestLoop => {
                        // Treated as an index nested loop on the inner.
                        out + cl + TAU * rl * (rr.max(2.0)).log2().max(1.0)
                    }
                    JoinOp::Merge => out + cl + cr + rl + rr,
                };
                (cost, out)
            }
        }
    }

    /// The `C_mm` work of one join given its output cardinality and the
    /// children's summaries — shared by both summary entry points.
    fn join_work(op: JoinOp, out: f64, lc: &SubtreeCost, rc: &SubtreeCost) -> f64 {
        match op {
            JoinOp::Hash => out + lc.work + rc.work + rc.out_rows,
            JoinOp::NestLoop => {
                out + lc.work + TAU * lc.out_rows * (rc.out_rows.max(2.0)).log2().max(1.0)
            }
            JoinOp::Merge => out + lc.work + rc.work + lc.out_rows + rc.out_rows,
        }
    }
}

impl CostModel for CmmModel {
    fn plan_cost(&self, query: &Query, plan: &Plan, est: &dyn CardEstimator) -> f64 {
        self.rec(query, plan, est).0
    }

    fn name(&self) -> &'static str {
        "C_mm"
    }

    fn scan_summary(&self, query: &Query, scan: &Plan, est: &dyn CardEstimator) -> SubtreeCost {
        let rows = est.cardinality(query, scan.mask()).max(0.0);
        SubtreeCost {
            work: TAU * rows,
            out_rows: rows,
            sorted_on: Vec::new(),
        }
    }

    fn join_summary(
        &self,
        query: &Query,
        join: &Plan,
        lc: &SubtreeCost,
        rc: &SubtreeCost,
        est: &dyn CardEstimator,
    ) -> SubtreeCost {
        let out = est.cardinality(query, join.mask()).max(0.0);
        let work = match join {
            Plan::Join { op, .. } => Self::join_work(*op, out, lc, rc),
            Plan::Scan { .. } => TAU * out,
        };
        SubtreeCost {
            work,
            out_rows: out,
            sorted_on: Vec::new(),
        }
    }

    fn join_summary_parts(
        &self,
        query: &Query,
        op: JoinOp,
        left: &std::sync::Arc<Plan>,
        lc: &SubtreeCost,
        right: &std::sync::Arc<Plan>,
        rc: &SubtreeCost,
        est: &dyn CardEstimator,
    ) -> SubtreeCost {
        let out = est
            .cardinality(query, left.mask().union(right.mask()))
            .max(0.0);
        SubtreeCost {
            work: Self::join_work(op, out, lc, rc),
            out_rows: out,
            sorted_on: Vec::new(),
        }
    }

    fn pair_coster<'c>(
        &'c self,
        query: &Query,
        lmask: TableMask,
        rmask: TableMask,
        est: &dyn CardEstimator,
    ) -> Option<Box<dyn crate::PairCoster + 'c>> {
        Some(Box::new(CmmPairCoster {
            out: est.cardinality(query, lmask.union(rmask)).max(0.0),
        }))
    }
}

/// Pair session for `C_mm`: per-operator formulas over one cardinality.
struct CmmPairCoster {
    out: f64,
}

impl crate::PairCoster for CmmPairCoster {
    fn work_out(
        &self,
        op: JoinOp,
        lc: &SubtreeCost,
        rc: &SubtreeCost,
        _right_index_scan: bool,
    ) -> (f64, f64) {
        (CmmModel::join_work(op, self.out, lc, rc), self.out)
    }

    fn order_source(&self, _op: JoinOp) -> crate::OrderSource {
        crate::OrderSource::Empty
    }

    fn pair_sorted_on(&self) -> &[(usize, usize)] {
        &[]
    }

    /// `C_mm`'s nested loop charges the inner side as index lookups —
    /// `rc.work` is absent from the formula — so candidates may cost
    /// *less* than their children's summed work.
    fn child_monotone(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balsa_query::{JoinEdge, QueryTable, ScanOp};

    struct Fixed;
    impl CardEstimator for Fixed {
        fn cardinality(&self, _q: &Query, m: TableMask) -> f64 {
            match m.count() {
                1 => 100.0,
                2 => 50.0,
                _ => 10.0,
            }
        }
        fn base_rows(&self, _q: &Query, _qt: usize) -> f64 {
            100.0
        }
    }

    fn q2() -> Query {
        Query {
            id: 0,
            name: "q".into(),
            template: 0,
            tables: (0..2)
                .map(|i| QueryTable {
                    table: 0,
                    alias: format!("t{i}"),
                })
                .collect(),
            joins: vec![JoinEdge {
                left_qt: 0,
                left_col: 0,
                right_qt: 1,
                right_col: 0,
            }],
            filters: vec![],
        }
    }

    #[test]
    fn cmm_distinguishes_operators() {
        let q = q2();
        let hj = Plan::join(
            JoinOp::Hash,
            Plan::scan(0, ScanOp::Seq),
            Plan::scan(1, ScanOp::Seq),
        );
        let nl = Plan::join(
            JoinOp::NestLoop,
            Plan::scan(0, ScanOp::Seq),
            Plan::scan(1, ScanOp::Seq),
        );
        let ch = CmmModel.plan_cost(&q, &hj, &Fixed);
        let cn = CmmModel.plan_cost(&q, &nl, &Fixed);
        assert_ne!(ch, cn);
    }

    #[test]
    fn cmm_hash_formula() {
        let q = q2();
        let hj = Plan::join(
            JoinOp::Hash,
            Plan::scan(0, ScanOp::Seq),
            Plan::scan(1, ScanOp::Seq),
        );
        // out(50) + scan(20) + scan(20) + build(100)
        let c = CmmModel.plan_cost(&q, &hj, &Fixed);
        assert!((c - 190.0).abs() < 1e-9, "got {c}");
    }
}
