//! The expert (physical) cost model.
//!
//! Mirrors the execution engine's per-operator work formulas exactly, but
//! is driven by whatever [`CardEstimator`] the caller supplies — normally
//! the histogram estimator, which makes this the classical
//! "sophisticated model × imperfect estimates" expert optimizer
//! architecture. It plays two roles in the reproduction:
//!
//! * the cost model inside the **expert optimizer baselines**
//!   (PostgresSim's and CommDbSim's own optimizers), and
//! * the **"Expert Simulator"** ablation of §8.3.1, where Balsa
//!   bootstraps from it instead of `C_out`.

use crate::physical::{join_cost, physical_cost, scan_cost, OpWeights, SubtreeCost};
use crate::CostModel;
use balsa_card::CardEstimator;
use balsa_query::{JoinOp, Plan, Query};
use balsa_storage::Database;
use std::sync::Arc;

/// Full physical cost model over an engine's operator weights.
#[derive(Clone)]
pub struct ExpertCostModel {
    db: Arc<Database>,
    weights: OpWeights,
}

impl ExpertCostModel {
    /// Creates the model for a database and operator-weight profile.
    pub fn new(db: Arc<Database>, weights: OpWeights) -> Self {
        Self { db, weights }
    }

    /// The operator weights in use.
    pub fn weights(&self) -> &OpWeights {
        &self.weights
    }
}

impl CostModel for ExpertCostModel {
    fn plan_cost(&self, query: &Query, plan: &Plan, est: &dyn CardEstimator) -> f64 {
        physical_cost(&self.db, query, plan, est, &self.weights, None)
    }

    fn name(&self) -> &'static str {
        "expert"
    }

    fn scan_summary(&self, query: &Query, scan: &Plan, est: &dyn CardEstimator) -> SubtreeCost {
        match scan {
            Plan::Scan { qt, op } => {
                scan_cost(&self.db, query, *qt as usize, *op, est, &self.weights)
            }
            Plan::Join { .. } => SubtreeCost {
                work: self.plan_cost(query, scan, est),
                out_rows: est.cardinality(query, scan.mask()).max(0.0),
                sorted_on: Vec::new(),
            },
        }
    }

    fn join_summary(
        &self,
        query: &Query,
        join: &Plan,
        lc: &SubtreeCost,
        rc: &SubtreeCost,
        est: &dyn CardEstimator,
    ) -> SubtreeCost {
        match join {
            Plan::Join {
                op, left, right, ..
            } => join_cost(
                &self.db,
                query,
                *op,
                left,
                lc,
                right,
                rc,
                est,
                &self.weights,
            ),
            Plan::Scan { .. } => self.scan_summary(query, join, est),
        }
    }

    fn join_summary_parts(
        &self,
        query: &Query,
        op: JoinOp,
        left: &Arc<Plan>,
        lc: &SubtreeCost,
        right: &Arc<Plan>,
        rc: &SubtreeCost,
        est: &dyn CardEstimator,
    ) -> SubtreeCost {
        join_cost(&self.db, query, op, left, lc, right, rc, est, &self.weights)
    }

    fn pair_coster<'c>(
        &'c self,
        query: &Query,
        lmask: balsa_query::TableMask,
        rmask: balsa_query::TableMask,
        est: &dyn CardEstimator,
    ) -> Option<Box<dyn crate::PairCoster + 'c>> {
        Some(Box::new(crate::physical::JoinPairCost::new(
            &self.db,
            query,
            lmask,
            rmask,
            est,
            self.weights,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balsa_card::HistogramEstimator;
    use balsa_query::{JoinEdge, JoinOp, QueryTable, ScanOp};
    use balsa_storage::{mini_imdb, DataGenConfig};

    #[test]
    fn expert_model_is_physical() {
        let db = Arc::new(mini_imdb(DataGenConfig {
            scale: 0.1,
            ..Default::default()
        }));
        let t = db.catalog().table_id("title").unwrap();
        let ci = db.catalog().table_id("cast_info").unwrap();
        let movie_id = db.catalog().table(ci).column_id("movie_id").unwrap();
        let q = Query {
            id: 0,
            name: "q".into(),
            template: 0,
            tables: vec![
                QueryTable {
                    table: t,
                    alias: "t".into(),
                },
                QueryTable {
                    table: ci,
                    alias: "ci".into(),
                },
            ],
            joins: vec![JoinEdge {
                left_qt: 0,
                left_col: 0,
                right_qt: 1,
                right_col: movie_id,
            }],
            filters: vec![],
        };
        let model = ExpertCostModel::new(db.clone(), OpWeights::postgres_like());
        let est = HistogramEstimator::new(&db);
        let hash = Plan::join(
            JoinOp::Hash,
            Plan::scan(0, ScanOp::Seq),
            Plan::scan(1, ScanOp::Seq),
        );
        let nl = Plan::join(
            JoinOp::NestLoop,
            Plan::scan(1, ScanOp::Seq),
            Plan::scan(0, ScanOp::Seq),
        );
        let ch = model.plan_cost(&q, &hash, &est);
        let cn = model.plan_cost(&q, &nl, &est);
        assert!(ch > 0.0);
        // title on the right via its PK is indexed, so this NL is an index
        // NL; both should be reasonable but differ from hash.
        assert_ne!(ch, cn);
        assert_eq!(model.name(), "expert");
    }
}
