//! The `C_out` minimal cost model (§3.1).
//!
//! ```text
//! C_out(T) = |T|                                 if T is a table/selection
//! C_out(T) = |T| + C_out(T1) + C_out(T2)         if T = T1 ⋈ T2
//! ```
//!
//! `|T|` is the estimated cardinality (filters applied). The model is
//! *logical only*: physical join and scan operators are ignored
//! (footnote 4 of the paper — "Balsa enumerates physical plans for
//! C_out, which will ignore the differences between physical joins/scans
//! and treat them as logical operators").

use crate::{CostModel, SubtreeCost};
use balsa_card::CardEstimator;
use balsa_query::{Plan, Query};

/// The minimal, environment-agnostic simulator cost model.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoutModel;

impl CostModel for CoutModel {
    fn plan_cost(&self, query: &Query, plan: &Plan, est: &dyn CardEstimator) -> f64 {
        let mut total = 0.0;
        plan.visit(&mut |node| {
            total += est.cardinality(query, node.mask()).max(0.0);
        });
        total
    }

    fn name(&self) -> &'static str {
        "C_out"
    }

    fn scan_summary(&self, query: &Query, scan: &Plan, est: &dyn CardEstimator) -> SubtreeCost {
        let rows = est.cardinality(query, scan.mask()).max(0.0);
        SubtreeCost {
            work: rows,
            out_rows: rows,
            sorted_on: Vec::new(),
        }
    }

    fn join_summary(
        &self,
        query: &Query,
        join: &Plan,
        lc: &SubtreeCost,
        rc: &SubtreeCost,
        est: &dyn CardEstimator,
    ) -> SubtreeCost {
        // C_out(T1 ⋈ T2) = |out| + C_out(T1) + C_out(T2).
        let out = est.cardinality(query, join.mask()).max(0.0);
        SubtreeCost {
            work: out + lc.work + rc.work,
            out_rows: out,
            sorted_on: Vec::new(),
        }
    }

    fn join_summary_parts(
        &self,
        query: &Query,
        _op: balsa_query::JoinOp,
        left: &std::sync::Arc<Plan>,
        lc: &SubtreeCost,
        right: &std::sync::Arc<Plan>,
        rc: &SubtreeCost,
        est: &dyn CardEstimator,
    ) -> SubtreeCost {
        let out = est
            .cardinality(query, left.mask().union(right.mask()))
            .max(0.0);
        SubtreeCost {
            work: out + lc.work + rc.work,
            out_rows: out,
            sorted_on: Vec::new(),
        }
    }

    fn pair_coster<'c>(
        &'c self,
        query: &Query,
        lmask: balsa_query::TableMask,
        rmask: balsa_query::TableMask,
        est: &dyn CardEstimator,
    ) -> Option<Box<dyn crate::PairCoster + 'c>> {
        Some(Box::new(CoutPairCoster {
            out: est.cardinality(query, lmask.union(rmask)).max(0.0),
        }))
    }
}

/// Pair session for `C_out`: the output cardinality is the whole story.
struct CoutPairCoster {
    out: f64,
}

impl crate::PairCoster for CoutPairCoster {
    fn work_out(
        &self,
        _op: balsa_query::JoinOp,
        lc: &SubtreeCost,
        rc: &SubtreeCost,
        _right_index_scan: bool,
    ) -> (f64, f64) {
        (self.out + lc.work + rc.work, self.out)
    }

    fn order_source(&self, _op: balsa_query::JoinOp) -> crate::OrderSource {
        crate::OrderSource::Empty
    }

    fn pair_sorted_on(&self) -> &[(usize, usize)] {
        &[]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balsa_query::{JoinEdge, JoinOp, QueryTable, ScanOp, TableMask};

    /// An estimator with fixed per-mask cardinalities.
    struct Fixed;
    impl CardEstimator for Fixed {
        fn cardinality(&self, _q: &Query, m: TableMask) -> f64 {
            match m.0 {
                0b001 => 10.0,
                0b010 => 20.0,
                0b100 => 30.0,
                0b011 => 5.0,
                0b111 => 2.0,
                _ => 100.0,
            }
        }
        fn base_rows(&self, _q: &Query, _qt: usize) -> f64 {
            100.0
        }
    }

    fn query3() -> Query {
        Query {
            id: 0,
            name: "q".into(),
            template: 0,
            tables: (0..3)
                .map(|i| QueryTable {
                    table: 0,
                    alias: format!("t{i}"),
                })
                .collect(),
            joins: vec![
                JoinEdge {
                    left_qt: 0,
                    left_col: 0,
                    right_qt: 1,
                    right_col: 0,
                },
                JoinEdge {
                    left_qt: 1,
                    left_col: 0,
                    right_qt: 2,
                    right_col: 0,
                },
            ],
            filters: vec![],
        }
    }

    #[test]
    fn cout_sums_all_node_cardinalities() {
        let q = query3();
        let p = Plan::join(
            JoinOp::Hash,
            Plan::join(
                JoinOp::Hash,
                Plan::scan(0, ScanOp::Seq),
                Plan::scan(1, ScanOp::Seq),
            ),
            Plan::scan(2, ScanOp::Seq),
        );
        // 10 + 20 + 30 (leaves) + 5 (0b011) + 2 (0b111)
        let c = CoutModel.plan_cost(&q, &p, &Fixed);
        assert!((c - 67.0).abs() < 1e-9, "got {c}");
    }

    #[test]
    fn cout_ignores_physical_operators() {
        let q = query3();
        let mk = |j1: JoinOp, j2: JoinOp, s: ScanOp| {
            Plan::join(
                j1,
                Plan::join(j2, Plan::scan(0, s), Plan::scan(1, s)),
                Plan::scan(2, s),
            )
        };
        let a = CoutModel.plan_cost(&q, &mk(JoinOp::Hash, JoinOp::Hash, ScanOp::Seq), &Fixed);
        let b = CoutModel.plan_cost(
            &q,
            &mk(JoinOp::NestLoop, JoinOp::Merge, ScanOp::Index),
            &Fixed,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn cout_prefers_smaller_intermediates() {
        // Joining (0,1) first (card 5) must beat joining (1,2) first (card 100).
        let q = query3();
        let good = Plan::join(
            JoinOp::Hash,
            Plan::join(
                JoinOp::Hash,
                Plan::scan(0, ScanOp::Seq),
                Plan::scan(1, ScanOp::Seq),
            ),
            Plan::scan(2, ScanOp::Seq),
        );
        let bad = Plan::join(
            JoinOp::Hash,
            Plan::join(
                JoinOp::Hash,
                Plan::scan(1, ScanOp::Seq),
                Plan::scan(2, ScanOp::Seq),
            ),
            Plan::scan(0, ScanOp::Seq),
        );
        let cg = CoutModel.plan_cost(&q, &good, &Fixed);
        let cb = CoutModel.plan_cost(&q, &bad, &Fixed);
        assert!(cg < cb);
    }
}
