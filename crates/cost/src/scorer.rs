//! The generic plan-scoring layer.
//!
//! Everything that ranks partial plans — the expert cost model, the
//! `C_out` simulator, and `balsa-learn`'s learned value model — does so
//! through one interface: a [`PlanScorer`] opens a per-query
//! [`QueryScorer`] session, and the session assigns every scan leaf and
//! every candidate join a [`ScoredTree`]. Beam search (and any other
//! consumer of the shared candidate space) is written against this
//! interface only, so the same inference procedure runs on classical
//! costs, on simulated `C_out`, or on a learned value function — the
//! paper's architecture, where the value network "slots into exactly the
//! position" of the cost model (§5).
//!
//! [`CostScorer`] adapts any [`CostModel`] + [`CardEstimator`] pair to
//! the interface: the beam score is simply the compositional subtree
//! work, memoizing subset cardinalities per query.

use crate::{CostModel, OrderSource, SubtreeCost};
use balsa_card::{CardEstimator, MemoEstimator};
use balsa_query::{Plan, Query, ScanOp};
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// Opaque per-subtree state a scorer threads through join composition —
/// the child hook that lets incremental scorers (feature-channel
/// composition, tree-convolution activations) score a candidate join in
/// O(1) instead of re-walking the subtree.
pub type SubtreeExt = Arc<dyn Any + Send + Sync>;

/// A scored subtree: the scorer's ranking value plus the compositional
/// physical summary threaded through joins.
#[derive(Clone, Default)]
pub struct ScoredTree {
    /// The beam-ranking score; lower is better. Cost scorers report the
    /// subtree's work, learned scorers a predicted latency.
    pub score: f64,
    /// Compositional physical summary (output rows, orders, work) that
    /// child-aware scorers use when composing joins.
    pub sc: SubtreeCost,
    /// Scorer-private incremental state, handed back as the `lc`/`rc`
    /// children of [`QueryScorer::score_join`]. `None` for scorers that
    /// score from scratch.
    pub ext: Option<SubtreeExt>,
}

impl fmt::Debug for ScoredTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScoredTree")
            .field("score", &self.score)
            .field("sc", &self.sc)
            .field("ext", &self.ext.as_ref().map(|_| "<opaque>"))
            .finish()
    }
}

/// A source of plan scores. `Send + Sync` so training loops can share
/// one scorer across planner instances.
pub trait PlanScorer: Send + Sync {
    /// Scorer name for planner reports, e.g. `"expert"` or
    /// `"learned/linear"`.
    fn name(&self) -> String;

    /// Opens a scoring session for one query. Sessions own per-query
    /// caches (memoized cardinalities, query-level feature channels).
    fn for_query<'q>(&'q self, query: &'q Query) -> Box<dyn QueryScorer + 'q>;
}

/// One candidate join submitted to a batched scoring call
/// ([`QueryScorer::score_join_batch`]): the join plan plus its
/// children's scored subtrees.
pub struct JoinCandidate<'a> {
    /// The candidate join (a [`Plan::Join`]).
    pub join: &'a Plan,
    /// The left child's scored subtree.
    pub lc: &'a ScoredTree,
    /// The right child's scored subtree.
    pub rc: &'a ScoredTree,
}

/// A per-query scoring session. `Sync` so one session can score
/// candidate batches across worker threads (the beam's intra-query
/// parallel expansion); implementations guard their per-query caches.
pub trait QueryScorer: Sync {
    /// Scores a scan leaf (a [`Plan::Scan`]).
    fn score_scan(&self, scan: &Plan) -> ScoredTree;

    /// Scores `join` (a [`Plan::Join`]) given its children's scored
    /// subtrees. Must agree with what scoring the same tree from its
    /// leaves upward produces.
    fn score_join(&self, join: &Plan, lc: &ScoredTree, rc: &ScoredTree) -> ScoredTree;

    /// Scores a whole batch of candidate joins in one pass, appending
    /// one [`ScoredTree`] per candidate to `out` in input order.
    ///
    /// This is the beam's per-level hot path: scorers that can amortize
    /// work across candidates (the learned value models batch their
    /// forward passes into filters × batch matrix products) override
    /// it. The contract is **bit-identity**: the appended trees must
    /// equal calling [`QueryScorer::score_join`] per candidate, in
    /// order — batching is a layout change, never a math change.
    fn score_join_batch(&self, cands: &[JoinCandidate<'_>], out: &mut Vec<ScoredTree>) {
        out.extend(cands.iter().map(|c| self.score_join(c.join, c.lc, c.rc)));
    }
}

/// Adapts a [`CostModel`] over a [`CardEstimator`] to the [`PlanScorer`]
/// interface: the score of a subtree is its compositional cost-model
/// work.
pub struct CostScorer<'a> {
    cost: &'a dyn CostModel,
    est: &'a dyn CardEstimator,
}

impl<'a> CostScorer<'a> {
    /// Scores plans by `cost` evaluated on `est`'s cardinalities.
    pub fn new(cost: &'a dyn CostModel, est: &'a dyn CardEstimator) -> Self {
        Self { cost, est }
    }
}

impl PlanScorer for CostScorer<'_> {
    fn name(&self) -> String {
        self.cost.name().to_string()
    }

    fn for_query<'q>(&'q self, query: &'q Query) -> Box<dyn QueryScorer + 'q> {
        Box::new(CostQueryScorer {
            cost: self.cost,
            query,
            memo: MemoEstimator::new(self.est),
        })
    }
}

struct CostQueryScorer<'q> {
    cost: &'q dyn CostModel,
    query: &'q Query,
    memo: MemoEstimator<'q>,
}

impl QueryScorer for CostQueryScorer<'_> {
    fn score_scan(&self, scan: &Plan) -> ScoredTree {
        let sc = self.cost.scan_summary(self.query, scan, &self.memo);
        ScoredTree {
            score: sc.work,
            sc,
            ext: None,
        }
    }

    fn score_join(&self, join: &Plan, lc: &ScoredTree, rc: &ScoredTree) -> ScoredTree {
        let sc = self
            .cost
            .join_summary(self.query, join, &lc.sc, &rc.sc, &self.memo);
        ScoredTree {
            score: sc.work,
            sc,
            ext: None,
        }
    }

    /// Batched expert costing: the beam's candidate stream arrives in
    /// long runs sharing one `(left mask, right mask)` pair (every
    /// operator and scan variant of one join move is contiguous), so
    /// each run is costed through one [`crate::PairCoster`] session —
    /// the pair's cardinality, join keys, and order semantics are
    /// resolved once per run instead of once per candidate, exactly the
    /// amortization the DP enumerator already enjoys. Sessions agree
    /// bit-for-bit with [`CostModel::join_summary`] by contract, so
    /// this stays a layout change, never a math change (tested).
    fn score_join_batch(&self, cands: &[JoinCandidate<'_>], out: &mut Vec<ScoredTree>) {
        let mut i = 0;
        while i < cands.len() {
            let Plan::Join { left, right, .. } = cands[i].join else {
                // Scorers only see joins here; defer the panic to the
                // per-candidate path for a uniform error.
                out.push(self.score_join(cands[i].join, cands[i].lc, cands[i].rc));
                i += 1;
                continue;
            };
            let (lm, rm) = (left.mask(), right.mask());
            let mut j = i + 1;
            while j < cands.len() {
                let Plan::Join {
                    left: l2,
                    right: r2,
                    ..
                } = cands[j].join
                else {
                    break;
                };
                if l2.mask() != lm || r2.mask() != rm {
                    break;
                }
                j += 1;
            }
            match self.cost.pair_coster(self.query, lm, rm, &self.memo) {
                Some(coster) => {
                    for c in &cands[i..j] {
                        let Plan::Join { op, right, .. } = c.join else {
                            unreachable!("run members are joins");
                        };
                        let right_index_scan = matches!(
                            &**right,
                            Plan::Scan {
                                op: ScanOp::Index,
                                ..
                            }
                        );
                        let (work, out_rows) =
                            coster.work_out(*op, &c.lc.sc, &c.rc.sc, right_index_scan);
                        let sorted_on = match coster.order_source(*op) {
                            OrderSource::Empty => Vec::new(),
                            OrderSource::LeftInput => c.lc.sc.sorted_on.clone(),
                            OrderSource::Pair => coster.pair_sorted_on().to_vec(),
                        };
                        out.push(ScoredTree {
                            score: work,
                            sc: SubtreeCost {
                                work,
                                out_rows,
                                sorted_on,
                            },
                            ext: None,
                        });
                    }
                }
                // Models without a pair session keep the per-candidate
                // path — same results, no amortization.
                None => out.extend(
                    cands[i..j]
                        .iter()
                        .map(|c| self.score_join(c.join, c.lc, c.rc)),
                ),
            }
            i = j;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoutModel;
    use balsa_query::{JoinEdge, JoinOp, QueryTable, ScanOp, TableMask};

    struct Fixed;
    impl CardEstimator for Fixed {
        fn cardinality(&self, _q: &Query, m: TableMask) -> f64 {
            match m.0 {
                0b01 => 10.0,
                0b10 => 20.0,
                _ => 5.0,
            }
        }
        fn base_rows(&self, _q: &Query, _qt: usize) -> f64 {
            100.0
        }
    }

    fn query2() -> Query {
        Query {
            id: 0,
            name: "q".into(),
            template: 0,
            tables: (0..2)
                .map(|i| QueryTable {
                    table: 0,
                    alias: format!("t{i}"),
                })
                .collect(),
            joins: vec![JoinEdge {
                left_qt: 0,
                left_col: 0,
                right_qt: 1,
                right_col: 0,
            }],
            filters: vec![],
        }
    }

    #[test]
    fn cost_scorer_matches_plan_cost() {
        let q = query2();
        let model = CoutModel;
        let scorer = CostScorer::new(&model, &Fixed);
        assert_eq!(scorer.name(), "C_out");
        let session = scorer.for_query(&q);
        let a = Plan::scan(0, ScanOp::Seq);
        let b = Plan::scan(1, ScanOp::Seq);
        let sa = session.score_scan(&a);
        let sb = session.score_scan(&b);
        let j = Plan::join(JoinOp::Hash, a, b);
        let sj = session.score_join(&j, &sa, &sb);
        let direct = model.plan_cost(&q, &j, &Fixed);
        assert!((sj.score - direct).abs() < 1e-9, "{} vs {direct}", sj.score);
        assert_eq!(sj.sc.out_rows, 5.0);
    }

    /// The batched expert path (per-run [`crate::PairCoster`] sessions)
    /// must be bit-identical to per-candidate `score_join` — the beam
    /// relies on this to stay bit-identical under re-chunking.
    #[test]
    fn batched_expert_scoring_is_bit_identical() {
        use crate::{ExpertCostModel, OpWeights};
        use balsa_card::HistogramEstimator;
        use balsa_query::workloads::job_workload;
        use balsa_query::JoinOp;
        use balsa_storage::{mini_imdb, DataGenConfig};

        let db = Arc::new(mini_imdb(DataGenConfig {
            scale: 0.02,
            ..Default::default()
        }));
        let w = job_workload(db.catalog(), 5);
        let est = HistogramEstimator::new(&db);
        for model in [
            ExpertCostModel::new(db.clone(), OpWeights::postgres_like()),
            ExpertCostModel::new(db.clone(), OpWeights::commdb_like()),
        ] {
            let scorer = CostScorer::new(&model, &est);
            let q = w.queries.iter().find(|q| q.num_tables() >= 3).unwrap();
            let session = scorer.for_query(q);
            // Candidate stream in the beam's layout: for each join edge,
            // both orientations, all operators contiguous — runs of a
            // shared (left mask, right mask) pair with run boundaries
            // between them.
            let mut joins: Vec<(Arc<Plan>, ScoredTree, ScoredTree)> = Vec::new();
            for e in &q.joins {
                for (l, r) in [(e.left_qt, e.right_qt), (e.right_qt, e.left_qt)] {
                    let lp = Plan::scan(l, ScanOp::Seq);
                    let rp = Plan::scan(r, ScanOp::Seq);
                    let (ls, rs) = (session.score_scan(&lp), session.score_scan(&rp));
                    for &op in &JoinOp::ALL {
                        joins.push((
                            Plan::join(op, lp.clone(), rp.clone()),
                            ls.clone(),
                            rs.clone(),
                        ));
                    }
                }
            }
            let cands: Vec<JoinCandidate<'_>> = joins
                .iter()
                .map(|(j, l, r)| JoinCandidate {
                    join: j,
                    lc: l,
                    rc: r,
                })
                .collect();
            let mut batched = Vec::new();
            session.score_join_batch(&cands, &mut batched);
            assert_eq!(batched.len(), cands.len());
            for (c, b) in cands.iter().zip(&batched) {
                let single = session.score_join(c.join, c.lc, c.rc);
                assert_eq!(b.score.to_bits(), single.score.to_bits(), "{}", c.join);
                assert_eq!(b.sc.work.to_bits(), single.sc.work.to_bits());
                assert_eq!(b.sc.out_rows.to_bits(), single.sc.out_rows.to_bits());
                assert_eq!(b.sc.sorted_on, single.sc.sorted_on, "{}", c.join);
            }
        }
    }
}
