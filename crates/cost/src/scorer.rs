//! The generic plan-scoring layer.
//!
//! Everything that ranks partial plans — the expert cost model, the
//! `C_out` simulator, and `balsa-learn`'s learned value model — does so
//! through one interface: a [`PlanScorer`] opens a per-query
//! [`QueryScorer`] session, and the session assigns every scan leaf and
//! every candidate join a [`ScoredTree`]. Beam search (and any other
//! consumer of the shared candidate space) is written against this
//! interface only, so the same inference procedure runs on classical
//! costs, on simulated `C_out`, or on a learned value function — the
//! paper's architecture, where the value network "slots into exactly the
//! position" of the cost model (§5).
//!
//! [`CostScorer`] adapts any [`CostModel`] + [`CardEstimator`] pair to
//! the interface: the beam score is simply the compositional subtree
//! work, memoizing subset cardinalities per query.

use crate::{CostModel, SubtreeCost};
use balsa_card::{CardEstimator, MemoEstimator};
use balsa_query::{Plan, Query};
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// Opaque per-subtree state a scorer threads through join composition —
/// the child hook that lets incremental scorers (feature-channel
/// composition, tree-convolution activations) score a candidate join in
/// O(1) instead of re-walking the subtree.
pub type SubtreeExt = Arc<dyn Any + Send + Sync>;

/// A scored subtree: the scorer's ranking value plus the compositional
/// physical summary threaded through joins.
#[derive(Clone, Default)]
pub struct ScoredTree {
    /// The beam-ranking score; lower is better. Cost scorers report the
    /// subtree's work, learned scorers a predicted latency.
    pub score: f64,
    /// Compositional physical summary (output rows, orders, work) that
    /// child-aware scorers use when composing joins.
    pub sc: SubtreeCost,
    /// Scorer-private incremental state, handed back as the `lc`/`rc`
    /// children of [`QueryScorer::score_join`]. `None` for scorers that
    /// score from scratch.
    pub ext: Option<SubtreeExt>,
}

impl fmt::Debug for ScoredTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScoredTree")
            .field("score", &self.score)
            .field("sc", &self.sc)
            .field("ext", &self.ext.as_ref().map(|_| "<opaque>"))
            .finish()
    }
}

/// A source of plan scores. `Send + Sync` so training loops can share
/// one scorer across planner instances.
pub trait PlanScorer: Send + Sync {
    /// Scorer name for planner reports, e.g. `"expert"` or
    /// `"learned/linear"`.
    fn name(&self) -> String;

    /// Opens a scoring session for one query. Sessions own per-query
    /// caches (memoized cardinalities, query-level feature channels).
    fn for_query<'q>(&'q self, query: &'q Query) -> Box<dyn QueryScorer + 'q>;
}

/// One candidate join submitted to a batched scoring call
/// ([`QueryScorer::score_join_batch`]): the join plan plus its
/// children's scored subtrees.
pub struct JoinCandidate<'a> {
    /// The candidate join (a [`Plan::Join`]).
    pub join: &'a Plan,
    /// The left child's scored subtree.
    pub lc: &'a ScoredTree,
    /// The right child's scored subtree.
    pub rc: &'a ScoredTree,
}

/// A per-query scoring session. `Sync` so one session can score
/// candidate batches across worker threads (the beam's intra-query
/// parallel expansion); implementations guard their per-query caches.
pub trait QueryScorer: Sync {
    /// Scores a scan leaf (a [`Plan::Scan`]).
    fn score_scan(&self, scan: &Plan) -> ScoredTree;

    /// Scores `join` (a [`Plan::Join`]) given its children's scored
    /// subtrees. Must agree with what scoring the same tree from its
    /// leaves upward produces.
    fn score_join(&self, join: &Plan, lc: &ScoredTree, rc: &ScoredTree) -> ScoredTree;

    /// Scores a whole batch of candidate joins in one pass, appending
    /// one [`ScoredTree`] per candidate to `out` in input order.
    ///
    /// This is the beam's per-level hot path: scorers that can amortize
    /// work across candidates (the learned value models batch their
    /// forward passes into filters × batch matrix products) override
    /// it. The contract is **bit-identity**: the appended trees must
    /// equal calling [`QueryScorer::score_join`] per candidate, in
    /// order — batching is a layout change, never a math change.
    fn score_join_batch(&self, cands: &[JoinCandidate<'_>], out: &mut Vec<ScoredTree>) {
        out.extend(cands.iter().map(|c| self.score_join(c.join, c.lc, c.rc)));
    }
}

/// Adapts a [`CostModel`] over a [`CardEstimator`] to the [`PlanScorer`]
/// interface: the score of a subtree is its compositional cost-model
/// work.
pub struct CostScorer<'a> {
    cost: &'a dyn CostModel,
    est: &'a dyn CardEstimator,
}

impl<'a> CostScorer<'a> {
    /// Scores plans by `cost` evaluated on `est`'s cardinalities.
    pub fn new(cost: &'a dyn CostModel, est: &'a dyn CardEstimator) -> Self {
        Self { cost, est }
    }
}

impl PlanScorer for CostScorer<'_> {
    fn name(&self) -> String {
        self.cost.name().to_string()
    }

    fn for_query<'q>(&'q self, query: &'q Query) -> Box<dyn QueryScorer + 'q> {
        Box::new(CostQueryScorer {
            cost: self.cost,
            query,
            memo: MemoEstimator::new(self.est),
        })
    }
}

struct CostQueryScorer<'q> {
    cost: &'q dyn CostModel,
    query: &'q Query,
    memo: MemoEstimator<'q>,
}

impl QueryScorer for CostQueryScorer<'_> {
    fn score_scan(&self, scan: &Plan) -> ScoredTree {
        let sc = self.cost.scan_summary(self.query, scan, &self.memo);
        ScoredTree {
            score: sc.work,
            sc,
            ext: None,
        }
    }

    fn score_join(&self, join: &Plan, lc: &ScoredTree, rc: &ScoredTree) -> ScoredTree {
        let sc = self
            .cost
            .join_summary(self.query, join, &lc.sc, &rc.sc, &self.memo);
        ScoredTree {
            score: sc.work,
            sc,
            ext: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoutModel;
    use balsa_query::{JoinEdge, JoinOp, QueryTable, ScanOp, TableMask};

    struct Fixed;
    impl CardEstimator for Fixed {
        fn cardinality(&self, _q: &Query, m: TableMask) -> f64 {
            match m.0 {
                0b01 => 10.0,
                0b10 => 20.0,
                _ => 5.0,
            }
        }
        fn base_rows(&self, _q: &Query, _qt: usize) -> f64 {
            100.0
        }
    }

    fn query2() -> Query {
        Query {
            id: 0,
            name: "q".into(),
            template: 0,
            tables: (0..2)
                .map(|i| QueryTable {
                    table: 0,
                    alias: format!("t{i}"),
                })
                .collect(),
            joins: vec![JoinEdge {
                left_qt: 0,
                left_col: 0,
                right_qt: 1,
                right_col: 0,
            }],
            filters: vec![],
        }
    }

    #[test]
    fn cost_scorer_matches_plan_cost() {
        let q = query2();
        let model = CoutModel;
        let scorer = CostScorer::new(&model, &Fixed);
        assert_eq!(scorer.name(), "C_out");
        let session = scorer.for_query(&q);
        let a = Plan::scan(0, ScanOp::Seq);
        let b = Plan::scan(1, ScanOp::Seq);
        let sa = session.score_scan(&a);
        let sb = session.score_scan(&b);
        let j = Plan::join(JoinOp::Hash, a, b);
        let sj = session.score_join(&j, &sa, &sb);
        let direct = model.plan_cost(&q, &j, &Fixed);
        assert!((sj.score - direct).abs() < 1e-9, "{} vs {direct}", sj.score);
        assert_eq!(sj.sc.out_rows, 5.0);
    }
}
