//! # balsa-query
//!
//! Query intermediate representation, physical plan IR, and workload
//! generators for the balsa-rs reproduction of *Balsa: Learning a Query
//! Optimizer Without Expert Demonstrations* (SIGMOD 2022).
//!
//! * [`ir`] — select-project-join query blocks over a
//!   [`balsa_storage::Catalog`]: aliased table references, equi-join
//!   edges, and base-table filter predicates. Queries expose their join
//!   graph through [`ir::TableMask`] bitmask operations, which the DP
//!   enumerator, beam search, and executor all share.
//! * [`plan`] — physical plan trees: scans (sequential / index) and binary
//!   joins (hash / merge / nested-loop), with structural fingerprints used
//!   by the plan cache, exploration visit counts, and experience buffers.
//! * [`workloads`] — template-based generators reproducing the paper's
//!   three workloads (§8.1): a 113-query JOB-like workload over mini-IMDb
//!   with the paper's train/test splits, a 24-query out-of-distribution
//!   Ext-JOB-like workload, and a TPC-H-like workload (templates
//!   3,5,7,8,12,13,14 for training and 10 for testing).

pub mod ir;
pub mod plan;
pub mod sql;
pub mod verify;
pub mod workloads;

pub use ir::{CmpOp, Filter, JoinEdge, Predicate, Query, QueryId, QueryTable, TableMask};
pub use plan::{JoinOp, Plan, PlanShape, ScanOp, TreeTensor};
pub use verify::{verify_plan, VerifyError};
pub use workloads::{Split, Workload, WorkloadKind};
