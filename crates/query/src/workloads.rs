//! Workload generators reproducing the paper's three benchmarks (§8.1).
//!
//! * **JOB-like**: 113 queries instantiated from 33 join templates over the
//!   mini-IMDb schema (3–16 joins, averaging ≈8), with variants differing
//!   in filter constants — the structure of the real Join Order Benchmark.
//! * **Ext-JOB-like**: 24 queries from 8 *disjoint* templates — the
//!   out-of-distribution generalization workload of §8.5.
//! * **TPC-H-like**: 10 queries per template for templates
//!   3, 5, 7, 8, 12, 13, 14 (train) and 10 (test), matching the paper's
//!   footnote 9 (70 train / 10 test).
//!
//! Splits mirror §8.1: a seeded **random split** (94/19), the **slow
//! split** (19 slowest test queries under the expert), and the
//! **slow-template split** (4 slowest templates held out).

use crate::ir::{CmpOp, Filter, JoinEdge, Predicate, Query, QueryTable};
use balsa_storage::Catalog;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which benchmark a workload instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// JOB-like over mini-IMDb.
    Job,
    /// Ext-JOB-like over mini-IMDb (disjoint templates).
    ExtJob,
    /// TPC-H-like over mini-TPC-H.
    TpcH,
}

/// A set of queries over one database.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark kind.
    pub kind: WorkloadKind,
    /// The queries, ids equal to their position.
    pub queries: Vec<Query>,
}

impl Workload {
    /// Queries grouped by template id: `(template, query indices)`.
    pub fn by_template(&self) -> Vec<(u32, Vec<usize>)> {
        let mut groups: Vec<(u32, Vec<usize>)> = Vec::new();
        for (i, q) in self.queries.iter().enumerate() {
            match groups.iter_mut().find(|(t, _)| *t == q.template) {
                Some((_, v)) => v.push(i),
                None => groups.push((q.template, vec![i])),
            }
        }
        groups
    }
}

/// A train/test split over a workload, stored as query indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Split {
    /// Training query indices.
    pub train: Vec<usize>,
    /// Held-out test query indices.
    pub test: Vec<usize>,
}

impl Split {
    /// Seeded random split with `test_count` held-out queries
    /// (the paper's "Random Split": 94 train / 19 test on JOB).
    pub fn random(n: usize, test_count: usize, seed: u64) -> Self {
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5911F7);
        for i in (1..idx.len()).rev() {
            let j = rng.random_range(0..=i);
            idx.swap(i, j);
        }
        let test = idx.split_off(n - test_count.min(n));
        let mut train = idx;
        train.sort_unstable();
        let mut test = test;
        test.sort_unstable();
        Self { train, test }
    }

    /// Slow split: the `test_count` slowest queries (by the provided
    /// per-query runtimes, e.g. expert latencies) become the test set.
    pub fn slowest(runtimes: &[f64], test_count: usize) -> Self {
        let mut idx: Vec<usize> = (0..runtimes.len()).collect();
        idx.sort_by(|&a, &b| runtimes[b].partial_cmp(&runtimes[a]).expect("finite"));
        let mut test: Vec<usize> = idx.iter().take(test_count).copied().collect();
        let mut train: Vec<usize> = idx.iter().skip(test_count).copied().collect();
        train.sort_unstable();
        test.sort_unstable();
        Self { train, test }
    }

    /// Slow-template split (§8.5): hold out all queries of the
    /// `n_templates` templates with the largest summed runtime.
    pub fn slowest_templates(workload: &Workload, runtimes: &[f64], n_templates: usize) -> Self {
        let mut groups = workload.by_template();
        groups.sort_by(|a, b| {
            let ra: f64 = a.1.iter().map(|&i| runtimes[i]).sum();
            let rb: f64 = b.1.iter().map(|&i| runtimes[i]).sum();
            rb.partial_cmp(&ra).expect("finite")
        });
        let mut test = Vec::new();
        let mut train = Vec::new();
        for (gi, (_, qs)) in groups.iter().enumerate() {
            if gi < n_templates {
                test.extend(qs.iter().copied());
            } else {
                train.extend(qs.iter().copied());
            }
        }
        train.sort_unstable();
        test.sort_unstable();
        Self { train, test }
    }

    /// Split holding out every query of the given templates.
    pub fn by_templates(workload: &Workload, test_templates: &[u32]) -> Self {
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (i, q) in workload.queries.iter().enumerate() {
            if test_templates.contains(&q.template) {
                test.push(i);
            } else {
                train.push(i);
            }
        }
        Self { train, test }
    }
}

// ---------------------------------------------------------------------------
// Query construction DSL
// ---------------------------------------------------------------------------

struct Qb<'a> {
    catalog: &'a Catalog,
    tables: Vec<QueryTable>,
    joins: Vec<JoinEdge>,
    filters: Vec<Filter>,
}

impl<'a> Qb<'a> {
    fn new(catalog: &'a Catalog) -> Self {
        Self {
            catalog,
            tables: Vec::new(),
            joins: Vec::new(),
            filters: Vec::new(),
        }
    }

    fn has(&self, alias: &str) -> bool {
        self.tables.iter().any(|t| t.alias == alias)
    }

    fn qt(&self, alias: &str) -> usize {
        self.tables
            .iter()
            .position(|t| t.alias == alias)
            .unwrap_or_else(|| panic!("alias {alias} not in query"))
    }

    fn col(&self, alias: &str, col: &str) -> (usize, usize) {
        let qt = self.qt(alias);
        let tid = self.tables[qt].table;
        let cid = self
            .catalog
            .table(tid)
            .column_id(col)
            .unwrap_or_else(|| panic!("{}.{col} missing", self.catalog.table(tid).name));
        (qt, cid)
    }

    /// Adds `table AS alias` if not present.
    fn table(&mut self, table: &str, alias: &str) {
        if self.has(alias) {
            return;
        }
        let tid = self
            .catalog
            .table_id(table)
            .unwrap_or_else(|| panic!("unknown table {table}"));
        self.tables.push(QueryTable {
            table: tid,
            alias: alias.to_string(),
        });
    }

    /// Adds an equi-join edge `a.ac = b.bc` (idempotent).
    fn join(&mut self, a: &str, ac: &str, b: &str, bc: &str) {
        let (la, ca) = self.col(a, ac);
        let (lb, cb) = self.col(b, bc);
        let edge = JoinEdge {
            left_qt: la,
            left_col: ca,
            right_qt: lb,
            right_col: cb,
        };
        if !self.joins.contains(&edge) {
            self.joins.push(edge);
        }
    }

    fn filter(&mut self, alias: &str, col: &str, pred: Predicate) {
        let (qt, cid) = self.col(alias, col);
        self.filters.push(Filter { qt, col: cid, pred });
    }

    fn build(self, id: u32, name: String, template: u32) -> Query {
        let q = Query {
            id,
            name,
            template,
            tables: self.tables,
            joins: self.joins,
            filters: self.filters,
        };
        q.validate(self.catalog)
            .unwrap_or_else(|e| panic!("template bug in {}: {e}", q.name));
        q
    }
}

/// Join-graph "arms" around the central `title AS t` reference. Arms are
/// composable and idempotent; higher arms pull in their prerequisites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arm {
    /// `kind_type kt` via `t.kind_id`.
    Kt,
    /// `movie_companies mc`.
    Mc,
    /// `mc` + `company_name cn`.
    McCn,
    /// `mc` + `cn` + `company_type ct`.
    McFull,
    /// `cast_info ci`.
    Ci,
    /// `ci` + `name n`.
    CiN,
    /// `ci` + `n` + `role_type rt` + `char_name chn`.
    CiFull,
    /// `movie_info mi`.
    Mi,
    /// `mi` + `info_type it1`.
    MiFull,
    /// `movie_info_idx mi_idx`.
    Mii,
    /// `mi_idx` + `info_type it2`.
    MiiFull,
    /// `movie_keyword mk`.
    Mk,
    /// `mk` + `keyword k`.
    MkFull,
    /// `movie_link ml` + `link_type lt`.
    MlFull,
    /// `ml` + second `title t2` (self-join through movie_link).
    MlT2,
    /// `complete_cast cc` + `comp_cast_type cct1`.
    CcFull,
    /// `cc` + second `comp_cast_type cct2` on status_id.
    Cc2,
    /// `aka_name an` via `n` (requires a cast arm).
    AkaN,
    /// `aka_title at`.
    AkaT,
    /// `person_info pi` + `info_type it3` via `n` (requires a cast arm).
    Pi,
}

fn apply_arm(qb: &mut Qb, arm: Arm) {
    use Arm::*;
    match arm {
        Kt => {
            qb.table("kind_type", "kt");
            qb.join("t", "kind_id", "kt", "id");
        }
        Mc => {
            qb.table("movie_companies", "mc");
            qb.join("mc", "movie_id", "t", "id");
        }
        McCn => {
            apply_arm(qb, Mc);
            qb.table("company_name", "cn");
            qb.join("mc", "company_id", "cn", "id");
        }
        McFull => {
            apply_arm(qb, McCn);
            qb.table("company_type", "ct");
            qb.join("mc", "company_type_id", "ct", "id");
        }
        Ci => {
            qb.table("cast_info", "ci");
            qb.join("ci", "movie_id", "t", "id");
        }
        CiN => {
            apply_arm(qb, Ci);
            qb.table("name", "n");
            qb.join("ci", "person_id", "n", "id");
        }
        CiFull => {
            apply_arm(qb, CiN);
            qb.table("role_type", "rt");
            qb.join("ci", "role_id", "rt", "id");
            qb.table("char_name", "chn");
            qb.join("ci", "person_role_id", "chn", "id");
        }
        Mi => {
            qb.table("movie_info", "mi");
            qb.join("mi", "movie_id", "t", "id");
        }
        MiFull => {
            apply_arm(qb, Mi);
            qb.table("info_type", "it1");
            qb.join("mi", "info_type_id", "it1", "id");
        }
        Mii => {
            qb.table("movie_info_idx", "mi_idx");
            qb.join("mi_idx", "movie_id", "t", "id");
        }
        MiiFull => {
            apply_arm(qb, Mii);
            qb.table("info_type", "it2");
            qb.join("mi_idx", "info_type_id", "it2", "id");
        }
        Mk => {
            qb.table("movie_keyword", "mk");
            qb.join("mk", "movie_id", "t", "id");
        }
        MkFull => {
            apply_arm(qb, Mk);
            qb.table("keyword", "k");
            qb.join("mk", "keyword_id", "k", "id");
        }
        MlFull => {
            qb.table("movie_link", "ml");
            qb.join("ml", "movie_id", "t", "id");
            qb.table("link_type", "lt");
            qb.join("ml", "link_type_id", "lt", "id");
        }
        MlT2 => {
            if !qb.has("ml") {
                qb.table("movie_link", "ml");
                qb.join("ml", "movie_id", "t", "id");
            }
            qb.table("title", "t2");
            qb.join("ml", "linked_movie_id", "t2", "id");
        }
        CcFull => {
            qb.table("complete_cast", "cc");
            qb.join("cc", "movie_id", "t", "id");
            qb.table("comp_cast_type", "cct1");
            qb.join("cc", "subject_id", "cct1", "id");
        }
        Cc2 => {
            apply_arm(qb, CcFull);
            qb.table("comp_cast_type", "cct2");
            qb.join("cc", "status_id", "cct2", "id");
        }
        AkaN => {
            qb.table("aka_name", "an");
            qb.join("an", "person_id", "n", "id");
        }
        AkaT => {
            qb.table("aka_title", "at");
            qb.join("at", "movie_id", "t", "id");
        }
        Pi => {
            qb.table("person_info", "pi");
            qb.join("pi", "person_id", "n", "id");
            qb.table("info_type", "it3");
            qb.join("pi", "info_type_id", "it3", "id");
        }
    }
}

/// Filter slots whose constants are drawn per-variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fs {
    /// `t.production_year >= Y`, Y ∈ [1980, 2014].
    YearGe,
    /// `t.production_year BETWEEN Y AND Y+W`.
    YearBetween,
    /// `t.kind_id = K` (weighted toward common kinds).
    KindEq,
    /// `cn.country_code = C` (zipf-weighted).
    CountryEq,
    /// Correlated pair: `it1.id = T AND mi.info BETWEEN T*100 AND T*100+19`.
    /// True selectivity is high given the type; an independence-assuming
    /// estimator multiplies the marginals and underestimates badly.
    MiInfoCorr,
    /// Anti-correlated pair: the `mi.info` band belongs to a *different*
    /// info type, so the true result is (near-)empty while the estimator
    /// predicts plenty of rows.
    MiInfoAnti,
    /// `k.keyword IN (...)` with 3–8 random keywords.
    KwIn,
    /// `n.gender = G`.
    GenderEq,
    /// `ct.kind = 0` (production companies) or a rarer kind.
    CtEq,
    /// `rt.role = R` (zipf-ish).
    RoleEq,
    /// `mi_idx.info >= R` (a "rating above" filter) plus `it2.id` pinned
    /// to a rating type.
    RatingGe,
    /// `lt.link = L`.
    LtEq,
    /// `cct1.kind = K`.
    CctEq,
    /// `mc.note < X`.
    McNote,
    /// `ci.note = X`.
    CiNote,
    /// `n.name_pcode_cf = P` (very selective equality).
    PcodeEq,
    /// `t.season_nr >= S` (selects episodes; NULLs drop out).
    SeasonGe,
    /// `t2.production_year >= Y` (for the self-join arm).
    T2YearGe,
}

fn apply_filter(qb: &mut Qb, fs: Fs, rng: &mut SmallRng) {
    use Predicate::*;
    match fs {
        Fs::YearGe => {
            let y = rng.random_range(1980..2015i64);
            qb.filter("t", "production_year", Cmp(CmpOp::Ge, y));
        }
        Fs::YearBetween => {
            let y = rng.random_range(1950..2010i64);
            let w = rng.random_range(3..25i64);
            qb.filter("t", "production_year", Between(y, y + w));
        }
        Fs::KindEq => {
            let k = if rng.random_bool(0.5) {
                // the common kinds in the generator
                *[0i64, 6].get(rng.random_range(0..2usize)).unwrap()
            } else {
                rng.random_range(0..7i64)
            };
            qb.filter("t", "kind_id", Cmp(CmpOp::Eq, k));
        }
        Fs::CountryEq => {
            let c = rng.random_range(0..8i64);
            qb.filter("cn", "country_code", Cmp(CmpOp::Eq, c));
        }
        Fs::MiInfoCorr => {
            let ty = rng.random_range(0..15i64);
            qb.filter("it1", "id", Cmp(CmpOp::Eq, ty));
            qb.filter("mi", "info", Between(ty * 100, ty * 100 + 19));
        }
        Fs::MiInfoAnti => {
            let ty = rng.random_range(0..10i64);
            let other = ty + 20 + rng.random_range(0..20i64);
            qb.filter("it1", "id", Cmp(CmpOp::Eq, ty));
            qb.filter("mi", "info", Between(other * 100, other * 100 + 19));
        }
        Fs::KwIn => {
            let n = rng.random_range(3..=8usize);
            let mut vals: Vec<i64> = (0..n).map(|_| rng.random_range(0..1500i64)).collect();
            vals.sort_unstable();
            vals.dedup();
            qb.filter("k", "keyword", InList(vals));
        }
        Fs::GenderEq => {
            let g = i64::from(rng.random_bool(0.3));
            qb.filter("n", "gender", Cmp(CmpOp::Eq, g));
        }
        Fs::CtEq => {
            let k = if rng.random_bool(0.6) {
                0
            } else {
                rng.random_range(1..4i64)
            };
            qb.filter("ct", "kind", Cmp(CmpOp::Eq, k));
        }
        Fs::RoleEq => {
            let r = rng.random_range(0..6i64);
            qb.filter("rt", "role", Cmp(CmpOp::Eq, r));
        }
        Fs::RatingGe => {
            let r = rng.random_range(40..95i64);
            qb.filter("mi_idx", "info", Cmp(CmpOp::Ge, r));
            let ty = 99 + rng.random_range(0..4i64);
            qb.filter("it2", "id", Cmp(CmpOp::Eq, ty));
        }
        Fs::LtEq => {
            let l = rng.random_range(0..18i64);
            qb.filter("lt", "link", Cmp(CmpOp::Eq, l));
        }
        Fs::CctEq => {
            let k = rng.random_range(0..4i64);
            qb.filter("cct1", "kind", Cmp(CmpOp::Eq, k));
        }
        Fs::McNote => {
            let x = rng.random_range(5..25i64);
            qb.filter("mc", "note", Cmp(CmpOp::Lt, x));
        }
        Fs::CiNote => {
            let x = rng.random_range(0..50i64);
            qb.filter("ci", "note", Cmp(CmpOp::Eq, x));
        }
        Fs::PcodeEq => {
            let p = rng.random_range(0..500i64);
            qb.filter("n", "name_pcode_cf", Cmp(CmpOp::Eq, p));
        }
        Fs::SeasonGe => {
            let s = rng.random_range(2..15i64);
            qb.filter("t", "season_nr", Cmp(CmpOp::Ge, s));
        }
        Fs::T2YearGe => {
            let y = rng.random_range(1980..2015i64);
            qb.filter("t2", "production_year", Cmp(CmpOp::Ge, y));
        }
    }
}

struct TemplateSpec {
    arms: &'static [Arm],
    filters: &'static [Fs],
}

/// The 33 JOB-like templates. Table counts (incl. `t`) range 4–14 with
/// an average of ≈8 joins, matching §8.1.
const JOB_TEMPLATES: &[TemplateSpec] = {
    use Arm::*;
    use Fs::*;
    &[
        // -- small (4-5 tables) --
        TemplateSpec {
            arms: &[McFull],
            filters: &[CountryEq, CtEq, YearGe],
        },
        TemplateSpec {
            arms: &[MkFull, Kt],
            filters: &[KwIn, KindEq],
        },
        TemplateSpec {
            arms: &[MiFull, Kt],
            filters: &[MiInfoCorr, KindEq, YearBetween],
        },
        TemplateSpec {
            arms: &[MiiFull, Kt],
            filters: &[RatingGe, KindEq],
        },
        TemplateSpec {
            arms: &[CiN, Kt],
            filters: &[GenderEq, KindEq, CiNote, YearGe],
        },
        TemplateSpec {
            arms: &[McCn, Mk],
            filters: &[CountryEq, McNote, YearGe],
        },
        // -- medium (5-7 tables) --
        TemplateSpec {
            arms: &[McCn, MkFull],
            filters: &[KwIn, CountryEq, YearBetween],
        },
        TemplateSpec {
            arms: &[MkFull, MiFull],
            filters: &[KwIn, MiInfoCorr, YearGe],
        },
        TemplateSpec {
            arms: &[MiFull, MiiFull],
            filters: &[MiInfoCorr, RatingGe, YearBetween],
        },
        TemplateSpec {
            arms: &[McFull, MiFull],
            filters: &[CtEq, MiInfoCorr, YearBetween],
        },
        TemplateSpec {
            arms: &[CiN, MkFull],
            filters: &[KwIn, GenderEq, CiNote],
        },
        TemplateSpec {
            arms: &[CiN, Pi, AkaN],
            filters: &[PcodeEq, GenderEq, YearBetween],
        },
        TemplateSpec {
            arms: &[McFull, MlFull],
            filters: &[LtEq, CountryEq, YearGe],
        },
        TemplateSpec {
            arms: &[CiN, MiFull],
            filters: &[GenderEq, MiInfoCorr, YearGe],
        },
        TemplateSpec {
            arms: &[McCn, MiiFull, Kt],
            filters: &[CountryEq, RatingGe, KindEq],
        },
        TemplateSpec {
            arms: &[MkFull, CcFull],
            filters: &[KwIn, CctEq, YearGe],
        },
        // -- large (7-9 tables) --
        TemplateSpec {
            arms: &[CiFull, McCn],
            filters: &[RoleEq, CountryEq, CiNote],
        },
        TemplateSpec {
            arms: &[CiFull, CcFull],
            filters: &[CctEq, RoleEq, CiNote, YearGe],
        },
        TemplateSpec {
            arms: &[McFull, MiFull, MiiFull],
            filters: &[CtEq, MiInfoCorr, RatingGe, YearBetween],
        },
        TemplateSpec {
            arms: &[CiFull, MkFull],
            filters: &[KwIn, RoleEq, GenderEq],
        },
        TemplateSpec {
            arms: &[CiN, McCn, MkFull],
            filters: &[KwIn, CountryEq, GenderEq, YearBetween],
        },
        TemplateSpec {
            arms: &[McFull, MlFull, Kt],
            filters: &[LtEq, CtEq, KindEq, YearGe],
        },
        TemplateSpec {
            arms: &[CiN, AkaN, McCn, Kt],
            filters: &[CountryEq, GenderEq, KindEq],
        },
        TemplateSpec {
            arms: &[MiFull, MiiFull, MkFull],
            filters: &[MiInfoCorr, RatingGe, KwIn],
        },
        TemplateSpec {
            arms: &[CiN, Pi, MiFull],
            filters: &[GenderEq, MiInfoCorr, YearGe],
        },
        TemplateSpec {
            arms: &[McFull, CcFull, Kt],
            filters: &[CountryEq, CctEq, KindEq, YearBetween],
        },
        // -- extra large (9-14 tables) --
        TemplateSpec {
            arms: &[CiFull, McFull],
            filters: &[RoleEq, CountryEq, CtEq, YearGe],
        },
        TemplateSpec {
            arms: &[CiFull, McCn, MkFull],
            filters: &[KwIn, CountryEq, RoleEq, YearBetween],
        },
        TemplateSpec {
            arms: &[CiFull, MiFull, MiiFull],
            filters: &[RoleEq, MiInfoCorr, RatingGe],
        },
        TemplateSpec {
            arms: &[McFull, MiFull, MiiFull, MkFull],
            filters: &[CtEq, MiInfoCorr, RatingGe, KwIn, YearBetween],
        },
        TemplateSpec {
            arms: &[CiFull, McFull, MkFull],
            filters: &[KwIn, CountryEq, RoleEq, CiNote],
        },
        TemplateSpec {
            arms: &[CiFull, McFull, MiFull, Kt],
            filters: &[CountryEq, MiInfoCorr, KindEq, RoleEq],
        },
        TemplateSpec {
            arms: &[CiFull, McFull, MiFull, MiiFull, MkFull],
            filters: &[CountryEq, MiInfoCorr, RatingGe, KwIn, RoleEq, YearBetween],
        },
    ]
};

/// The 8 Ext-JOB-like templates: entirely different join shapes
/// (title self-joins via `movie_link`, double `comp_cast_type`,
/// `aka_title`, unusual combinations) — none appear in [`JOB_TEMPLATES`].
const EXT_JOB_TEMPLATES: &[TemplateSpec] = {
    use Arm::*;
    use Fs::*;
    &[
        TemplateSpec {
            arms: &[MlFull, MlT2],
            filters: &[LtEq, YearGe, T2YearGe],
        },
        TemplateSpec {
            arms: &[MlT2, MkFull],
            filters: &[KwIn, T2YearGe],
        },
        TemplateSpec {
            arms: &[Cc2, MkFull],
            filters: &[CctEq, KwIn, YearBetween],
        },
        TemplateSpec {
            arms: &[AkaT, MiFull],
            filters: &[MiInfoAnti, YearGe],
        },
        TemplateSpec {
            arms: &[AkaT, McCn, Kt],
            filters: &[CountryEq, KindEq, SeasonGe],
        },
        TemplateSpec {
            arms: &[Cc2, CiN],
            filters: &[CctEq, GenderEq, CiNote],
        },
        TemplateSpec {
            arms: &[MlT2, MiiFull],
            filters: &[RatingGe, T2YearGe, SeasonGe],
        },
        TemplateSpec {
            arms: &[AkaT, Cc2, Kt],
            filters: &[CctEq, KindEq, YearBetween],
        },
    ]
};

fn instantiate(
    catalog: &Catalog,
    spec: &TemplateSpec,
    id: u32,
    name: String,
    template: u32,
    rng: &mut SmallRng,
) -> Query {
    let mut qb = Qb::new(catalog);
    qb.table("title", "t");
    for &arm in spec.arms {
        apply_arm(&mut qb, arm);
    }
    for &fs in spec.filters {
        apply_filter(&mut qb, fs, rng);
    }
    qb.build(id, name, template)
}

/// Generates the 113-query JOB-like workload.
pub fn job_workload(catalog: &Catalog, seed: u64) -> Workload {
    let mut queries = Vec::with_capacity(113);
    let mut id = 0u32;
    for (ti, spec) in JOB_TEMPLATES.iter().enumerate() {
        // 33 templates x 3 variants = 99; the first 14 get a 4th variant
        // to reach JOB's 113 queries.
        let variants = if ti < 14 { 4 } else { 3 };
        for v in 0..variants {
            let mut rng =
                SmallRng::seed_from_u64(seed ^ (0x10B << 32) ^ ((ti as u64) << 8) ^ v as u64);
            let name = format!("job_{:02}{}", ti + 1, (b'a' + v as u8) as char);
            queries.push(instantiate(catalog, spec, id, name, ti as u32, &mut rng));
            id += 1;
        }
    }
    assert_eq!(queries.len(), 113);
    Workload {
        kind: WorkloadKind::Job,
        queries,
    }
}

/// Generates the 24-query Ext-JOB-like workload (template ids continue
/// after the JOB templates so the two sets never collide).
pub fn ext_job_workload(catalog: &Catalog, seed: u64) -> Workload {
    let mut queries = Vec::with_capacity(24);
    let mut id = 0u32;
    for (ti, spec) in EXT_JOB_TEMPLATES.iter().enumerate() {
        for v in 0..3 {
            let mut rng =
                SmallRng::seed_from_u64(seed ^ (0xE87 << 32) ^ ((ti as u64) << 8) ^ v as u64);
            let template = 100 + ti as u32;
            let name = format!("extjob_{:02}{}", ti + 1, (b'a' + v as u8) as char);
            queries.push(instantiate(catalog, spec, id, name, template, &mut rng));
            id += 1;
        }
    }
    assert_eq!(queries.len(), 24);
    Workload {
        kind: WorkloadKind::ExtJob,
        queries,
    }
}

// ---------------------------------------------------------------------------
// TPC-H-like workload
// ---------------------------------------------------------------------------

/// TPC-H template numbers used by the paper (footnote 9).
pub const TPCH_TRAIN_TEMPLATES: &[u32] = &[3, 5, 7, 8, 12, 13, 14];
/// The held-out TPC-H template.
pub const TPCH_TEST_TEMPLATE: u32 = 10;

fn tpch_query(catalog: &Catalog, template: u32, id: u32, v: u32, rng: &mut SmallRng) -> Query {
    let mut qb = Qb::new(catalog);
    use Predicate::*;
    match template {
        3 => {
            // customer, orders, lineitem
            qb.table("customer", "c");
            qb.table("orders", "o");
            qb.table("lineitem", "l");
            qb.join("o", "o_custkey", "c", "c_custkey");
            qb.join("l", "l_orderkey", "o", "o_orderkey");
            let seg = rng.random_range(0..5i64);
            let d = rng.random_range(800..1800i64);
            qb.filter("c", "c_mktsegment", Cmp(CmpOp::Eq, seg));
            qb.filter("o", "o_orderdate", Cmp(CmpOp::Lt, d));
            qb.filter("l", "l_shipdate", Cmp(CmpOp::Gt, d));
        }
        5 => {
            // customer, orders, lineitem, supplier, nation, region
            qb.table("customer", "c");
            qb.table("orders", "o");
            qb.table("lineitem", "l");
            qb.table("supplier", "s");
            qb.table("nation", "na");
            qb.table("region", "r");
            qb.join("o", "o_custkey", "c", "c_custkey");
            qb.join("l", "l_orderkey", "o", "o_orderkey");
            qb.join("l", "l_suppkey", "s", "s_suppkey");
            qb.join("s", "s_nationkey", "na", "n_nationkey");
            qb.join("na", "n_regionkey", "r", "r_regionkey");
            let reg = rng.random_range(0..5i64);
            let d = rng.random_range(0..2192i64);
            qb.filter("r", "r_name", Cmp(CmpOp::Eq, reg));
            qb.filter("o", "o_orderdate", Between(d, d + 365));
        }
        7 => {
            // supplier, lineitem, orders, customer, nation n1, nation n2
            qb.table("supplier", "s");
            qb.table("lineitem", "l");
            qb.table("orders", "o");
            qb.table("customer", "c");
            qb.table("nation", "n1");
            qb.table("nation", "n2");
            qb.join("l", "l_suppkey", "s", "s_suppkey");
            qb.join("l", "l_orderkey", "o", "o_orderkey");
            qb.join("o", "o_custkey", "c", "c_custkey");
            qb.join("s", "s_nationkey", "n1", "n_nationkey");
            qb.join("c", "c_nationkey", "n2", "n_nationkey");
            let a = rng.random_range(0..25i64);
            let b = (a + 1 + rng.random_range(0..24i64)) % 25;
            qb.filter("n1", "n_name", Cmp(CmpOp::Eq, a));
            qb.filter("n2", "n_name", Cmp(CmpOp::Eq, b));
            let d = rng.random_range(0..1800i64);
            qb.filter("l", "l_shipdate", Between(d, d + 730));
        }
        8 => {
            // part, supplier, lineitem, orders, customer, n1, n2, region
            qb.table("part", "p");
            qb.table("supplier", "s");
            qb.table("lineitem", "l");
            qb.table("orders", "o");
            qb.table("customer", "c");
            qb.table("nation", "n1");
            qb.table("nation", "n2");
            qb.table("region", "r");
            qb.join("l", "l_partkey", "p", "p_partkey");
            qb.join("l", "l_suppkey", "s", "s_suppkey");
            qb.join("l", "l_orderkey", "o", "o_orderkey");
            qb.join("o", "o_custkey", "c", "c_custkey");
            qb.join("c", "c_nationkey", "n1", "n_nationkey");
            qb.join("n1", "n_regionkey", "r", "r_regionkey");
            qb.join("s", "s_nationkey", "n2", "n_nationkey");
            let ty = rng.random_range(0..150i64);
            let reg = rng.random_range(0..5i64);
            let d = rng.random_range(0..1461i64);
            qb.filter("p", "p_type", Cmp(CmpOp::Eq, ty));
            qb.filter("r", "r_name", Cmp(CmpOp::Eq, reg));
            qb.filter("o", "o_orderdate", Between(d, d + 730));
        }
        10 => {
            // customer, orders, lineitem, nation
            qb.table("customer", "c");
            qb.table("orders", "o");
            qb.table("lineitem", "l");
            qb.table("nation", "na");
            qb.join("o", "o_custkey", "c", "c_custkey");
            qb.join("l", "l_orderkey", "o", "o_orderkey");
            qb.join("c", "c_nationkey", "na", "n_nationkey");
            let d = rng.random_range(0..2284i64);
            qb.filter("o", "o_orderdate", Between(d, d + 90));
            let sm = rng.random_range(0..7i64);
            qb.filter("l", "l_shipmode", Cmp(CmpOp::Eq, sm));
        }
        12 => {
            // orders, lineitem
            qb.table("orders", "o");
            qb.table("lineitem", "l");
            qb.join("l", "l_orderkey", "o", "o_orderkey");
            let m1 = rng.random_range(0..6i64);
            let d = rng.random_range(0..2192i64);
            qb.filter("l", "l_shipmode", InList(vec![m1, m1 + 1]));
            qb.filter("l", "l_shipdate", Between(d, d + 365));
            let pr = rng.random_range(0..5i64);
            qb.filter("o", "o_orderpriority", Cmp(CmpOp::Eq, pr));
        }
        13 => {
            // customer, orders, nation (3-way; the paper uses SPJ blocks)
            qb.table("customer", "c");
            qb.table("orders", "o");
            qb.table("nation", "na");
            qb.join("o", "o_custkey", "c", "c_custkey");
            qb.join("c", "c_nationkey", "na", "n_nationkey");
            let pr = rng.random_range(0..5i64);
            qb.filter("o", "o_orderpriority", Cmp(CmpOp::Eq, pr));
            let seg = rng.random_range(0..5i64);
            qb.filter("c", "c_mktsegment", Cmp(CmpOp::Eq, seg));
        }
        14 => {
            // lineitem, part
            qb.table("lineitem", "l");
            qb.table("part", "p");
            qb.join("l", "l_partkey", "p", "p_partkey");
            let d = rng.random_range(0..2526i64);
            qb.filter("l", "l_shipdate", Between(d, d + 30));
            let b = rng.random_range(0..25i64);
            qb.filter("p", "p_brand", Cmp(CmpOp::Eq, b));
        }
        other => panic!("unknown TPC-H template {other}"),
    }
    qb.build(id, format!("tpch_q{template:02}_v{v}"), template)
}

/// Generates the TPC-H-like workload: 10 queries per template for the
/// train templates plus template 10 (80 queries total).
pub fn tpch_workload(catalog: &Catalog, seed: u64) -> Workload {
    let mut queries = Vec::new();
    let mut id = 0u32;
    let mut templates: Vec<u32> = TPCH_TRAIN_TEMPLATES.to_vec();
    templates.push(TPCH_TEST_TEMPLATE);
    for &template in &templates {
        for v in 0..10u32 {
            let mut rng =
                SmallRng::seed_from_u64(seed ^ (0x79C << 32) ^ ((template as u64) << 8) ^ v as u64);
            queries.push(tpch_query(catalog, template, id, v, &mut rng));
            id += 1;
        }
    }
    assert_eq!(queries.len(), 80);
    Workload {
        kind: WorkloadKind::TpcH,
        queries,
    }
}

/// The paper's TPC-H split: train on templates 3,5,7,8,12,13,14 and test
/// on template 10 (70 train / 10 test).
pub fn tpch_split(workload: &Workload) -> Split {
    Split::by_templates(workload, &[TPCH_TEST_TEMPLATE])
}

#[cfg(test)]
mod tests {
    use super::*;
    use balsa_storage::{mini_imdb, mini_tpch, DataGenConfig};

    fn imdb() -> balsa_storage::Database {
        mini_imdb(DataGenConfig {
            scale: 0.05,
            ..Default::default()
        })
    }

    #[test]
    fn job_has_113_valid_queries() {
        let db = imdb();
        let w = job_workload(db.catalog(), 7);
        assert_eq!(w.queries.len(), 113);
        for q in &w.queries {
            q.validate(db.catalog()).expect("valid");
            assert!(q.num_tables() >= 4, "{} too small", q.name);
            assert!(q.num_tables() <= 16, "{} too big", q.name);
        }
        // Average join count should be in the paper's ballpark (~8).
        let avg: f64 =
            w.queries.iter().map(|q| q.num_joins() as f64).sum::<f64>() / w.queries.len() as f64;
        assert!((5.0..11.0).contains(&avg), "avg joins {avg}");
    }

    #[test]
    fn job_variants_differ_in_constants_not_structure() {
        let db = imdb();
        let w = job_workload(db.catalog(), 7);
        let groups = w.by_template();
        assert_eq!(groups.len(), 33);
        for (_, idxs) in groups {
            let first = &w.queries[idxs[0]];
            for &i in &idxs[1..] {
                let q = &w.queries[i];
                assert_eq!(q.tables, first.tables);
                assert_eq!(q.joins, first.joins);
            }
            // At least one pair of variants must differ in filters.
            if idxs.len() > 1 {
                let any_diff = idxs[1..]
                    .iter()
                    .any(|&i| w.queries[i].filters != first.filters);
                assert!(any_diff, "variants of {} identical", first.name);
            }
        }
    }

    #[test]
    fn job_deterministic_per_seed() {
        let db = imdb();
        let a = job_workload(db.catalog(), 7);
        let b = job_workload(db.catalog(), 7);
        assert_eq!(a.queries, b.queries);
        let c = job_workload(db.catalog(), 8);
        assert_ne!(a.queries, c.queries);
    }

    #[test]
    fn ext_job_templates_disjoint_from_job() {
        let db = imdb();
        let job = job_workload(db.catalog(), 7);
        let ext = ext_job_workload(db.catalog(), 7);
        assert_eq!(ext.queries.len(), 24);
        for q in &ext.queries {
            q.validate(db.catalog()).expect("valid");
        }
        // Join structures (sets of joined table names) must not repeat JOB's.
        let sig = |q: &Query| {
            let mut t: Vec<&str> = q
                .tables
                .iter()
                .map(|qt| db.catalog().table(qt.table).name.as_str())
                .collect();
            t.sort_unstable();
            t.join(",")
        };
        let job_sigs: std::collections::HashSet<String> = job.queries.iter().map(sig).collect();
        for q in &ext.queries {
            assert!(
                !job_sigs.contains(&sig(q)),
                "Ext-JOB query {} shares a JOB join template",
                q.name
            );
        }
    }

    #[test]
    fn tpch_workload_and_split() {
        let db = mini_tpch(DataGenConfig {
            scale: 0.05,
            ..Default::default()
        });
        let w = tpch_workload(db.catalog(), 7);
        assert_eq!(w.queries.len(), 80);
        for q in &w.queries {
            q.validate(db.catalog()).expect("valid");
        }
        let s = tpch_split(&w);
        assert_eq!(s.train.len(), 70);
        assert_eq!(s.test.len(), 10);
        for &i in &s.test {
            assert_eq!(w.queries[i].template, TPCH_TEST_TEMPLATE);
        }
    }

    #[test]
    fn random_split_is_partition() {
        let s = Split::random(113, 19, 3);
        assert_eq!(s.train.len(), 94);
        assert_eq!(s.test.len(), 19);
        let mut all: Vec<usize> = s.train.iter().chain(s.test.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..113).collect::<Vec<_>>());
        // Deterministic.
        assert_eq!(s, Split::random(113, 19, 3));
        assert_ne!(s, Split::random(113, 19, 4));
    }

    #[test]
    fn slowest_split_picks_slowest() {
        let runtimes = vec![1.0, 9.0, 2.0, 8.0, 3.0];
        let s = Split::slowest(&runtimes, 2);
        assert_eq!(s.test, vec![1, 3]);
        assert_eq!(s.train, vec![0, 2, 4]);
    }

    #[test]
    fn slowest_templates_split() {
        let db = imdb();
        let w = job_workload(db.catalog(), 7);
        // Synthetic runtimes: template 0 queries are slowest.
        let runtimes: Vec<f64> = w
            .queries
            .iter()
            .map(|q| if q.template == 0 { 100.0 } else { 1.0 })
            .collect();
        let s = Split::slowest_templates(&w, &runtimes, 1);
        for &i in &s.test {
            assert_eq!(w.queries[i].template, 0);
        }
        assert_eq!(s.train.len() + s.test.len(), 113);
    }
}
