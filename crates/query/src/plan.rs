//! Physical plan trees.
//!
//! The search space matches §7 of the paper: binary join trees over the
//! query's table references, with physical join operators
//! {hash, merge, nested-loop} and scan operators {sequential, index}.
//! Plans are immutable and shared via `Arc`, so beam-search states can
//! hold thousands of partial plans cheaply.

use crate::ir::TableMask;

use std::fmt;
use std::sync::Arc;

/// Physical scan operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScanOp {
    /// Full sequential scan.
    Seq,
    /// Index scan (only meaningful when an index serves the access).
    Index,
}

/// Physical join operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinOp {
    /// Hash join (build on the right input).
    Hash,
    /// Sort-merge join.
    Merge,
    /// Nested-loop join (uses the right side's index when available).
    NestLoop,
}

impl JoinOp {
    /// All join operators, in a fixed order used by featurization.
    pub const ALL: [JoinOp; 3] = [JoinOp::Hash, JoinOp::Merge, JoinOp::NestLoop];
}

impl ScanOp {
    /// All scan operators, in a fixed order used by featurization.
    pub const ALL: [ScanOp; 2] = [ScanOp::Seq, ScanOp::Index];
}

/// Gross shape of a complete plan (Fig 18 reports these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanShape {
    /// Every join's right input is a base table.
    LeftDeep,
    /// Every join's left input is a base table.
    RightDeep,
    /// Anything else.
    Bushy,
}

/// The binary-tree tensor layout of a plan ([`Plan::tree_tensor`]):
/// `nodes[i]` is the subtree rooted at slot `i` (post-order, root last)
/// and `children[i]` its `(left, right)` slot indices (`None` for scan
/// leaves). Both child indices always precede `i`.
#[derive(Debug, Clone)]
pub struct TreeTensor {
    /// Subtrees in post-order; the last entry is the whole plan.
    pub nodes: Vec<Arc<Plan>>,
    /// Child slots per node, parallel to `nodes`.
    pub children: Vec<Option<(usize, usize)>>,
}

impl TreeTensor {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A tensor is never empty, but clippy likes the pair.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// A physical plan node (scan leaf or binary join).
#[derive(Debug, PartialEq, Eq, Hash)]
pub enum Plan {
    /// Leaf: scan of one query-table.
    Scan {
        /// Index into the query's table list.
        qt: u8,
        /// Physical scan operator.
        op: ScanOp,
    },
    /// Inner node: binary join.
    Join {
        /// Physical join operator.
        op: JoinOp,
        /// Left (outer / probe) input.
        left: Arc<Plan>,
        /// Right (inner / build) input.
        right: Arc<Plan>,
        /// Cached union of input masks.
        mask: TableMask,
        /// Cached structural fingerprint ([`Plan::fingerprint`]),
        /// composed from the children's cached fingerprints at
        /// construction so reading it is O(1) — the beam's dedup and
        /// the engine's plan cache probe it on every candidate.
        fp: u64,
    },
}

impl Plan {
    /// Creates a scan leaf.
    pub fn scan(qt: usize, op: ScanOp) -> Arc<Plan> {
        Arc::new(Plan::Scan { qt: qt as u8, op })
    }

    /// Creates a join node over two disjoint subplans.
    ///
    /// # Panics
    /// Panics (debug) if the input masks overlap.
    pub fn join(op: JoinOp, left: Arc<Plan>, right: Arc<Plan>) -> Arc<Plan> {
        let mask = left.mask().union(right.mask());
        debug_assert!(
            left.mask().disjoint(right.mask()),
            "joining overlapping subplans"
        );
        let fp = join_fingerprint(op, left.fingerprint(), right.fingerprint());
        Arc::new(Plan::Join {
            op,
            left,
            right,
            mask,
            fp,
        })
    }

    /// Set of tables covered by this plan.
    pub fn mask(&self) -> TableMask {
        match self {
            Plan::Scan { qt, .. } => TableMask::single(*qt as usize),
            Plan::Join { mask, .. } => *mask,
        }
    }

    /// Number of tables joined.
    pub fn num_tables(&self) -> u32 {
        self.mask().count()
    }

    /// Number of join nodes.
    pub fn num_joins(&self) -> u32 {
        self.num_tables().saturating_sub(1)
    }

    /// Whether this node is a leaf.
    pub fn is_scan(&self) -> bool {
        matches!(self, Plan::Scan { .. })
    }

    /// Visits every node (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Plan)) {
        f(self);
        if let Plan::Join { left, right, .. } = self {
            left.visit(f);
            right.visit(f);
        }
    }

    /// Collects all subtrees (including leaves and the root), as used by
    /// the data-augmentation procedure of §3.2 ("each subplan T' of T").
    pub fn subplans(self: &Arc<Plan>) -> Vec<Arc<Plan>> {
        let mut out = Vec::new();
        fn rec(p: &Arc<Plan>, out: &mut Vec<Arc<Plan>>) {
            out.push(p.clone());
            if let Plan::Join { left, right, .. } = &**p {
                rec(left, out);
                rec(right, out);
            }
        }
        rec(self, &mut out);
        out
    }

    /// Join subtrees only (no scan leaves).
    pub fn join_subplans(self: &Arc<Plan>) -> Vec<Arc<Plan>> {
        self.subplans()
            .into_iter()
            .filter(|p| !p.is_scan())
            .collect()
    }

    /// All subtrees in post-order (children before parents, left before
    /// right; the root is last). This is the order compositional cost
    /// evaluation visits nodes, so per-subtree observations can be
    /// zipped against it.
    pub fn subtrees_post_order(self: &Arc<Plan>) -> Vec<Arc<Plan>> {
        let mut out = Vec::new();
        fn rec(p: &Arc<Plan>, out: &mut Vec<Arc<Plan>>) {
            if let Plan::Join { left, right, .. } = &**p {
                rec(left, out);
                rec(right, out);
            }
            out.push(p.clone());
        }
        rec(self, &mut out);
        out
    }

    /// Walks the plan in the binary-tree tensor order of §6 — post-order,
    /// children before parents, root last — handing each node to `f`
    /// together with its children's slot indices (`None` for leaves). A
    /// node's slot is its visit position; both child slots always precede
    /// the parent's. This is the traversal primitive behind
    /// [`Plan::tree_tensor`] and per-node featurization.
    pub fn visit_tensor(&self, f: &mut impl FnMut(&Plan, Option<(usize, usize)>)) {
        fn rec<F: FnMut(&Plan, Option<(usize, usize)>)>(
            p: &Plan,
            next: &mut usize,
            f: &mut F,
        ) -> usize {
            let kids = match p {
                Plan::Scan { .. } => None,
                Plan::Join { left, right, .. } => {
                    let l = rec(left, next, f);
                    let r = rec(right, next, f);
                    Some((l, r))
                }
            };
            f(p, kids);
            let slot = *next;
            *next += 1;
            slot
        }
        rec(self, &mut 0, f);
    }

    /// Flattens the plan into the binary-tree tensor layout of §6: all
    /// nodes in post-order (children before parents, root last) plus a
    /// parallel child-index table. This is the structural half of the
    /// tree-convolution input — a consumer attaches per-node feature rows
    /// in the same order and convolves triple filters over
    /// `(node, left, right)` by indexing `children`.
    pub fn tree_tensor(self: &Arc<Plan>) -> TreeTensor {
        let mut children = Vec::new();
        self.visit_tensor(&mut |_, kids| children.push(kids));
        TreeTensor {
            nodes: self.subtrees_post_order(),
            children,
        }
    }

    /// Counts scan operators by kind: `(seq, index)`. Used as a
    /// featurization channel alongside [`Plan::join_op_counts`].
    pub fn scan_op_counts(&self) -> (u32, u32) {
        let mut s = 0;
        let mut i = 0;
        self.visit(&mut |p| {
            if let Plan::Scan { op, .. } = p {
                match op {
                    ScanOp::Seq => s += 1,
                    ScanOp::Index => i += 1,
                }
            }
        });
        (s, i)
    }

    /// Height of the tree: 1 for a scan leaf, 1 + max(child depths) for
    /// a join. Left-deep plans over n tables have depth n; balanced
    /// bushy plans are shallower — a shape channel for featurization.
    pub fn depth(&self) -> u32 {
        match self {
            Plan::Scan { .. } => 1,
            Plan::Join { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    /// The plan's gross shape.
    pub fn shape(&self) -> PlanShape {
        fn all_right_leaves(p: &Plan) -> bool {
            match p {
                Plan::Scan { .. } => true,
                Plan::Join { left, right, .. } => right.is_scan() && all_right_leaves(left),
            }
        }
        fn all_left_leaves(p: &Plan) -> bool {
            match p {
                Plan::Scan { .. } => true,
                Plan::Join { left, right, .. } => left.is_scan() && all_left_leaves(right),
            }
        }
        if all_right_leaves(self) {
            PlanShape::LeftDeep
        } else if all_left_leaves(self) {
            PlanShape::RightDeep
        } else {
            PlanShape::Bushy
        }
    }

    /// Whether the plan is left-deep (the only hint shape CommDbSim
    /// accepts, §8.2).
    pub fn is_left_deep(&self) -> bool {
        self.shape() == PlanShape::LeftDeep
    }

    /// Counts join operators by kind: `(hash, merge, nest_loop)`.
    pub fn join_op_counts(&self) -> (u32, u32, u32) {
        let mut h = 0;
        let mut m = 0;
        let mut n = 0;
        self.visit(&mut |p| {
            if let Plan::Join { op, .. } = p {
                match op {
                    JoinOp::Hash => h += 1,
                    JoinOp::Merge => m += 1,
                    JoinOp::NestLoop => n += 1,
                }
            }
        });
        (h, m, n)
    }

    /// A stable 64-bit structural fingerprint. Used for in-memory plan
    /// caches, visit counts (§5), and beam-state signatures — equality
    /// consumers only. Anything that consumes the hash *values* (the
    /// engine's latency-noise draws, the experience buffer's sorted
    /// sample keys) must use [`Plan::canonical_hash`] instead.
    /// Stable across runs and Rust versions.
    ///
    /// The fingerprint is **compositional** — a join's value is an
    /// FNV-1a fold over its operator tag and its children's
    /// fingerprints — and cached in the node at construction, so
    /// reading it is O(1) in the subtree size. Hot paths (the beam's
    /// per-candidate dedup, the engine's plan-cache probe) call this
    /// once per candidate, not once per node.
    pub fn fingerprint(&self) -> u64 {
        match self {
            Plan::Scan { qt, op } => {
                let h = fnv_mix(FNV_OFFSET, 0x01);
                let h = fnv_mix(h, *qt);
                fnv_mix(h, matches!(op, ScanOp::Index) as u8)
            }
            Plan::Join { fp, .. } => *fp,
        }
    }

    /// A **frozen** structural hash: FNV-1a streamed over the canonical
    /// pre-order encoding, O(n) in the subtree size. Unlike
    /// [`Plan::fingerprint`] — whose algorithm may evolve with the
    /// planner's hot path (it became compositional and cached in PR 5) —
    /// this encoding is never changed, because its *values* are baked
    /// into recorded artifacts: the engine's deterministic latency-noise
    /// draws and the experience buffer's sample ordering both key on it,
    /// so changing it would re-roll every simulated latency and permute
    /// every SGD minibatch, invalidating checked-in benchmarks and
    /// recorded learning curves. Use `fingerprint` for hot-path
    /// identity; use this for anything whose recorded outputs must be
    /// reproducible across releases.
    pub fn canonical_hash(&self) -> u64 {
        fn rec(p: &Plan, mut h: u64) -> u64 {
            match p {
                Plan::Scan { qt, op } => {
                    h = fnv_mix(h, 0x01);
                    h = fnv_mix(h, *qt);
                    fnv_mix(h, matches!(op, ScanOp::Index) as u8)
                }
                Plan::Join {
                    op, left, right, ..
                } => {
                    h = fnv_mix(h, 0x02);
                    h = fnv_mix(
                        h,
                        match op {
                            JoinOp::Hash => 0,
                            JoinOp::Merge => 1,
                            JoinOp::NestLoop => 2,
                        },
                    );
                    h = rec(left, h);
                    h = fnv_mix(h, 0x03);
                    rec(right, h)
                }
            }
        }
        rec(self, FNV_OFFSET)
    }

    /// A compact, human-greppable text encoding of the plan, for
    /// checkpoint files: scans are `q<idx>` (sequential) / `i<idx>`
    /// (index), joins are `(<op> <left> <right>)` with `h`/`m`/`n` for
    /// hash/merge/nested-loop. Round-trips via [`Plan::parse_compact`].
    pub fn encode_compact(&self) -> String {
        fn rec(p: &Plan, out: &mut String) {
            match p {
                Plan::Scan { qt, op } => {
                    out.push(match op {
                        ScanOp::Seq => 'q',
                        ScanOp::Index => 'i',
                    });
                    out.push_str(&qt.to_string());
                }
                Plan::Join {
                    op, left, right, ..
                } => {
                    out.push('(');
                    out.push(match op {
                        JoinOp::Hash => 'h',
                        JoinOp::Merge => 'm',
                        JoinOp::NestLoop => 'n',
                    });
                    out.push(' ');
                    rec(left, out);
                    out.push(' ');
                    rec(right, out);
                    out.push(')');
                }
            }
        }
        let mut out = String::new();
        rec(self, &mut out);
        out
    }

    /// Parses an [`Plan::encode_compact`] string back into a plan.
    pub fn parse_compact(text: &str) -> Result<Arc<Plan>, String> {
        fn node(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<Arc<Plan>, String> {
            match chars.peek().copied() {
                Some('(') => {
                    chars.next();
                    let op = match chars.next() {
                        Some('h') => JoinOp::Hash,
                        Some('m') => JoinOp::Merge,
                        Some('n') => JoinOp::NestLoop,
                        other => return Err(format!("bad join op {other:?}")),
                    };
                    expect(chars, ' ')?;
                    let left = node(chars)?;
                    expect(chars, ' ')?;
                    let right = node(chars)?;
                    expect(chars, ')')?;
                    if !left.mask().disjoint(right.mask()) {
                        return Err("join inputs overlap".to_string());
                    }
                    Ok(Plan::join(op, left, right))
                }
                Some(c @ ('q' | 'i')) => {
                    chars.next();
                    let mut digits = String::new();
                    while chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                        digits.push(chars.next().expect("peeked"));
                    }
                    let qt: usize = digits
                        .parse()
                        .map_err(|_| format!("bad scan index {digits:?}"))?;
                    Ok(Plan::scan(
                        qt,
                        if c == 'q' { ScanOp::Seq } else { ScanOp::Index },
                    ))
                }
                other => Err(format!("unexpected {other:?}")),
            }
        }
        fn expect(
            chars: &mut std::iter::Peekable<std::str::Chars>,
            want: char,
        ) -> Result<(), String> {
            match chars.next() {
                Some(c) if c == want => Ok(()),
                other => Err(format!("expected {want:?}, got {other:?}")),
            }
        }
        let mut chars = text.chars().peekable();
        let plan = node(&mut chars)?;
        if let Some(trailing) = chars.next() {
            return Err(format!("trailing {trailing:?}"));
        }
        Ok(plan)
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

#[inline]
fn fnv_mix(h: u64, b: u8) -> u64 {
    (h ^ b as u64).wrapping_mul(FNV_PRIME)
}

/// Folds a 64-bit word into the hash, little-endian byte order.
#[inline]
fn fnv_mix_u64(mut h: u64, w: u64) -> u64 {
    for b in w.to_le_bytes() {
        h = fnv_mix(h, b);
    }
    h
}

/// The compositional join fingerprint: operator tag plus both child
/// fingerprints, folded FNV-1a style. Child order matters (left/right
/// are physical roles).
fn join_fingerprint(op: JoinOp, left_fp: u64, right_fp: u64) -> u64 {
    let mut h = fnv_mix(FNV_OFFSET, 0x02);
    h = fnv_mix(
        h,
        match op {
            JoinOp::Hash => 0,
            JoinOp::Merge => 1,
            JoinOp::NestLoop => 2,
        },
    );
    h = fnv_mix_u64(h, left_fp);
    h = fnv_mix(h, 0x03);
    fnv_mix_u64(h, right_fp)
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Plan::Scan { qt, op } => {
                let tag = match op {
                    ScanOp::Seq => "Seq",
                    ScanOp::Index => "Idx",
                };
                write!(f, "{tag}({qt})")
            }
            Plan::Join {
                op, left, right, ..
            } => {
                let tag = match op {
                    JoinOp::Hash => "HJ",
                    JoinOp::Merge => "MJ",
                    JoinOp::NestLoop => "NL",
                };
                write!(f, "{tag}[{left}, {right}]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn left_deep_3() -> Arc<Plan> {
        let a = Plan::scan(0, ScanOp::Seq);
        let b = Plan::scan(1, ScanOp::Index);
        let c = Plan::scan(2, ScanOp::Seq);
        Plan::join(JoinOp::Hash, Plan::join(JoinOp::NestLoop, a, b), c)
    }

    fn bushy_4() -> Arc<Plan> {
        let ab = Plan::join(
            JoinOp::Hash,
            Plan::scan(0, ScanOp::Seq),
            Plan::scan(1, ScanOp::Seq),
        );
        let cd = Plan::join(
            JoinOp::Merge,
            Plan::scan(2, ScanOp::Seq),
            Plan::scan(3, ScanOp::Seq),
        );
        Plan::join(JoinOp::Hash, ab, cd)
    }

    #[test]
    fn masks_and_counts() {
        let p = left_deep_3();
        assert_eq!(p.mask(), TableMask(0b111));
        assert_eq!(p.num_tables(), 3);
        assert_eq!(p.num_joins(), 2);
        assert_eq!(p.join_op_counts(), (1, 0, 1));
    }

    #[test]
    fn shapes() {
        assert_eq!(left_deep_3().shape(), PlanShape::LeftDeep);
        assert_eq!(bushy_4().shape(), PlanShape::Bushy);
        let right_deep = Plan::join(
            JoinOp::Hash,
            Plan::scan(0, ScanOp::Seq),
            Plan::join(
                JoinOp::Hash,
                Plan::scan(1, ScanOp::Seq),
                Plan::scan(2, ScanOp::Seq),
            ),
        );
        assert_eq!(right_deep.shape(), PlanShape::RightDeep);
        assert!(left_deep_3().is_left_deep());
        assert!(!bushy_4().is_left_deep());
        // A single scan counts as left-deep.
        assert_eq!(Plan::scan(0, ScanOp::Seq).shape(), PlanShape::LeftDeep);
    }

    #[test]
    fn subplans_enumeration() {
        let p = bushy_4();
        let subs = p.subplans();
        assert_eq!(subs.len(), 7); // 4 leaves + 3 joins
        assert_eq!(p.join_subplans().len(), 3);
    }

    #[test]
    fn post_order_visits_children_before_parents() {
        let p = bushy_4();
        let post = p.subtrees_post_order();
        assert_eq!(post.len(), 7);
        assert_eq!(
            post.last().unwrap().fingerprint(),
            p.fingerprint(),
            "root is last"
        );
        for (i, sub) in post.iter().enumerate() {
            if let Plan::Join { left, right, .. } = &**sub {
                let pos = |needle: &Arc<Plan>| {
                    post.iter()
                        .position(|x| Arc::ptr_eq(x, needle))
                        .expect("child present")
                };
                assert!(pos(left) < i && pos(right) < i);
            }
        }
    }

    #[test]
    fn tree_tensor_matches_post_order() {
        for p in [left_deep_3(), bushy_4(), Plan::scan(0, ScanOp::Seq)] {
            let t = p.tree_tensor();
            let post = p.subtrees_post_order();
            assert_eq!(t.len(), post.len());
            assert!(!t.is_empty());
            for (i, (node, sub)) in t.nodes.iter().zip(&post).enumerate() {
                assert!(Arc::ptr_eq(node, sub), "slot {i} diverges from post-order");
                match (&**node, t.children[i]) {
                    (Plan::Scan { .. }, kids) => assert!(kids.is_none()),
                    (Plan::Join { left, right, .. }, Some((l, r))) => {
                        assert!(l < i && r < i, "children precede parents");
                        assert!(Arc::ptr_eq(&t.nodes[l], left));
                        assert!(Arc::ptr_eq(&t.nodes[r], right));
                    }
                    (Plan::Join { .. }, None) => panic!("join without child slots"),
                }
            }
        }
    }

    #[test]
    fn scan_counts_and_depth() {
        let p = left_deep_3();
        assert_eq!(p.scan_op_counts(), (2, 1));
        assert_eq!(p.depth(), 3);
        assert_eq!(bushy_4().depth(), 3);
        assert_eq!(Plan::scan(0, ScanOp::Seq).depth(), 1);
        assert_eq!(bushy_4().scan_op_counts(), (4, 0));
    }

    #[test]
    fn fingerprints_distinguish_structure() {
        let p1 = left_deep_3();
        let p2 = left_deep_3();
        assert_eq!(p1.fingerprint(), p2.fingerprint());
        assert_ne!(p1.fingerprint(), bushy_4().fingerprint());
        // Operator changes alter the fingerprint.
        let alt = Plan::join(
            JoinOp::Merge,
            Plan::join(
                JoinOp::NestLoop,
                Plan::scan(0, ScanOp::Seq),
                Plan::scan(1, ScanOp::Index),
            ),
            Plan::scan(2, ScanOp::Seq),
        );
        assert_ne!(p1.fingerprint(), alt.fingerprint());
        // Child order matters (left/right are physical roles).
        let swapped = Plan::join(
            JoinOp::Hash,
            Plan::scan(2, ScanOp::Seq),
            Plan::join(
                JoinOp::NestLoop,
                Plan::scan(0, ScanOp::Seq),
                Plan::scan(1, ScanOp::Index),
            ),
        );
        assert_ne!(p1.fingerprint(), swapped.fingerprint());
    }

    #[test]
    fn display_format() {
        assert_eq!(left_deep_3().to_string(), "HJ[NL[Seq(0), Idx(1)], Seq(2)]");
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    #[cfg(debug_assertions)]
    fn overlapping_join_panics() {
        let a = Plan::scan(0, ScanOp::Seq);
        let b = Plan::scan(0, ScanOp::Seq);
        let _ = Plan::join(JoinOp::Hash, a, b);
    }

    #[test]
    fn compact_encoding_round_trips() {
        for plan in [left_deep_3(), bushy_4(), Plan::scan(12, ScanOp::Index)] {
            let text = plan.encode_compact();
            let back = Plan::parse_compact(&text).unwrap();
            assert_eq!(back, plan, "round-trip of {text:?}");
            assert_eq!(back.fingerprint(), plan.fingerprint());
            assert_eq!(back.canonical_hash(), plan.canonical_hash());
        }
        assert_eq!(left_deep_3().encode_compact(), "(h (n q0 i1) q2)");
        for bad in ["", "q", "x0", "(h q0 q1", "(z q0 q1)", "(h q0 q0)", "q0 "] {
            assert!(Plan::parse_compact(bad).is_err(), "{bad:?} must fail");
        }
    }
}
