//! SQL-ish pretty-printing of queries and plan hints, for examples,
//! logging, and debugging. (The engine consumes the IR directly; this
//! module is presentation only.)

use crate::ir::{CmpOp, Predicate, Query};
use balsa_storage::Catalog;
use std::fmt::Write;

/// Renders a query as readable SQL text.
pub fn to_sql(q: &Query, catalog: &Catalog) -> String {
    let mut s = String::new();
    s.push_str("SELECT COUNT(*)\nFROM ");
    let froms: Vec<String> = q
        .tables
        .iter()
        .map(|t| format!("{} AS {}", catalog.table(t.table).name, t.alias))
        .collect();
    s.push_str(&froms.join(",\n     "));
    s.push_str("\nWHERE ");
    let mut conds = Vec::new();
    for e in &q.joins {
        let lt = &q.tables[e.left_qt];
        let rt = &q.tables[e.right_qt];
        conds.push(format!(
            "{}.{} = {}.{}",
            lt.alias,
            catalog.table(lt.table).columns[e.left_col].name,
            rt.alias,
            catalog.table(rt.table).columns[e.right_col].name
        ));
    }
    for f in &q.filters {
        let t = &q.tables[f.qt];
        let col = format!("{}.{}", t.alias, catalog.table(t.table).columns[f.col].name);
        let cond = match &f.pred {
            Predicate::Cmp(op, v) => {
                let sym = match op {
                    CmpOp::Eq => "=",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                format!("{col} {sym} {v}")
            }
            Predicate::Between(lo, hi) => format!("{col} BETWEEN {lo} AND {hi}"),
            Predicate::InList(vs) => {
                let items: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
                format!("{col} IN ({})", items.join(", "))
            }
        };
        conds.push(cond);
    }
    let _ = write!(s, "{};", conds.join("\n  AND "));
    s
}

/// Renders a plan as a pg_hint_plan-style hint comment, using the
/// query's aliases (the mechanism the paper uses to inject plans, §8.1).
pub fn to_hint(plan: &crate::plan::Plan, q: &Query) -> String {
    use crate::plan::{JoinOp, Plan, ScanOp};
    fn leading(p: &Plan, q: &Query, out: &mut String) {
        match p {
            Plan::Scan { qt, .. } => out.push_str(&q.tables[*qt as usize].alias),
            Plan::Join { left, right, .. } => {
                out.push('(');
                leading(left, q, out);
                out.push(' ');
                leading(right, q, out);
                out.push(')');
            }
        }
    }
    let mut order = String::new();
    leading(plan, q, &mut order);
    let mut ops = Vec::new();
    plan.visit(&mut |p| match p {
        Plan::Join {
            op, left, right, ..
        } => {
            let name = match op {
                JoinOp::Hash => "HashJoin",
                JoinOp::Merge => "MergeJoin",
                JoinOp::NestLoop => "NestLoop",
            };
            let mut aliases = Vec::new();
            for m in [left.mask(), right.mask()] {
                for i in m.iter() {
                    aliases.push(q.tables[i].alias.clone());
                }
            }
            ops.push(format!("{name}({})", aliases.join(" ")));
        }
        Plan::Scan { qt, op } => {
            let name = match op {
                ScanOp::Seq => "SeqScan",
                ScanOp::Index => "IndexScan",
            };
            ops.push(format!("{name}({})", q.tables[*qt as usize].alias));
        }
    });
    format!("/*+ Leading({order}) {} */", ops.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Filter, JoinEdge, QueryTable};
    use crate::plan::{JoinOp, Plan, ScanOp};
    use balsa_storage::{mini_imdb, DataGenConfig};

    fn tiny_query(catalog: &Catalog) -> Query {
        let t = catalog.table_id("title").unwrap();
        let mc = catalog.table_id("movie_companies").unwrap();
        Query {
            id: 1,
            name: "demo".into(),
            template: 0,
            tables: vec![
                QueryTable {
                    table: t,
                    alias: "t".into(),
                },
                QueryTable {
                    table: mc,
                    alias: "mc".into(),
                },
            ],
            joins: vec![JoinEdge {
                left_qt: 0,
                left_col: 0,
                right_qt: 1,
                right_col: 1,
            }],
            filters: vec![Filter {
                qt: 0,
                col: 2,
                pred: Predicate::Between(1990, 2000),
            }],
        }
    }

    #[test]
    fn sql_rendering() {
        let db = mini_imdb(DataGenConfig {
            scale: 0.05,
            ..Default::default()
        });
        let q = tiny_query(db.catalog());
        let sql = to_sql(&q, db.catalog());
        assert!(sql.contains("title AS t"));
        assert!(sql.contains("t.id = mc.movie_id"));
        assert!(sql.contains("BETWEEN 1990 AND 2000"));
    }

    #[test]
    fn hint_rendering() {
        let db = mini_imdb(DataGenConfig {
            scale: 0.05,
            ..Default::default()
        });
        let q = tiny_query(db.catalog());
        let p = Plan::join(
            JoinOp::Hash,
            Plan::scan(0, ScanOp::Seq),
            Plan::scan(1, ScanOp::Index),
        );
        let hint = to_hint(&p, &q);
        assert!(hint.contains("Leading((t mc))"));
        assert!(hint.contains("HashJoin(t mc)"));
        assert!(hint.contains("IndexScan(mc)"));
    }
}
