//! Select-project-join query blocks.
//!
//! Balsa optimizes SPJ blocks (§2, "Assumptions"). A [`Query`] is a set of
//! aliased table references, a connected equi-join graph over them, and a
//! conjunction of base-table filters. Table subsets are manipulated as
//! [`TableMask`] bitmasks (queries join at most 16 tables in JOB, well
//! within a `u32`).

use balsa_storage::{Catalog, ColumnId, TableId};
use serde::{Deserialize, Serialize};

/// Globally unique query identifier within a workload.
pub type QueryId = u32;

/// A bitmask over the tables (by position) of one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TableMask(pub u32);

impl TableMask {
    /// The empty set.
    pub const EMPTY: TableMask = TableMask(0);

    /// Mask containing only query-table `i`.
    #[inline]
    pub fn single(i: usize) -> Self {
        TableMask(1 << i)
    }

    /// Mask containing tables `0..n`.
    #[inline]
    pub fn all(n: usize) -> Self {
        debug_assert!(n <= 32);
        if n == 32 {
            TableMask(u32::MAX)
        } else {
            TableMask((1u32 << n) - 1)
        }
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: Self) -> Self {
        TableMask(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub fn intersect(self, other: Self) -> Self {
        TableMask(self.0 & other.0)
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, i: usize) -> bool {
        self.0 & (1 << i) != 0
    }

    /// Whether `other` is a subset of `self`.
    #[inline]
    pub fn contains_all(self, other: Self) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether the two masks share no tables.
    #[inline]
    pub fn disjoint(self, other: Self) -> bool {
        self.0 & other.0 == 0
    }

    /// Number of tables in the set.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over member indices, ascending.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(i)
            }
        })
    }

    /// Lowest member index (`None` when empty). DPccp's enumeration
    /// order is keyed on this.
    #[inline]
    pub fn lowest(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Iterates over all **non-empty** subsets of this mask in ascending
    /// numeric order — the `s' = (s' - N) & N` trick driving DPccp's
    /// neighborhood expansion.
    pub fn subsets(self) -> impl Iterator<Item = TableMask> {
        let n = self.0;
        let mut s = 0u32;
        std::iter::from_fn(move || {
            s = s.wrapping_sub(n) & n;
            if s == 0 {
                None
            } else {
                Some(TableMask(s))
            }
        })
    }
}

/// A comparison operator for filter predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A filter predicate over one column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Predicate {
    /// `col OP value`.
    Cmp(CmpOp, i64),
    /// `col BETWEEN lo AND hi` (inclusive).
    Between(i64, i64),
    /// `col IN (values)`.
    InList(Vec<i64>),
}

/// A filter attached to one aliased table reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Filter {
    /// Index into [`Query::tables`].
    pub qt: usize,
    /// Column within that table.
    pub col: ColumnId,
    /// The predicate.
    pub pred: Predicate,
}

/// An aliased table reference. The same catalog table may appear several
/// times in one query under different aliases (e.g. `info_type AS it1`,
/// `info_type AS it2` in JOB).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QueryTable {
    /// The referenced catalog table.
    pub table: TableId,
    /// Alias used in the query text.
    pub alias: String,
}

/// An equi-join edge between two aliased tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JoinEdge {
    /// Left query-table index.
    pub left_qt: usize,
    /// Column of the left table.
    pub left_col: ColumnId,
    /// Right query-table index.
    pub right_qt: usize,
    /// Column of the right table.
    pub right_col: ColumnId,
}

impl JoinEdge {
    /// Whether this edge connects a table in `a` to a table in `b`.
    pub fn crosses(&self, a: TableMask, b: TableMask) -> bool {
        (a.contains(self.left_qt) && b.contains(self.right_qt))
            || (a.contains(self.right_qt) && b.contains(self.left_qt))
    }

    /// Whether both endpoints fall inside `mask`.
    pub fn within(&self, mask: TableMask) -> bool {
        mask.contains(self.left_qt) && mask.contains(self.right_qt)
    }
}

/// A select-project-join query block.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Query {
    /// Unique id within the workload.
    pub id: QueryId,
    /// Human-readable name, e.g. `"job_07b"`.
    pub name: String,
    /// Template id this query was instantiated from.
    pub template: u32,
    /// Aliased table references.
    pub tables: Vec<QueryTable>,
    /// Equi-join graph edges.
    pub joins: Vec<JoinEdge>,
    /// Conjunctive filters over base tables.
    pub filters: Vec<Filter>,
}

impl Query {
    /// Number of table references.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Number of joins (edges); the paper counts query complexity this way.
    pub fn num_joins(&self) -> usize {
        self.joins.len()
    }

    /// Mask of all tables in the query.
    pub fn all_mask(&self) -> TableMask {
        TableMask::all(self.tables.len())
    }

    /// Filters attached to query-table `qt`.
    pub fn filters_on(&self, qt: usize) -> impl Iterator<Item = &Filter> {
        self.filters.iter().filter(move |f| f.qt == qt)
    }

    /// All join edges crossing between the disjoint masks `a` and `b`.
    pub fn edges_between(&self, a: TableMask, b: TableMask) -> Vec<JoinEdge> {
        self.joins
            .iter()
            .filter(|e| e.crosses(a, b))
            .copied()
            .collect()
    }

    /// Whether joining `a` and `b` is permitted (at least one edge crosses;
    /// cross products are excluded from the search space, §7).
    pub fn connected(&self, a: TableMask, b: TableMask) -> bool {
        self.joins.iter().any(|e| e.crosses(a, b))
    }

    /// Per-table adjacency: `result[qt]` is the mask of tables sharing a
    /// join edge with `qt`. Precomputed once per query by planners so
    /// neighborhood expansion is a couple of word ops per step.
    pub fn neighbor_masks(&self) -> Vec<TableMask> {
        let mut adj = vec![TableMask::EMPTY; self.tables.len()];
        for e in &self.joins {
            adj[e.left_qt] = adj[e.left_qt].union(TableMask::single(e.right_qt));
            adj[e.right_qt] = adj[e.right_qt].union(TableMask::single(e.left_qt));
        }
        adj
    }

    /// Whether the subset `mask` induces a connected join subgraph.
    pub fn subgraph_connected(&self, mask: TableMask) -> bool {
        let n = mask.count();
        if n <= 1 {
            return !mask.is_empty();
        }
        let start = mask.iter().next().expect("non-empty");
        let mut reached = TableMask::single(start);
        loop {
            let mut grew = false;
            for e in &self.joins {
                if !e.within(mask) {
                    continue;
                }
                let l = reached.contains(e.left_qt);
                let r = reached.contains(e.right_qt);
                if l != r {
                    reached =
                        reached.union(TableMask::single(if l { e.right_qt } else { e.left_qt }));
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        reached.contains_all(mask)
    }

    /// Query-table indices whose alias resolves to `alias`.
    pub fn qt_by_alias(&self, alias: &str) -> Option<usize> {
        self.tables.iter().position(|t| t.alias == alias)
    }

    /// Validates internal consistency against a catalog: table ids, column
    /// ids, edge endpoints, and join-graph connectivity.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), String> {
        if self.tables.is_empty() {
            return Err("query has no tables".into());
        }
        if self.tables.len() > 32 {
            return Err("more than 32 tables".into());
        }
        for (i, t) in self.tables.iter().enumerate() {
            if t.table >= catalog.num_tables() {
                return Err(format!("table ref {i} out of range"));
            }
        }
        for e in &self.joins {
            for (qt, col) in [(e.left_qt, e.left_col), (e.right_qt, e.right_col)] {
                let t = self
                    .tables
                    .get(qt)
                    .ok_or_else(|| format!("edge endpoint {qt} out of range"))?;
                if col >= catalog.table(t.table).columns.len() {
                    return Err(format!("edge column {col} out of range for {}", t.alias));
                }
            }
            if e.left_qt == e.right_qt {
                return Err("self-loop join edge".into());
            }
        }
        for f in &self.filters {
            let t = self
                .tables
                .get(f.qt)
                .ok_or_else(|| format!("filter qt {} out of range", f.qt))?;
            if f.col >= catalog.table(t.table).columns.len() {
                return Err(format!(
                    "filter column {} out of range for {}",
                    f.col, t.alias
                ));
            }
        }
        if !self.subgraph_connected(self.all_mask()) {
            return Err(format!("join graph of {} is not connected", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_table_query() -> Query {
        Query {
            id: 0,
            name: "q".into(),
            template: 0,
            tables: vec![
                QueryTable {
                    table: 0,
                    alias: "a".into(),
                },
                QueryTable {
                    table: 1,
                    alias: "b".into(),
                },
                QueryTable {
                    table: 1,
                    alias: "b2".into(),
                },
            ],
            joins: vec![
                JoinEdge {
                    left_qt: 0,
                    left_col: 0,
                    right_qt: 1,
                    right_col: 1,
                },
                JoinEdge {
                    left_qt: 0,
                    left_col: 0,
                    right_qt: 2,
                    right_col: 1,
                },
            ],
            filters: vec![Filter {
                qt: 1,
                col: 0,
                pred: Predicate::Cmp(CmpOp::Eq, 5),
            }],
        }
    }

    #[test]
    fn mask_ops() {
        let m = TableMask::single(0).union(TableMask::single(3));
        assert_eq!(m.count(), 2);
        assert!(m.contains(3));
        assert!(!m.contains(1));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 3]);
        assert!(TableMask::all(4).contains_all(m));
        assert!(m.disjoint(TableMask::single(2)));
        assert!(!m.disjoint(TableMask::single(3)));
        assert_eq!(TableMask::all(32).count(), 32);
        assert!(TableMask::EMPTY.is_empty());
    }

    #[test]
    fn subset_enumeration_and_lowest() {
        let m = TableMask(0b1011);
        let subs: Vec<u32> = m.subsets().map(|s| s.0).collect();
        assert_eq!(
            subs,
            vec![0b0001, 0b0010, 0b0011, 0b1000, 0b1001, 0b1010, 0b1011]
        );
        assert_eq!(TableMask::EMPTY.subsets().count(), 0);
        assert_eq!(m.lowest(), Some(0));
        assert_eq!(TableMask(0b1000).lowest(), Some(3));
        assert_eq!(TableMask::EMPTY.lowest(), None);
    }

    #[test]
    fn neighbor_masks_mirror_edges() {
        let q = two_table_query();
        let adj = q.neighbor_masks();
        assert_eq!(adj.len(), 3);
        assert_eq!(adj[0], TableMask(0b110)); // a -- b, a -- b2
        assert_eq!(adj[1], TableMask(0b001));
        assert_eq!(adj[2], TableMask(0b001));
    }

    #[test]
    fn connectivity() {
        let q = two_table_query();
        assert!(q.connected(TableMask::single(0), TableMask::single(1)));
        assert!(!q.connected(TableMask::single(1), TableMask::single(2)));
        assert!(q.subgraph_connected(q.all_mask()));
        assert!(q.subgraph_connected(TableMask(0b011)));
        assert!(!q.subgraph_connected(TableMask(0b110)));
    }

    #[test]
    fn edges_between_masks() {
        let q = two_table_query();
        let e = q.edges_between(TableMask::single(0), TableMask(0b110));
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn aliases() {
        let q = two_table_query();
        assert_eq!(q.qt_by_alias("b2"), Some(2));
        assert_eq!(q.qt_by_alias("zz"), None);
    }
}
