//! Independent plan verifier.
//!
//! Re-checks a finished physical plan against the query it claims to
//! answer, using nothing but the query IR — no planner state, no memo,
//! no cost-model internals. Planners call [`verify_plan`] on every plan
//! they emit (behind a debug-assertions default / `BALSA_VERIFY_PLANS`
//! opt-in, see `balsa_search`), so a bug in enumeration, Pareto
//! bookkeeping, or a fallback path is caught at the planner boundary
//! instead of surfacing as a wrong result or an executor panic later.
//!
//! Checks performed:
//!
//! 1. **Coverage** — the plan scans each of the query's base tables
//!    exactly once and nothing else (mask re-derived by walking the
//!    tree, not trusted from the cached `Plan::mask`).
//! 2. **Join validity** — every join's inputs are disjoint and connected
//!    by at least one actual join-graph edge; an edge-free join is
//!    flagged as a cross product (the search space excludes them).
//! 3. **Order claims** — a merge join's sort keys must be re-derivable:
//!    merge requires an equi-join edge between its inputs (the edge *is*
//!    the sort key source), so a merge join over edge-less inputs is
//!    rejected even before the cross-product check fires.
//! 4. **Cost sanity** — when the caller supplies a cost it must be
//!    finite, strictly positive, and at most the documented
//!    `COST_CEILING` (1e30; see `balsa_cost`). Learned scorers predict
//!    log-latencies that may legitimately be negative, so those callers
//!    pass `None` and check finiteness themselves.

use crate::ir::{Query, TableMask};
use crate::plan::{JoinOp, Plan};

use std::fmt;

/// Ceiling mirrored from `balsa_cost::COST_CEILING` (the query crate
/// sits below the cost crate, so the constant is duplicated here and
/// asserted equal in the cost crate's tests).
pub const VERIFY_COST_CEILING: f64 = 1e30;

/// Why a plan failed verification.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// A base table is scanned more than once, or the scan refers to a
    /// table index outside the query.
    DuplicateOrUnknownTable {
        /// Offending query-table index.
        qt: usize,
    },
    /// The plan does not cover exactly the query's table set.
    CoverageMismatch {
        /// Tables the plan actually scans.
        got: TableMask,
        /// Tables the query requires.
        want: TableMask,
    },
    /// A join's inputs overlap (the same table feeds both sides).
    OverlappingJoin {
        /// Left input's table set.
        left: TableMask,
        /// Right input's table set.
        right: TableMask,
    },
    /// A join's inputs are not connected by any join-graph edge.
    CrossProduct {
        /// Left input's table set.
        left: TableMask,
        /// Right input's table set.
        right: TableMask,
        /// Physical operator of the offending join.
        op: JoinOp,
    },
    /// The claimed plan cost is NaN, infinite, non-positive, or above
    /// [`VERIFY_COST_CEILING`].
    BadCost {
        /// The offending cost value.
        cost: f64,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::DuplicateOrUnknownTable { qt } => {
                write!(f, "table {qt} scanned more than once or out of range")
            }
            VerifyError::CoverageMismatch { got, want } => write!(
                f,
                "plan covers mask {:#x}, query requires {:#x}",
                got.0, want.0
            ),
            VerifyError::OverlappingJoin { left, right } => write!(
                f,
                "join inputs overlap: left {:#x}, right {:#x}",
                left.0, right.0
            ),
            VerifyError::CrossProduct { left, right, op } => write!(
                f,
                "{op:?} join over edge-less inputs (cross product): left {:#x}, right {:#x}",
                left.0, right.0
            ),
            VerifyError::BadCost { cost } => {
                write!(f, "plan cost {cost} is not finite, positive, and <= 1e30")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies `plan` against `query`. `cost` is checked when supplied
/// (model-cost planners pass `Some`; learned scorers whose scores are
/// log-latencies pass `None`).
pub fn verify_plan(query: &Query, plan: &Plan, cost: Option<f64>) -> Result<(), VerifyError> {
    let n = query.num_tables();
    // Pass 1: scan leaves — duplicates, out-of-range indices, coverage.
    // Table-level errors take precedence over join-level ones so a
    // rogue scan is reported as such, not as a cross product one level
    // up.
    let mut seen = TableMask::EMPTY;
    let mut err: Option<VerifyError> = None;
    plan.visit(&mut |node| {
        if err.is_some() {
            return;
        }
        if let Plan::Scan { qt, .. } = node {
            let qt = *qt as usize;
            if qt >= n || seen.contains(qt) {
                err = Some(VerifyError::DuplicateOrUnknownTable { qt });
            } else {
                seen = seen.union(TableMask::single(qt));
            }
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    let want = query.all_mask();
    if seen != want {
        return Err(VerifyError::CoverageMismatch { got: seen, want });
    }
    // Pass 2: join nodes — disjointness and edge-backed connectivity.
    plan.visit(&mut |node| {
        if err.is_some() {
            return;
        }
        if let Plan::Join {
            op, left, right, ..
        } = node
        {
            let (l, r) = (derive_mask(left), derive_mask(right));
            if !l.disjoint(r) {
                err = Some(VerifyError::OverlappingJoin { left: l, right: r });
            } else if !query.connected(l, r) {
                // Covers both the cross-product flag and the merge
                // order-claim check: a merge join's sort keys come
                // from an equi-join edge between its inputs, so no
                // edge means the order claim is not re-derivable.
                err = Some(VerifyError::CrossProduct {
                    left: l,
                    right: r,
                    op: *op,
                });
            }
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    if let Some(c) = cost {
        if !c.is_finite() || c <= 0.0 || c > VERIFY_COST_CEILING {
            return Err(VerifyError::BadCost { cost: c });
        }
    }
    Ok(())
}

/// Re-derives a subtree's table mask by walking it (never trusts the
/// cached `Plan::mask`, which is exactly the thing a planner bug could
/// corrupt).
fn derive_mask(plan: &Plan) -> TableMask {
    let mut m = TableMask::EMPTY;
    plan.visit(&mut |node| {
        if let Plan::Scan { qt, .. } = node {
            m = m.union(TableMask::single(*qt as usize));
        }
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{CmpOp, Filter, JoinEdge, Predicate, QueryTable};
    use crate::plan::ScanOp;

    fn three_table_query() -> Query {
        // 0 — 1 — 2 chain.
        Query {
            id: 0,
            name: "verify_chain".into(),
            template: 0,
            tables: (0..3)
                .map(|i| QueryTable {
                    table: i,
                    alias: format!("t{i}"),
                })
                .collect(),
            joins: vec![
                JoinEdge {
                    left_qt: 0,
                    left_col: 0,
                    right_qt: 1,
                    right_col: 0,
                },
                JoinEdge {
                    left_qt: 1,
                    left_col: 1,
                    right_qt: 2,
                    right_col: 0,
                },
            ],
            filters: vec![Filter {
                qt: 0,
                col: 1,
                pred: Predicate::Cmp(CmpOp::Le, 10),
            }],
        }
    }

    #[test]
    fn accepts_valid_left_deep_plan() {
        let q = three_table_query();
        let p = Plan::join(
            JoinOp::Hash,
            Plan::join(
                JoinOp::Merge,
                Plan::scan(0, ScanOp::Seq),
                Plan::scan(1, ScanOp::Seq),
            ),
            Plan::scan(2, ScanOp::Index),
        );
        assert_eq!(verify_plan(&q, &p, Some(123.4)), Ok(()));
    }

    #[test]
    fn rejects_missing_and_duplicate_tables() {
        let q = three_table_query();
        // Missing table 2.
        let partial = Plan::join(
            JoinOp::Hash,
            Plan::scan(0, ScanOp::Seq),
            Plan::scan(1, ScanOp::Seq),
        );
        assert!(matches!(
            verify_plan(&q, &partial, None),
            Err(VerifyError::CoverageMismatch { .. })
        ));
        // Table index out of range.
        let rogue = Plan::join(
            JoinOp::Hash,
            Plan::join(
                JoinOp::Hash,
                Plan::scan(0, ScanOp::Seq),
                Plan::scan(1, ScanOp::Seq),
            ),
            Plan::scan(7, ScanOp::Seq),
        );
        assert!(matches!(
            verify_plan(&q, &rogue, None),
            Err(VerifyError::DuplicateOrUnknownTable { qt: 7 })
        ));
    }

    #[test]
    fn rejects_cross_product_join() {
        let q = three_table_query();
        // 0 and 2 share no edge: joining them first is a cross product.
        let p = Plan::join(
            JoinOp::Hash,
            Plan::join(
                JoinOp::Merge,
                Plan::scan(0, ScanOp::Seq),
                Plan::scan(2, ScanOp::Seq),
            ),
            Plan::scan(1, ScanOp::Seq),
        );
        assert!(matches!(
            verify_plan(&q, &p, None),
            Err(VerifyError::CrossProduct {
                op: JoinOp::Merge,
                ..
            })
        ));
    }

    #[test]
    fn rejects_bad_costs() {
        let q = three_table_query();
        let p = Plan::join(
            JoinOp::Hash,
            Plan::join(
                JoinOp::Hash,
                Plan::scan(0, ScanOp::Seq),
                Plan::scan(1, ScanOp::Seq),
            ),
            Plan::scan(2, ScanOp::Seq),
        );
        for bad in [f64::NAN, f64::INFINITY, 0.0, -3.0, 2e30] {
            assert!(
                matches!(
                    verify_plan(&q, &p, Some(bad)),
                    Err(VerifyError::BadCost { .. })
                ),
                "cost {bad} should be rejected"
            );
        }
        assert_eq!(verify_plan(&q, &p, Some(1e29)), Ok(()));
    }
}
