//! PostgreSQL-style histogram cardinality estimation.
//!
//! The method (per Leis et al. 2015, which the paper cites for its
//! estimator choice):
//!
//! * per-column equi-depth histograms and most-common-value lists for
//!   base-table filter selectivities;
//! * **independence** across conjunctive predicates (selectivities
//!   multiply);
//! * equi-join selectivity `1 / max(ndv(a), ndv(b))`;
//! * "magic constants" (default selectivities) when statistics cannot
//!   answer.
//!
//! Because the synthetic mini-IMDb data contains cross-column
//! correlations, these estimates err by orders of magnitude on some
//! queries — exactly the behaviour of PostgreSQL on JOB that the paper's
//! simulation phase tolerates (§3.3, §10).

use crate::estimator::CardEstimator;
use balsa_query::{CmpOp, Predicate, Query, TableMask};
use balsa_storage::{ColumnStats, Database};

/// Magic constant: equality selectivity when statistics are unavailable.
const DEFAULT_EQ_SEL: f64 = 0.005;
/// Magic constant: range selectivity when statistics are unavailable.
const DEFAULT_RANGE_SEL: f64 = 0.33;
/// Lower clamp for all estimates.
const MIN_CARD: f64 = 1e-6;

/// The PostgreSQL-style estimator.
pub struct HistogramEstimator<'db> {
    db: &'db Database,
}

impl<'db> HistogramEstimator<'db> {
    /// Creates an estimator over the database's statistics.
    pub fn new(db: &'db Database) -> Self {
        Self { db }
    }

    /// Selectivity of one predicate against one column's statistics.
    fn pred_selectivity(stats: &ColumnStats, pred: &Predicate) -> f64 {
        let non_null = 1.0 - stats.null_frac;
        if stats.num_rows == 0 {
            return 0.0;
        }
        match pred {
            Predicate::Cmp(CmpOp::Eq, v) => {
                if let Some(f) = stats.mcv_freq(*v) {
                    f
                } else if stats.ndv > 0 {
                    // Rows not covered by MCVs, spread over remaining NDVs.
                    let mcv_total: f64 = stats.mcvs.iter().map(|(_, f)| f).sum();
                    let rest_ndv = stats.ndv.saturating_sub(stats.mcvs.len() as u64);
                    if rest_ndv == 0 {
                        // Value absent from a fully-enumerated domain.
                        0.0
                    } else {
                        ((non_null - mcv_total).max(0.0)) / rest_ndv as f64
                    }
                } else {
                    DEFAULT_EQ_SEL
                }
            }
            Predicate::Cmp(op, v) => {
                let h = &stats.histogram;
                if h.bounds.is_empty() {
                    return DEFAULT_RANGE_SEL;
                }
                let frac = match op {
                    CmpOp::Lt => h.fraction_le(v - 1),
                    CmpOp::Le => h.fraction_le(*v),
                    CmpOp::Gt => 1.0 - h.fraction_le(*v),
                    CmpOp::Ge => 1.0 - h.fraction_le(v - 1),
                    CmpOp::Eq => unreachable!("handled above"),
                };
                frac.clamp(0.0, 1.0) * non_null
            }
            Predicate::Between(lo, hi) => {
                let h = &stats.histogram;
                if h.bounds.is_empty() {
                    return DEFAULT_RANGE_SEL;
                }
                h.fraction_between(*lo, *hi).clamp(0.0, 1.0) * non_null
            }
            Predicate::InList(vs) => {
                let sum: f64 = vs
                    .iter()
                    .map(|v| Self::pred_selectivity(stats, &Predicate::Cmp(CmpOp::Eq, *v)))
                    .sum();
                sum.clamp(0.0, 1.0)
            }
        }
    }

    /// Filtered base-table cardinality for query-table `qt`
    /// (independence across predicates).
    fn filtered_rows(&self, query: &Query, qt: usize) -> f64 {
        let tid = query.tables[qt].table;
        let stats = self.db.stats(tid);
        let mut sel = 1.0;
        for f in query.filters_on(qt) {
            sel *= Self::pred_selectivity(&stats.columns[f.col], &f.pred);
        }
        (stats.num_rows as f64 * sel).max(MIN_CARD)
    }

    /// NDV of a join column, the quantity the equi-join formula needs.
    fn join_col_ndv(&self, query: &Query, qt: usize, col: usize) -> f64 {
        let tid = query.tables[qt].table;
        (self.db.stats(tid).columns[col].ndv as f64).max(1.0)
    }
}

impl CardEstimator for HistogramEstimator<'_> {
    fn cardinality(&self, query: &Query, mask: TableMask) -> f64 {
        debug_assert!(!mask.is_empty());
        let mut card: f64 = 1.0;
        for qt in mask.iter() {
            card *= self.filtered_rows(query, qt);
        }
        // Every join edge whose endpoints both lie in `mask` contributes a
        // selectivity factor of 1/max(ndv_l, ndv_r) — PostgreSQL's
        // independence treatment of join predicates.
        for e in &query.joins {
            if e.within(mask) {
                let nl = self.join_col_ndv(query, e.left_qt, e.left_col);
                let nr = self.join_col_ndv(query, e.right_qt, e.right_col);
                card /= nl.max(nr);
            }
        }
        card.max(MIN_CARD)
    }

    fn base_rows(&self, query: &Query, qt: usize) -> f64 {
        self.db.stats(query.tables[qt].table).num_rows as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balsa_query::{Filter, JoinEdge, QueryTable};
    use balsa_storage::{mini_imdb, DataGenConfig};

    fn db() -> Database {
        mini_imdb(DataGenConfig {
            scale: 0.2,
            ..Default::default()
        })
    }

    fn q_title_year(db: &Database, lo: i64, hi: i64) -> Query {
        let t = db.catalog().table_id("title").unwrap();
        let year = db.catalog().table(t).column_id("production_year").unwrap();
        Query {
            id: 0,
            name: "t".into(),
            template: 0,
            tables: vec![QueryTable {
                table: t,
                alias: "t".into(),
            }],
            joins: vec![],
            filters: vec![Filter {
                qt: 0,
                col: year,
                pred: Predicate::Between(lo, hi),
            }],
        }
    }

    /// Counts actual rows matching a between filter, for ground truth.
    fn true_count(db: &Database, table: &str, col: &str, lo: i64, hi: i64) -> usize {
        let tid = db.catalog().table_id(table).unwrap();
        let cid = db.catalog().table(tid).column_id(col).unwrap();
        db.table(tid)
            .column(cid)
            .values()
            .iter()
            .filter(|&&v| v != balsa_storage::NULL_SENTINEL && v >= lo && v <= hi)
            .count()
    }

    #[test]
    fn range_estimate_close_on_uncorrelated_column() {
        let db = db();
        let est = HistogramEstimator::new(&db);
        let q = q_title_year(&db, 1990, 2005);
        let got = est.cardinality(&q, TableMask::single(0));
        let truth = true_count(&db, "title", "production_year", 1990, 2005) as f64;
        assert!(truth > 0.0);
        let ratio = got / truth;
        assert!(
            (0.5..2.0).contains(&ratio),
            "estimate {got} vs truth {truth}"
        );
    }

    #[test]
    fn correlated_filters_underestimate() {
        // it1.id = 3 AND mi.info in the type-3 band: truly most type-3
        // rows qualify, but independence multiplies the two marginals.
        let db = db();
        let est = HistogramEstimator::new(&db);
        let mi = db.catalog().table_id("movie_info").unwrap();
        let it_col = db.catalog().table(mi).column_id("info_type_id").unwrap();
        let info_col = db.catalog().table(mi).column_id("info").unwrap();
        let q = Query {
            id: 0,
            name: "corr".into(),
            template: 0,
            tables: vec![QueryTable {
                table: mi,
                alias: "mi".into(),
            }],
            joins: vec![],
            filters: vec![
                Filter {
                    qt: 0,
                    col: it_col,
                    pred: Predicate::Cmp(CmpOp::Eq, 3),
                },
                Filter {
                    qt: 0,
                    col: info_col,
                    pred: Predicate::Between(300, 319),
                },
            ],
        };
        let got = est.cardinality(&q, TableMask::single(0));
        // Ground truth: all rows with info_type_id = 3 satisfy both.
        let tbl = db.table(mi);
        let truth = (0..tbl.num_rows())
            .filter(|&r| tbl.value(r, it_col) == 3 && (300..=319).contains(&tbl.value(r, info_col)))
            .count() as f64;
        assert!(truth >= 10.0, "need correlated rows, got {truth}");
        assert!(
            got < truth / 3.0,
            "independence should underestimate: est {got} vs truth {truth}"
        );
    }

    #[test]
    fn fk_join_estimate_is_sane() {
        // title JOIN movie_companies: true cardinality = |mc| (every mc row
        // matches exactly one title).
        let db = db();
        let est = HistogramEstimator::new(&db);
        let t = db.catalog().table_id("title").unwrap();
        let mc = db.catalog().table_id("movie_companies").unwrap();
        let movie_id = db.catalog().table(mc).column_id("movie_id").unwrap();
        let q = Query {
            id: 0,
            name: "j".into(),
            template: 0,
            tables: vec![
                QueryTable {
                    table: t,
                    alias: "t".into(),
                },
                QueryTable {
                    table: mc,
                    alias: "mc".into(),
                },
            ],
            joins: vec![JoinEdge {
                left_qt: 0,
                left_col: 0,
                right_qt: 1,
                right_col: movie_id,
            }],
            filters: vec![],
        };
        let got = est.cardinality(&q, TableMask::all(2));
        let truth = db.table(mc).num_rows() as f64;
        let ratio = got / truth;
        assert!(
            (0.2..5.0).contains(&ratio),
            "estimate {got} vs truth {truth}"
        );
    }

    #[test]
    fn selectivity_is_fraction() {
        let db = db();
        let est = HistogramEstimator::new(&db);
        let q = q_title_year(&db, 1990, 2005);
        let s = est.selectivity(&q, 0);
        assert!((0.0..=1.0).contains(&s));
        assert!(s > 0.01, "selectivity {s} too small");
    }

    #[test]
    fn eq_on_absent_value_is_tiny() {
        let db = db();
        let est = HistogramEstimator::new(&db);
        let t = db.catalog().table_id("title").unwrap();
        let kind = db.catalog().table(t).column_id("kind_id").unwrap();
        let q = Query {
            id: 0,
            name: "absent".into(),
            template: 0,
            tables: vec![QueryTable {
                table: t,
                alias: "t".into(),
            }],
            joins: vec![],
            filters: vec![Filter {
                qt: 0,
                col: kind,
                pred: Predicate::Cmp(CmpOp::Eq, 9999),
            }],
        };
        let got = est.cardinality(&q, TableMask::single(0));
        assert!(got < 10.0, "absent value estimated {got}");
    }
}
