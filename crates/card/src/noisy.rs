//! Noise injection for the §10 robustness study.
//!
//! The paper: *"We tried making them even more inaccurate, by dividing
//! them by random noises (a median noise factor of 5x), and saw little
//! impact on Balsa's plans."* [`NoisyEstimator`] wraps any estimator and
//! divides each subset estimate by a log-normal noise factor whose median
//! is configurable. Noise is deterministic per `(query, mask)` so the
//! estimator stays a pure function.

use crate::estimator::CardEstimator;
use balsa_query::{Query, TableMask};

/// Wraps an estimator, dividing its estimates by random noise factors.
pub struct NoisyEstimator<E> {
    inner: E,
    /// Median of the noise factor distribution (paper uses ~5x).
    median_factor: f64,
    /// Log-space standard deviation of the noise.
    sigma: f64,
    seed: u64,
}

impl<E: CardEstimator> NoisyEstimator<E> {
    /// Wraps `inner`, dividing estimates by `LogNormal(ln median, sigma)`
    /// samples keyed on `(seed, query id, mask)`.
    pub fn new(inner: E, median_factor: f64, sigma: f64, seed: u64) -> Self {
        assert!(median_factor > 0.0);
        Self {
            inner,
            median_factor,
            sigma,
            seed,
        }
    }

    /// Deterministic standard-normal sample from a 64-bit key
    /// (splitmix64 + Box-Muller).
    fn std_normal(key: u64) -> f64 {
        fn splitmix(mut x: u64) -> u64 {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
            x ^ (x >> 31)
        }
        let a = splitmix(key);
        let b = splitmix(a);
        // Uniform in (0, 1].
        let u1 = ((a >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
        let u2 = (b >> 11) as f64 / (1u64 << 53) as f64;
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    fn noise_factor(&self, query: &Query, mask: TableMask) -> f64 {
        let key = self
            .seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((query.id as u64) << 32)
            .wrapping_add(mask.0 as u64);
        let z = Self::std_normal(key);
        (self.median_factor.ln() + self.sigma * z).exp()
    }
}

impl<E: CardEstimator> CardEstimator for NoisyEstimator<E> {
    fn cardinality(&self, query: &Query, mask: TableMask) -> f64 {
        let base = self.inner.cardinality(query, mask);
        (base / self.noise_factor(query, mask)).max(1e-6)
    }

    fn base_rows(&self, query: &Query, qt: usize) -> f64 {
        self.inner.base_rows(query, qt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balsa_query::QueryTable;

    /// A constant estimator for testing the wrapper in isolation.
    struct Const(f64);
    impl CardEstimator for Const {
        fn cardinality(&self, _q: &Query, _m: TableMask) -> f64 {
            self.0
        }
        fn base_rows(&self, _q: &Query, _qt: usize) -> f64 {
            self.0
        }
    }

    fn query(id: u32) -> Query {
        Query {
            id,
            name: format!("q{id}"),
            template: 0,
            tables: vec![QueryTable {
                table: 0,
                alias: "a".into(),
            }],
            joins: vec![],
            filters: vec![],
        }
    }

    #[test]
    fn noise_is_deterministic() {
        let e = NoisyEstimator::new(Const(1000.0), 5.0, 1.0, 7);
        let q = query(3);
        let m = TableMask::single(0);
        assert_eq!(e.cardinality(&q, m), e.cardinality(&q, m));
    }

    #[test]
    fn noise_varies_across_queries_and_masks() {
        let e = NoisyEstimator::new(Const(1000.0), 5.0, 1.0, 7);
        let a = e.cardinality(&query(1), TableMask::single(0));
        let b = e.cardinality(&query(2), TableMask::single(0));
        assert_ne!(a, b);
    }

    #[test]
    fn median_noise_factor_approximately_holds() {
        let e = NoisyEstimator::new(Const(1000.0), 5.0, 1.0, 11);
        let mut factors: Vec<f64> = (0..2000u32)
            .map(|i| 1000.0 / e.cardinality(&query(i), TableMask::single(0)))
            .collect();
        factors.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = factors[factors.len() / 2];
        assert!(
            (2.5..10.0).contains(&median),
            "median noise factor {median}, expected ~5"
        );
    }

    #[test]
    fn base_rows_passthrough() {
        let e = NoisyEstimator::new(Const(123.0), 5.0, 1.0, 7);
        assert_eq!(e.base_rows(&query(0), 0), 123.0);
    }
}
