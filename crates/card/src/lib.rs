//! # balsa-card
//!
//! Cardinality estimation for balsa-rs.
//!
//! The paper uses PostgreSQL's estimator — per-column histograms, an
//! independence assumption across predicates and joins, and "magic
//! constants" for complex filters [Leis et al. 2015] — to drive its
//! minimal simulator (§3.3). [`HistogramEstimator`] reimplements that
//! textbook method on top of the statistics collected by
//! `balsa-storage`, and therefore exhibits the same failure mode the
//! paper relies on: orders-of-magnitude errors on correlated predicates.
//!
//! [`NoisyEstimator`] reproduces the §10 robustness study ("dividing them
//! by random noises, a median noise factor of 5x").
//!
//! The trait [`CardEstimator`] is also implemented by the execution
//! engine's true-cardinality oracle, so cost models can run on either
//! estimated or true cardinalities.

pub mod estimator;
pub mod histogram;
pub mod noisy;

pub use estimator::{CardEstimator, MemoEstimator, SubsetCard};
pub use histogram::HistogramEstimator;
pub use noisy::NoisyEstimator;
