//! The estimator abstraction shared by cost models and the engine.

use balsa_query::{Query, TableMask};
use parking_lot::Mutex;
use std::collections::HashMap;

/// A cardinality for one table subset of one query.
pub type SubsetCard = f64;

/// Estimates the number of rows produced by joining the tables in `mask`
/// (with all applicable filters and join predicates applied).
///
/// Implementations:
/// * [`crate::HistogramEstimator`] — PostgreSQL-style estimates.
/// * [`crate::NoisyEstimator`] — a wrapper injecting multiplicative noise.
/// * `balsa_engine::TrueCards` — the ground-truth oracle backed by actual
///   execution.
pub trait CardEstimator: Send + Sync {
    /// Estimated (or true) cardinality of the join of `mask` within `query`.
    ///
    /// `mask` must be non-empty and a subset of `query.all_mask()`.
    /// Results are clamped to be at least `1e-6` so cost models can take
    /// ratios/logs safely.
    fn cardinality(&self, query: &Query, mask: TableMask) -> SubsetCard;

    /// Estimated selectivity of the base-table filters on query-table
    /// `qt`, as a fraction of the table's rows. Used by Balsa's query
    /// featurization (§7: "a vector [table -> selectivity]").
    fn selectivity(&self, query: &Query, qt: usize) -> f64 {
        let single = self.cardinality(query, TableMask::single(qt));
        let base = self.base_rows(query, qt);
        if base <= 0.0 {
            0.0
        } else {
            (single / base).clamp(0.0, 1.0)
        }
    }

    /// Unfiltered row count of query-table `qt`.
    fn base_rows(&self, query: &Query, qt: usize) -> f64;
}

/// A per-query memoizing wrapper around a [`CardEstimator`].
///
/// Planners and scorers ask for the same subset cardinalities thousands
/// of times; this caches them by [`TableMask`]. The cache is keyed by
/// mask only, so one `MemoEstimator` must serve exactly one query.
pub struct MemoEstimator<'a> {
    inner: &'a dyn CardEstimator,
    cards: Mutex<HashMap<u32, f64>>,
}

impl<'a> MemoEstimator<'a> {
    /// Wraps `inner` for use with a single query.
    pub fn new(inner: &'a dyn CardEstimator) -> Self {
        Self {
            inner,
            cards: Mutex::new(HashMap::new()),
        }
    }
}

impl CardEstimator for MemoEstimator<'_> {
    fn cardinality(&self, query: &Query, mask: TableMask) -> f64 {
        if let Some(&c) = self.cards.lock().get(&mask.0) {
            return c;
        }
        let c = self.inner.cardinality(query, mask);
        self.cards.lock().insert(mask.0, c);
        c
    }

    fn base_rows(&self, query: &Query, qt: usize) -> f64 {
        self.inner.base_rows(query, qt)
    }
}
