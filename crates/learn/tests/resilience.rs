//! Chaos-engineering contracts of the training loop: seeded fault
//! injection is deterministic and reproducible, the zero-fault path is
//! bit-identical to a run with no retry machinery armed, exhausted
//! retries honor the configured policy, the expert-DP fallback fires
//! when the failure window trips, and a run killed mid-training resumes
//! from its atomic checkpoint to the *bit-identical* final checkpoint
//! of the uninterrupted run.
//!
//! Everything asserted here is on deterministic state (weights,
//! curves, counters, checkpoint bytes) — never on measured walls,
//! which are excluded from checkpoints by design.

use balsa_engine::{ExecutionEnv, ExhaustedPolicy, FaultConfig, RetryPolicy};
use balsa_learn::{train_loop, CheckpointData, ModelKind, SgdConfig, TrainConfig};
use balsa_query::workloads::job_workload;
use balsa_query::Split;
use balsa_storage::{mini_imdb, DataGenConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn small_db() -> Arc<balsa_storage::Database> {
    Arc::new(mini_imdb(DataGenConfig {
        scale: 0.02,
        ..Default::default()
    }))
}

fn small_split() -> Split {
    Split {
        train: (0..8).collect(),
        test: (8..11).collect(),
    }
}

fn base_cfg(kind: ModelKind, iterations: usize) -> TrainConfig {
    TrainConfig {
        model: kind,
        beam_width: 3,
        sim_random_plans: 2,
        iterations,
        pretrain_sgd: SgdConfig {
            epochs: 4,
            ..SgdConfig::default()
        },
        finetune_sgd: SgdConfig {
            epochs: 2,
            ..SgdConfig::default()
        },
        ..TrainConfig::default()
    }
}

/// Aggressive-but-survivable seeded fault mix (~30% per attempt).
fn chaos() -> FaultConfig {
    FaultConfig {
        seed: 11,
        transient: 0.15,
        crash: 0.05,
        spike: 0.05,
        spike_factor: 3.0,
        hang: 0.05,
        ..FaultConfig::default()
    }
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "balsa_resilience_{name}_{}.ckpt",
        std::process::id()
    ))
}

/// Per-iteration curve bits (no wall-derived values) plus the final
/// model parameters.
type RunDigest = (Vec<(u64, u64, u64, u64)>, Vec<f64>);

/// Deterministic fingerprint of a run.
fn run_digest(o: &balsa_learn::TrainOutcome) -> RunDigest {
    let curve = o
        .trajectory
        .iter()
        .map(|it| {
            (
                it.test_median_secs.to_bits(),
                it.val_median_secs.to_bits(),
                it.val_geo_mean_secs.to_bits(),
                it.fit_mse.to_bits(),
            )
        })
        .collect();
    (curve, o.model.params())
}

/// Fault rate zero is the *identity* configuration: arming a zeroed
/// injector and a multi-attempt retry policy must be bit-identical —
/// curves, labels (via the curves and counters), and weights — to a
/// run with no injector and single-attempt execution, for both model
/// families. Guards the `execute_labeled_retry_uncharged` no-fault
/// fast path and the `exec_secs`/`charge_raw(0.0)` folds.
#[test]
fn zero_fault_rate_is_bit_identical_to_unarmed_run() {
    let db = small_db();
    let w = job_workload(db.catalog(), 7);
    let split = small_split();
    for kind in [ModelKind::Linear, ModelKind::TreeConv] {
        // Reference: no injector, retry machinery reduced to one attempt.
        let mut ref_cfg = base_cfg(kind, 2);
        ref_cfg.retry = RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        };
        let env = ExecutionEnv::postgres_sim(db.clone());
        let reference = train_loop(&db, &env, &w, &split, &ref_cfg);

        // Zeroed injector + default (3-attempt) retry policy.
        let cfg = base_cfg(kind, 2);
        let env = ExecutionEnv::postgres_sim(db.clone()).with_faults(FaultConfig::default());
        let armed = train_loop(&db, &env, &w, &split, &cfg);

        assert_eq!(
            run_digest(&reference),
            run_digest(&armed),
            "{kind:?}: zero-fault armed run diverges from unarmed reference"
        );
        assert_eq!(armed.resilience.faults_injected, 0);
        assert_eq!(armed.resilience.retries, 0);
        assert_eq!(armed.resilience.abandoned, 0);
        assert_eq!(armed.resilience.fallback_iterations, 0);
        assert_eq!(armed.resilience.backoff_secs_charged, 0.0);
    }
}

/// Same `FaultConfig` + seed twice → identical fault sequence, labels,
/// curves, weights, and **checkpoint bytes** — and the chaos actually
/// bites (nonzero injected faults and retries), for both families.
#[test]
fn chaos_runs_are_reproducible_with_identical_checkpoints() {
    let db = small_db();
    let w = job_workload(db.catalog(), 7);
    let split = small_split();
    for kind in [ModelKind::Linear, ModelKind::TreeConv] {
        let run = |tag: &str| {
            let path = tmp(&format!("repro_{kind:?}_{tag}"));
            let mut cfg = base_cfg(kind, 2);
            cfg.checkpoint_every = 1;
            cfg.checkpoint_path = Some(path.clone());
            let env = ExecutionEnv::postgres_sim(db.clone()).with_faults(chaos());
            let o = train_loop(&db, &env, &w, &split, &cfg);
            let bytes = std::fs::read_to_string(&path).expect("checkpoint written");
            let _ = std::fs::remove_file(&path);
            (run_digest(&o), o.resilience, bytes)
        };
        let (digest_a, res_a, bytes_a) = run("a");
        let (digest_b, res_b, bytes_b) = run("b");
        assert_eq!(digest_a, digest_b, "{kind:?}: chaos run not reproducible");
        assert_eq!(res_a, res_b, "{kind:?}: fault sequences diverge");
        assert_eq!(bytes_a, bytes_b, "{kind:?}: checkpoint bytes diverge");
        assert!(
            res_a.faults_injected > 0,
            "{kind:?}: chaos config injected nothing — the test exercised no fault path"
        );
        assert!(res_a.retries > 0, "{kind:?}: no retry ever fired");
        assert!(
            res_a.backoff_secs_charged > 0.0,
            "{kind:?}: retries charged no backoff wall"
        );
        // The checkpoint itself decodes and carries the same counters.
        let data = CheckpointData::decode(&bytes_a).expect("valid checkpoint");
        assert_eq!(data.resilience, res_a);
    }
}

/// Kill-and-resume bit identity, under fault injection: a run halted
/// after iteration 1 and resumed from its checkpoint produces the
/// bit-identical final checkpoint (and weights) of the uninterrupted
/// run. Guards RNG-state capture, buffer rebuild from compact plan
/// text, env cache snapshot/restore, and the excluded-walls design
/// (nothing wall-derived may leak into checkpoint bytes).
#[test]
fn kill_and_resume_reproduces_uninterrupted_checkpoint() {
    let db = small_db();
    let w = job_workload(db.catalog(), 7);
    let split = small_split();
    let iterations = 3;

    // Uninterrupted reference run.
    let path_full = tmp("full");
    let mut cfg = base_cfg(ModelKind::Linear, iterations);
    cfg.checkpoint_every = 1;
    cfg.checkpoint_path = Some(path_full.clone());
    let env = ExecutionEnv::postgres_sim(db.clone()).with_faults(chaos());
    let full = train_loop(&db, &env, &w, &split, &cfg);
    let full_bytes = std::fs::read_to_string(&path_full).expect("final checkpoint");

    // Killed run: same config, halted right after iteration 1's
    // checkpoint hits disk.
    let path_kill = tmp("killed");
    let mut cfg_kill = cfg.clone();
    cfg_kill.checkpoint_path = Some(path_kill.clone());
    cfg_kill.halt_after = Some(1);
    let env = ExecutionEnv::postgres_sim(db.clone()).with_faults(chaos());
    let _ = train_loop(&db, &env, &w, &split, &cfg_kill);
    let mid = CheckpointData::load(&path_kill).expect("mid-run checkpoint");
    assert_eq!(mid.iteration, 1, "halt_after=1 must checkpoint iteration 1");

    // Resumed run: fresh process state, same fault config, picks up at
    // iteration 2 and finishes.
    let path_resume = tmp("resumed");
    let mut cfg_resume = cfg.clone();
    cfg_resume.checkpoint_path = Some(path_resume.clone());
    cfg_resume.resume_from = Some(path_kill.clone());
    let env = ExecutionEnv::postgres_sim(db.clone()).with_faults(chaos());
    let resumed = train_loop(&db, &env, &w, &split, &cfg_resume);
    let resumed_bytes = std::fs::read_to_string(&path_resume).expect("final checkpoint");

    assert_eq!(
        full_bytes, resumed_bytes,
        "resumed final checkpoint differs from the uninterrupted run's"
    );
    assert_eq!(
        full.model.params(),
        resumed.model.params(),
        "resumed selected weights diverge"
    );
    assert_eq!(full.resilience, resumed.resilience);
    assert_eq!(full.trajectory.len(), resumed.trajectory.len());
    // Replayed (pre-resume) iterations carry NaN sim-hours — walls are
    // not serialized — while post-resume ones are measured fresh.
    assert!(resumed.trajectory[1].sim_hours.is_nan());
    assert!(!resumed.trajectory[iterations].sim_hours.is_nan());

    for p in [path_full, path_kill, path_resume] {
        let _ = std::fs::remove_file(&p);
    }
}

/// Exhausted retries under [`ExhaustedPolicy::Drop`] abandon the
/// sample (counted, never silently lost) and training still completes.
#[test]
fn exhausted_drop_policy_abandons_samples_and_completes() {
    let db = small_db();
    let w = job_workload(db.catalog(), 7);
    let split = small_split();
    let mut cfg = base_cfg(ModelKind::Linear, 2);
    cfg.retry = RetryPolicy {
        max_attempts: 1,
        exhausted: ExhaustedPolicy::Drop,
        ..RetryPolicy::default()
    };
    let env = ExecutionEnv::postgres_sim(db.clone()).with_faults(chaos());
    let o = train_loop(&db, &env, &w, &split, &cfg);
    assert!(o.model.is_fitted());
    assert_eq!(o.trajectory.len(), cfg.iterations + 1);
    assert!(
        o.resilience.abandoned > 0,
        "single-attempt Drop under ~30% faults must abandon something"
    );
    assert_eq!(
        o.resilience.retries, 0,
        "max_attempts=1 must never count a retry"
    );
    let abandoned: u64 = o.trajectory.iter().map(|it| it.abandoned).sum();
    assert_eq!(
        abandoned, o.resilience.abandoned,
        "per-iteration counters must add up"
    );
}

/// Graceful degradation: once the sliding failure window trips the
/// threshold, the iteration plans with the expert DP planner and the
/// fallback is recorded — in `ResilienceStats` and on the trajectory —
/// never silent. A window of 1 with a threshold below zero trips from
/// the second fine-tuning iteration on.
#[test]
fn fallback_to_expert_planning_fires_and_is_recorded() {
    let db = small_db();
    let w = job_workload(db.catalog(), 7);
    let split = small_split();
    let mut cfg = base_cfg(ModelKind::Linear, 3);
    cfg.fallback_window = 1;
    cfg.fallback_threshold = -1.0;
    let env = ExecutionEnv::postgres_sim(db.clone());
    let o = train_loop(&db, &env, &w, &split, &cfg);
    assert!(o.model.is_fitted());
    assert_eq!(
        o.resilience.fallback_iterations, 2,
        "window fills after iteration 1, so iterations 2 and 3 fall back"
    );
    assert!(!o.trajectory[1].fallback, "no window yet at iteration 1");
    assert!(o.trajectory[2].fallback && o.trajectory[3].fallback);
    // Disabled threshold (the default) never falls back on the same run.
    let cfg_off = base_cfg(ModelKind::Linear, 3);
    let env = ExecutionEnv::postgres_sim(db.clone());
    let off = train_loop(&db, &env, &w, &split, &cfg_off);
    assert_eq!(off.resilience.fallback_iterations, 0);
    assert!(off.trajectory.iter().all(|it| !it.fallback));
}
