//! End-to-end integration of the learning subsystem:
//! featurization → simulation pretraining → real-execution fine-tuning
//! with epsilon-greedy exploration → validation-selected checkpoint.
//!
//! Covers the PR's satellite test requirements on top of the module unit
//! tests: featurization invariants across the real workload (identical
//! features for fingerprint-equal subplans, stable length, left-deep and
//! bushy coverage), experience-buffer semantics driven by real labeled
//! executions (censored lower bounds, best-label dedup), and a smoke run
//! of `train_loop` on a reduced split.

use balsa_card::HistogramEstimator;
use balsa_cost::OpWeights;
use balsa_engine::{query_key, ExecutionEnv};
use balsa_learn::{
    evaluate_expert_baseline, evaluate_learned, median, train_loop, Experience, ExperienceBuffer,
    Featurizer, LabelSource, ModelKind, SgdConfig, TrainConfig,
};
use balsa_query::workloads::job_workload;
use balsa_query::Split;
use balsa_search::{random_plan, SearchMode};
use balsa_storage::{mini_imdb, DataGenConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

fn small_db() -> Arc<balsa_storage::Database> {
    Arc::new(mini_imdb(DataGenConfig {
        scale: 0.02,
        ..Default::default()
    }))
}

/// Featurization invariants over the real workload: fixed length for
/// every subplan of every query, identical vectors for fingerprint-equal
/// subplans, and coverage of both left-deep and bushy shapes.
#[test]
fn featurization_invariants_across_workload() {
    let db = small_db();
    let w = job_workload(db.catalog(), 7);
    let f = Featurizer::new(db.clone(), OpWeights::postgres_like(), true);
    let est = HistogramEstimator::new(&db);
    let d = f.dim();
    let mut rng = SmallRng::seed_from_u64(11);
    let mut saw_left_deep = false;
    let mut saw_bushy = false;
    for q in w.queries.iter().take(20) {
        for mode in [SearchMode::LeftDeep, SearchMode::Bushy] {
            let plan = random_plan(&db, q, mode, &mut rng);
            saw_left_deep |= plan.is_left_deep();
            saw_bushy |= !plan.is_left_deep();
            for sub in plan.subplans() {
                let x = f.featurize(q, &sub, &est);
                assert_eq!(x.len(), d, "{}: unstable feature length", q.name);
                assert!(x.iter().all(|v| v.is_finite()), "{}: non-finite", q.name);
                // Re-featurizing a structurally identical subplan gives
                // identical features.
                let again = f.featurize(q, &sub, &est);
                assert_eq!(x, again);
            }
        }
    }
    assert!(saw_left_deep && saw_bushy, "both shapes must be covered");
}

/// Buffer semantics fed by *real* labeled executions: a timeout-censored
/// root label is kept as a lower bound, then superseded by the completed
/// run; completed reruns keep the best observed latency.
#[test]
fn experience_buffer_with_real_labeled_executions() {
    let db = small_db();
    let w = job_workload(db.catalog(), 7);
    let q = w.queries.iter().find(|q| q.num_tables() >= 5).unwrap();
    let f = Featurizer::new(db.clone(), OpWeights::postgres_like(), true);
    let est = HistogramEstimator::new(&db);
    let mut rng = SmallRng::seed_from_u64(3);
    let plan = random_plan(&db, q, SearchMode::Bushy, &mut rng);
    let full = ExecutionEnv::postgres_sim(db.clone())
        .execute(q, &plan, None)
        .unwrap();

    let mut buffer = ExperienceBuffer::new();
    let record = |buffer: &mut ExperienceBuffer, labels: Vec<balsa_engine::SubtreeObs>| {
        for l in labels {
            buffer.record(Experience {
                query_key: query_key(q),
                fingerprint: l.plan.fingerprint(),
                features: f.featurize(q, &l.plan, &est),
                plan: l.plan.clone(),
                label_secs: l.latency_secs,
                censored: l.censored,
                source: LabelSource::Real,
            });
        }
    };

    // 1. Budgeted run: root label is a censored lower bound at the budget.
    let env = ExecutionEnv::postgres_sim(db.clone());
    let budget = full.latency_secs / 2.0;
    let (out, labels) = env.execute_labeled(q, &plan, Some(budget)).unwrap();
    assert!(out.timed_out);
    record(&mut buffer, labels);
    let root = buffer
        .get(query_key(q), plan.fingerprint(), LabelSource::Real)
        .expect("root experience recorded");
    assert!(root.censored, "timeout label must be censored");
    assert_eq!(root.label_secs, budget, "lower bound kept at the budget");

    // 2. Unbudgeted rerun completes: the censored bound is superseded.
    let (out2, labels2) = env.execute_labeled(q, &plan, None).unwrap();
    assert!(!out2.timed_out);
    record(&mut buffer, labels2);
    let root = buffer
        .get(query_key(q), plan.fingerprint(), LabelSource::Real)
        .unwrap();
    assert!(!root.censored);
    assert_eq!(root.label_secs, out2.latency_secs);

    // 3. A worse (hypothetical) completed label does not displace it.
    let mut stale = root.clone();
    stale.label_secs *= 10.0;
    assert!(!buffer.record(stale));
    assert_eq!(
        buffer
            .get(query_key(q), plan.fingerprint(), LabelSource::Real)
            .unwrap()
            .label_secs,
        out2.latency_secs,
        "best observed latency retained"
    );
}

/// Smoke run of the two-phase driver on a reduced split: the trajectory
/// has the right shape, the clock advances monotonically, experiences
/// accumulate, and the selected learned planner lands within a sane
/// factor of the expert baseline on held-out queries.
#[test]
fn train_loop_smoke_end_to_end() {
    let db = small_db();
    let w = job_workload(db.catalog(), 7);
    // A reduced split keeps the test fast: 24 train / 6 test queries.
    let full = Split::random(w.queries.len(), 19, 42);
    let split = Split {
        train: full.train.into_iter().take(24).collect(),
        test: full.test.into_iter().take(6).collect(),
    };
    let cfg = TrainConfig {
        beam_width: 5,
        sim_random_plans: 4,
        iterations: 2,
        pretrain_sgd: SgdConfig {
            epochs: 15,
            ..SgdConfig::default()
        },
        finetune_sgd: SgdConfig {
            epochs: 8,
            ..SgdConfig::default()
        },
        ..TrainConfig::default()
    };
    let env = ExecutionEnv::postgres_sim(db.clone());
    let outcome = train_loop(&db, &env, &w, &split, &cfg);

    assert_eq!(outcome.trajectory.len(), cfg.iterations + 1);
    assert!(outcome.model.is_fitted());
    let mut last_hours = 0.0;
    for (i, it) in outcome.trajectory.iter().enumerate() {
        assert_eq!(it.iteration, i);
        assert!(it.sim_hours >= last_hours, "clock must be monotone");
        last_hours = it.sim_hours;
        assert!(it.test_median_secs.is_finite() && it.test_median_secs > 0.0);
        assert!(it.val_median_secs.is_finite() && it.val_median_secs > 0.0);
        if i > 0 {
            assert!(it.train_median_secs.is_finite());
            assert!(it.buffer_real > 0, "fine-tuning must record experience");
        }
    }
    assert!(outcome.buffer.count(LabelSource::Simulated) > 0);
    assert!(outcome.buffer.count(LabelSource::Real) > 0);

    // The selected model is sane on held-out queries: within 10x of the
    // expert baseline even in this tiny smoke configuration (the full
    // benchmark asserts parity; see BENCH_learning.json).
    let eval_env = ExecutionEnv::postgres_sim(db.clone());
    let est = HistogramEstimator::new(&db);
    let featurizer = Featurizer::new(db.clone(), env.profile().weights, env.profile().bushy_hints);
    let learned = evaluate_learned(
        &db,
        &eval_env,
        &featurizer,
        &*outcome.model,
        &est,
        &w,
        &split.test,
        cfg.mode,
        cfg.beam_width,
        balsa_search::PlanBudget::UNLIMITED,
        &balsa_search::WorkerPool::new(1),
    )
    .expect("connected workload must plan");
    let expert = evaluate_expert_baseline(
        &db,
        &eval_env,
        &w,
        &split.test,
        cfg.mode,
        balsa_search::PlanBudget::UNLIMITED,
        &balsa_search::WorkerPool::new(1),
    )
    .expect("connected workload must plan");
    let (ml, me) = (median(&learned), median(&expert));
    assert!(
        ml <= me * 10.0,
        "learned median {ml} catastrophically above expert {me}"
    );
}

/// Satellite of the resource-governance PR: a deliberately disconnected
/// query surfaces [`balsa_search::PlanError::DisconnectedGraph`] as an
/// `Err` through `evaluate_learned` — not a panic, not a silent skip.
#[test]
fn disconnected_query_errors_through_evaluate_learned() {
    let db = small_db();
    let w = job_workload(db.catalog(), 7);
    // Strip every join edge off a real multi-table query: n >= 2 tables
    // with no edges is the canonical disconnected join graph.
    let mut q = w
        .queries
        .iter()
        .find(|q| q.num_tables() >= 3)
        .expect("workload has multi-table queries")
        .clone();
    q.joins.clear();
    q.name = "deliberately_disconnected".into();
    let broken = balsa_query::workloads::Workload {
        kind: w.kind,
        queries: vec![q],
    };

    let eval_env = ExecutionEnv::postgres_sim(db.clone());
    let est = HistogramEstimator::new(&db);
    let featurizer = Featurizer::new(db.clone(), eval_env.profile().weights, true);
    let model = balsa_learn::make_model(ModelKind::Linear, &featurizer);
    for mode in [SearchMode::Bushy, SearchMode::LeftDeep] {
        let res = evaluate_learned(
            &db,
            &eval_env,
            &featurizer,
            &*model,
            &est,
            &broken,
            &[0],
            mode,
            4,
            balsa_search::PlanBudget::UNLIMITED,
            &balsa_search::WorkerPool::new(1),
        );
        match res {
            Err(balsa_search::PlanError::DisconnectedGraph { query }) => {
                assert_eq!(query, "deliberately_disconnected");
            }
            other => panic!("{mode:?}: expected DisconnectedGraph, got {other:?}"),
        }
        let expert = evaluate_expert_baseline(
            &db,
            &eval_env,
            &broken,
            &[0],
            mode,
            balsa_search::PlanBudget::UNLIMITED,
            &balsa_search::WorkerPool::new(1),
        );
        assert!(
            matches!(
                expert,
                Err(balsa_search::PlanError::DisconnectedGraph { .. })
            ),
            "{mode:?}: expert baseline must surface the same error"
        );
    }
}

/// Censored labels distinguish the root from interior subtrees: with a
/// budget between an interior subtree's latency and the root's, the
/// root label is a censored lower bound at the budget while completed
/// interior subtrees keep exact uncensored labels — and the buffer
/// merges both correctly when a later unbudgeted run completes.
#[test]
fn censoring_at_root_vs_interior_subtree() {
    let db = small_db();
    let w = job_workload(db.catalog(), 7);
    let q = w.queries.iter().find(|q| q.num_tables() >= 5).unwrap();
    let f = Featurizer::new(db.clone(), OpWeights::postgres_like(), true);
    let est = HistogramEstimator::new(&db);
    let mut rng = SmallRng::seed_from_u64(17);
    let plan = random_plan(&db, q, SearchMode::Bushy, &mut rng);

    // Uncensored reference labels for every subtree.
    let (full, reference) = ExecutionEnv::postgres_sim(db.clone())
        .execute_labeled(q, &plan, None)
        .unwrap();
    assert!(!full.timed_out);
    // Pick a budget above the cheapest interior subtree but below the
    // root, so the cut lands strictly inside the tree.
    let cheapest_join = reference
        .iter()
        .filter(|l| !l.plan.is_scan() && l.latency_secs < full.latency_secs)
        .map(|l| l.latency_secs)
        .fold(f64::MAX, f64::min);
    let budget = (cheapest_join + full.latency_secs) / 2.0;
    assert!(budget < full.latency_secs);

    let env = ExecutionEnv::postgres_sim(db.clone());
    let (out, labels) = env.execute_labeled(q, &plan, Some(budget)).unwrap();
    assert!(out.timed_out);

    let mut buffer = ExperienceBuffer::new();
    let record = |buffer: &mut ExperienceBuffer, labels: &[balsa_engine::SubtreeObs]| {
        for l in labels {
            buffer.record(Experience {
                query_key: query_key(q),
                fingerprint: l.plan.fingerprint(),
                features: f.featurize(q, &l.plan, &est),
                plan: l.plan.clone(),
                label_secs: l.latency_secs,
                censored: l.censored,
                source: LabelSource::Real,
            });
        }
    };
    record(&mut buffer, &labels);

    // Root: censored at the budget.
    let root = buffer
        .get(query_key(q), plan.fingerprint(), LabelSource::Real)
        .unwrap();
    assert!(root.censored, "root must be censored");
    assert_eq!(root.label_secs, budget);
    // Interior: subtrees cheaper than the budget completed with their
    // exact reference labels; ones above it are censored bounds.
    let mut saw_uncensored_interior = false;
    for r in &reference {
        let stored = buffer
            .get(query_key(q), r.plan.fingerprint(), LabelSource::Real)
            .expect("every subtree labeled");
        if r.latency_secs <= budget {
            assert!(!stored.censored, "completed subtree censored: {}", r.plan);
            assert_eq!(stored.label_secs, r.latency_secs);
            saw_uncensored_interior |= !r.plan.is_scan();
        } else {
            assert!(stored.censored);
            assert_eq!(stored.label_secs, budget);
        }
    }
    assert!(
        saw_uncensored_interior,
        "budget must land inside the tree (some join completed)"
    );

    // A later unbudgeted run supersedes every censored bound with the
    // exact label and leaves completed ones at their best values.
    let (_, labels2) = env.execute_labeled(q, &plan, None).unwrap();
    record(&mut buffer, &labels2);
    for r in &reference {
        let stored = buffer
            .get(query_key(q), r.plan.fingerprint(), LabelSource::Real)
            .unwrap();
        assert!(!stored.censored, "bound not superseded: {}", r.plan);
        assert_eq!(stored.label_secs, r.latency_secs);
    }
}

/// Training is deterministic given the seed — for both model families:
/// same config, same database, identical validation curves AND
/// bit-identical checkpoint weights. Guards the vendored rand shim, the
/// buffer's sorted extraction, and SGD ordering.
#[test]
fn train_loop_is_deterministic_with_identical_checkpoints() {
    let db = small_db();
    let w = job_workload(db.catalog(), 7);
    let split = Split {
        train: (0..8).collect(),
        test: (8..11).collect(),
    };
    for kind in [ModelKind::Linear, ModelKind::TreeConv] {
        let cfg = TrainConfig {
            model: kind,
            beam_width: 3,
            sim_random_plans: 2,
            iterations: 1,
            pretrain_sgd: SgdConfig {
                epochs: 4,
                ..SgdConfig::default()
            },
            finetune_sgd: SgdConfig {
                epochs: 2,
                ..SgdConfig::default()
            },
            ..TrainConfig::default()
        };
        let run = || {
            let env = ExecutionEnv::postgres_sim(db.clone());
            let o = train_loop(&db, &env, &w, &split, &cfg);
            let curve: Vec<(f64, f64, f64)> = o
                .trajectory
                .iter()
                .map(|it| (it.test_median_secs, it.val_median_secs, it.fit_mse))
                .collect();
            (curve, o.model.params())
        };
        let (curve_a, params_a) = run();
        let (curve_b, params_b) = run();
        assert_eq!(curve_a, curve_b, "{kind:?}: validation curves diverge");
        assert_eq!(params_a, params_b, "{kind:?}: checkpoint weights diverge");
        assert!(!params_a.is_empty());
    }
}

/// Parallel planning determinism: `train_loop` on the worker pool
/// produces **bit-identical** checkpoint parameters to the serial run,
/// for both model families. Per-query exploration RNGs plus the pool's
/// deterministic merge order make thread count a pure wall-clock knob.
#[test]
fn parallel_train_loop_matches_serial_checkpoints_bitwise() {
    let db = small_db();
    let w = job_workload(db.catalog(), 7);
    let split = Split {
        train: (0..8).collect(),
        test: (8..11).collect(),
    };
    for kind in [ModelKind::Linear, ModelKind::TreeConv] {
        let run = |threads: usize| {
            let cfg = TrainConfig {
                model: kind,
                beam_width: 3,
                sim_random_plans: 2,
                iterations: 2,
                planning_threads: threads,
                training_threads: threads,
                pretrain_sgd: SgdConfig {
                    epochs: 4,
                    ..SgdConfig::default()
                },
                finetune_sgd: SgdConfig {
                    epochs: 2,
                    ..SgdConfig::default()
                },
                ..TrainConfig::default()
            };
            let env = ExecutionEnv::postgres_sim(db.clone());
            let o = train_loop(&db, &env, &w, &split, &cfg);
            let buffer_real = o.buffer.count(LabelSource::Real);
            (o.model.params(), buffer_real)
        };
        let (serial_params, serial_real) = run(1);
        let (pooled_params, pooled_real) = run(3);
        assert_eq!(
            serial_real, pooled_real,
            "{kind:?}: experience streams diverge"
        );
        assert_eq!(
            serial_params, pooled_params,
            "{kind:?}: parallel checkpoint diverges from serial"
        );
        assert!(!serial_params.is_empty());
    }
}

/// The tree-convolution model trains end-to-end through the same
/// two-phase loop: trajectory shape holds and the selected checkpoint's
/// held-out inference stays within a sane factor of the expert.
#[test]
fn tree_conv_train_loop_end_to_end() {
    let db = small_db();
    let w = job_workload(db.catalog(), 7);
    let full = Split::random(w.queries.len(), 19, 42);
    let split = Split {
        train: full.train.into_iter().take(12).collect(),
        test: full.test.into_iter().take(4).collect(),
    };
    let cfg = TrainConfig {
        model: ModelKind::TreeConv,
        beam_width: 4,
        sim_random_plans: 3,
        iterations: 2,
        pretrain_sgd: SgdConfig {
            epochs: 10,
            ..SgdConfig::default()
        },
        finetune_sgd: SgdConfig {
            epochs: 5,
            ..SgdConfig::default()
        },
        ..TrainConfig::default()
    };
    let env = ExecutionEnv::postgres_sim(db.clone());
    let outcome = train_loop(&db, &env, &w, &split, &cfg);
    assert_eq!(outcome.trajectory.len(), cfg.iterations + 1);
    assert!(outcome.model.is_fitted());
    assert_eq!(outcome.model.encoding(), balsa_learn::FeatureEncoding::Tree);
    for it in &outcome.trajectory {
        assert!(it.test_median_secs.is_finite() && it.test_median_secs > 0.0);
    }
    let eval_env = ExecutionEnv::postgres_sim(db.clone());
    let est = HistogramEstimator::new(&db);
    let featurizer = Featurizer::new(db.clone(), env.profile().weights, env.profile().bushy_hints);
    let learned = evaluate_learned(
        &db,
        &eval_env,
        &featurizer,
        &*outcome.model,
        &est,
        &w,
        &split.test,
        cfg.mode,
        cfg.beam_width,
        balsa_search::PlanBudget::UNLIMITED,
        &balsa_search::WorkerPool::new(1),
    )
    .expect("connected workload must plan");
    let expert = evaluate_expert_baseline(
        &db,
        &eval_env,
        &w,
        &split.test,
        cfg.mode,
        balsa_search::PlanBudget::UNLIMITED,
        &balsa_search::WorkerPool::new(1),
    )
    .expect("connected workload must plan");
    let (ml, me) = (median(&learned), median(&expert));
    assert!(
        ml <= me * 10.0,
        "tree-conv median {ml} catastrophically above expert {me}"
    );
}
