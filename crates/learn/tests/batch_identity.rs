//! Bit-identity of the batched inference hot path (PR 5 acceptance).
//!
//! The beam scores every level's surviving candidates through one
//! [`QueryScorer::score_join_batch`] call — the tree-convolution
//! forward becomes a filters × batch matrix product, the linear model
//! a streamed dot-product loop. The batching contract is that this is
//! a **layout** change, never a math change: these tests run the beam
//! once through the batched path and once through a wrapper that
//! forces the default per-candidate path, over **all 137 JOB +
//! Ext-JOB queries**, for **both model kinds** (`linear`, `tree_conv`)
//! in **both fitted and unfitted** states, and assert the chosen plans
//! and their scores are bit-identical.
//!
//! Also covered here: the intra-query parallel expansion
//! (`BALSA_PLAN_THREADS`, [`BeamPlanner::with_pool`]) must be
//! bit-identical across thread counts, and the raw model batch hooks
//! must equal their per-item forms on random plans.

use balsa_card::HistogramEstimator;
use balsa_cost::{JoinCandidate, OpWeights, PlanScorer, QueryScorer, ScoredTree};
use balsa_learn::{
    Featurizer, LearnedScorer, LinearValueModel, ModelKind, SgdConfig, TrainSet, TreeConvConfig,
    TreeConvValueModel, ValueModel,
};
use balsa_query::workloads::{ext_job_workload, job_workload};
use balsa_query::{Plan, Query};
use balsa_search::{random_plan, BeamPlanner, Planner, SearchMode, WorkerPool};
use balsa_storage::{mini_imdb, DataGenConfig, Database};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

fn fixture() -> (Arc<Database>, Vec<Query>) {
    let db = Arc::new(mini_imdb(DataGenConfig {
        scale: 0.02,
        ..Default::default()
    }));
    let mut queries = job_workload(db.catalog(), 7).queries;
    queries.extend(ext_job_workload(db.catalog(), 7).queries);
    assert_eq!(queries.len(), 137, "JOB + Ext-JOB must be 137 queries");
    (db, queries)
}

/// Forwards scans and joins but hides the batched override, so the
/// default per-candidate `score_join_batch` loop runs — the reference
/// the batched path must match bit-for-bit.
struct PerCandidate<'a>(&'a dyn PlanScorer);

struct PerCandidateSession<'q>(Box<dyn QueryScorer + 'q>);

impl PlanScorer for PerCandidate<'_> {
    fn name(&self) -> String {
        self.0.name()
    }

    fn for_query<'q>(&'q self, query: &'q Query) -> Box<dyn QueryScorer + 'q> {
        Box::new(PerCandidateSession(self.0.for_query(query)))
    }
}

impl QueryScorer for PerCandidateSession<'_> {
    fn score_scan(&self, scan: &Plan) -> ScoredTree {
        self.0.score_scan(scan)
    }

    fn score_join(&self, join: &Plan, lc: &ScoredTree, rc: &ScoredTree) -> ScoredTree {
        self.0.score_join(join, lc, rc)
    }
}

/// A deterministic quick fit so the model's weights (and therefore its
/// beam rankings) are non-trivial.
fn fitted_model(
    kind: ModelKind,
    db: &Arc<Database>,
    queries: &[Query],
    featurizer: &Featurizer,
) -> Box<dyn ValueModel> {
    let est = HistogramEstimator::new(db);
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    let mut data = TrainSet::default();
    let mut model: Box<dyn ValueModel> = match kind {
        ModelKind::Linear => Box::new(LinearValueModel::new(featurizer.dim())),
        ModelKind::TreeConv => Box::new(TreeConvValueModel::new(
            featurizer.node_dim(),
            TreeConvConfig::default(),
        )),
    };
    for (qi, q) in queries.iter().take(6).enumerate() {
        let plan = random_plan(db, q, SearchMode::Bushy, &mut rng);
        data.xs
            .push(featurizer.featurize_enc(model.encoding(), q, &plan, &est));
        data.ys.push(0.3 * qi as f64 - 0.5);
        data.censored.push(qi % 3 == 0);
    }
    model.fit(
        data,
        &SgdConfig {
            epochs: 5,
            ..SgdConfig::default()
        },
        &mut rng,
    );
    assert!(model.is_fitted());
    model
}

fn unfitted_model(kind: ModelKind, featurizer: &Featurizer) -> Box<dyn ValueModel> {
    match kind {
        ModelKind::Linear => Box::new(LinearValueModel::new(featurizer.dim())),
        ModelKind::TreeConv => Box::new(TreeConvValueModel::new(
            featurizer.node_dim(),
            TreeConvConfig::default(),
        )),
    }
}

/// The acceptance property: over all 137 queries, for both model kinds,
/// fitted and unfitted, the batched beam chooses bit-identical plans
/// with bit-identical scores to the forced per-candidate beam.
#[test]
fn batched_scoring_is_bit_identical_to_per_candidate() {
    let (db, queries) = fixture();
    let est = HistogramEstimator::new(&db);
    let featurizer = Featurizer::new(db.clone(), OpWeights::postgres_like(), true);
    for kind in [ModelKind::Linear, ModelKind::TreeConv] {
        for fitted in [false, true] {
            let model = if fitted {
                fitted_model(kind, &db, &queries, &featurizer)
            } else {
                unfitted_model(kind, &featurizer)
            };
            let scorer = LearnedScorer::new(&featurizer, &*model, &est);
            let reference = PerCandidate(&scorer);
            for q in &queries {
                let batched = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5).plan(q);
                let percand = BeamPlanner::new(&db, &reference, SearchMode::Bushy, 5).plan(q);
                assert_eq!(
                    batched.plan.fingerprint(),
                    percand.plan.fingerprint(),
                    "{} [{:?} fitted={fitted}]: batched chose a different plan",
                    q.name,
                    kind
                );
                assert_eq!(
                    batched.cost.to_bits(),
                    percand.cost.to_bits(),
                    "{} [{:?} fitted={fitted}]: scores diverge",
                    q.name,
                    kind
                );
                assert_eq!(batched.stats.candidates, percand.stats.candidates);
                assert_eq!(batched.stats.states, percand.stats.states);
            }
        }
    }
}

/// Intra-query parallel expansion (`BALSA_PLAN_THREADS` ∈ {1, 4} via
/// [`BeamPlanner::with_pool`]) is bit-identical to serial for both
/// model kinds, widths 1 and 20, with and without exploration.
#[test]
fn beam_plans_are_bit_identical_across_thread_counts() {
    let (db, queries) = fixture();
    let est = HistogramEstimator::new(&db);
    let featurizer = Featurizer::new(db.clone(), OpWeights::postgres_like(), true);
    for kind in [ModelKind::Linear, ModelKind::TreeConv] {
        let model = fitted_model(kind, &db, &queries, &featurizer);
        let scorer = LearnedScorer::new(&featurizer, &*model, &est);
        for q in queries.iter().step_by(17) {
            for width in [1usize, 20] {
                let serial = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, width)
                    .with_pool(WorkerPool::new(1))
                    .plan(q);
                let parallel = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, width)
                    .with_pool(WorkerPool::new(4))
                    .plan(q);
                assert_eq!(
                    serial.plan.fingerprint(),
                    parallel.plan.fingerprint(),
                    "{} [{:?} width={width}]: thread count changed the plan",
                    q.name,
                    kind
                );
                assert_eq!(serial.cost.to_bits(), parallel.cost.to_bits());
                assert_eq!(serial.stats.states, parallel.stats.states);
                assert_eq!(serial.stats.candidates, parallel.stats.candidates);
            }
            // Exploration consumes its RNG in the serial selection
            // phase, so thread counts cannot perturb the stream.
            let a = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5)
                .with_exploration(0.5, 77)
                .with_pool(WorkerPool::new(1))
                .plan(q);
            let b = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5)
                .with_exploration(0.5, 77)
                .with_pool(WorkerPool::new(4))
                .plan(q);
            assert_eq!(a.plan.fingerprint(), b.plan.fingerprint(), "{}", q.name);
        }
    }
}

/// The raw batch hooks equal their per-item forms on random candidate
/// sets (direct unit-level check, independent of the beam).
#[test]
fn model_batch_hooks_match_per_item_calls() {
    let (db, queries) = fixture();
    let est = HistogramEstimator::new(&db);
    let featurizer = Featurizer::new(db.clone(), OpWeights::postgres_like(), true);
    let mut rng = SmallRng::seed_from_u64(42);
    for kind in [ModelKind::Linear, ModelKind::TreeConv] {
        let model = fitted_model(kind, &db, &queries, &featurizer);
        let q = queries.iter().find(|q| q.num_tables() >= 6).unwrap();
        let xs: Vec<Vec<f64>> = (0..12)
            .map(|_| {
                let plan = random_plan(&db, q, SearchMode::Bushy, &mut rng);
                featurizer.featurize_enc(model.encoding(), q, &plan, &est)
            })
            .collect();
        let refs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
        let batch = model.predict_batch(&refs);
        for (x, b) in refs.iter().zip(&batch) {
            assert_eq!(model.predict(x).to_bits(), b.to_bits());
        }
    }
}

/// The batched session path itself (outside the beam): scoring a
/// candidate list through `score_join_batch` equals per-candidate
/// `score_join`, in order.
#[test]
fn session_batch_equals_per_candidate_scores() {
    let (db, queries) = fixture();
    let est = HistogramEstimator::new(&db);
    let featurizer = Featurizer::new(db.clone(), OpWeights::postgres_like(), true);
    for kind in [ModelKind::Linear, ModelKind::TreeConv] {
        let model = fitted_model(kind, &db, &queries, &featurizer);
        let scorer = LearnedScorer::new(&featurizer, &*model, &est);
        let q = queries.iter().find(|q| q.num_tables() >= 4).unwrap();
        let session = scorer.for_query(q);
        // Build scored scan leaves, then every allowed 2-leaf join.
        let leaves: Vec<(Arc<Plan>, ScoredTree)> = (0..q.num_tables())
            .map(|qt| {
                let p = Plan::scan(qt, balsa_query::ScanOp::Seq);
                let st = session.score_scan(&p);
                (p, st)
            })
            .collect();
        let mut plans: Vec<(usize, usize, Arc<Plan>)> = Vec::new();
        for e in &q.joins {
            for &op in &balsa_query::JoinOp::ALL {
                plans.push((
                    e.left_qt,
                    e.right_qt,
                    Plan::join(
                        op,
                        leaves[e.left_qt].0.clone(),
                        leaves[e.right_qt].0.clone(),
                    ),
                ));
            }
        }
        let cands: Vec<JoinCandidate<'_>> = plans
            .iter()
            .map(|(l, r, p)| JoinCandidate {
                join: p,
                lc: &leaves[*l].1,
                rc: &leaves[*r].1,
            })
            .collect();
        let mut batched = Vec::new();
        session.score_join_batch(&cands, &mut batched);
        assert_eq!(batched.len(), cands.len());
        for (c, b) in cands.iter().zip(&batched) {
            let single = session.score_join(c.join, c.lc, c.rc);
            assert_eq!(single.score.to_bits(), b.score.to_bits());
            assert_eq!(single.sc.out_rows.to_bits(), b.sc.out_rows.to_bits());
        }
    }
}
