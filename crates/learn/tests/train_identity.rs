//! Determinism of the training hot path (PR 6 acceptance).
//!
//! Minibatched tree-conv SGD and the Adam optimizer are wall-clock
//! changes, not semantics changes: for a fixed seed and batch geometry
//! the full two-phase `train_loop` must produce **bit-identical**
//! checkpoints run-to-run, for every optimizer kind and both model
//! families. The minibatch sampler's RNG stream is pinned by a
//! hard-coded permutation so any reordering of its draws — however the
//! fit paths are refactored — fails loudly rather than silently
//! re-shuffling every recorded learning curve.

use balsa_engine::ExecutionEnv;
use balsa_learn::{
    shuffle_epoch_order, train_loop, LabelSource, ModelKind, OptimizerKind, SgdConfig, TrainConfig,
};
use balsa_query::workloads::job_workload;
use balsa_query::Split;
use balsa_storage::{mini_imdb, DataGenConfig, Database};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

fn small_db() -> Arc<Database> {
    Arc::new(mini_imdb(DataGenConfig {
        scale: 0.02,
        ..Default::default()
    }))
}

fn small_cfg(kind: ModelKind, optimizer: OptimizerKind) -> TrainConfig {
    TrainConfig {
        model: kind,
        beam_width: 3,
        sim_random_plans: 2,
        iterations: 2,
        pretrain_sgd: SgdConfig {
            epochs: 4,
            optimizer,
            momentum: 0.9,
            lr: 0.005,
            ..SgdConfig::default()
        },
        finetune_sgd: SgdConfig {
            epochs: 2,
            optimizer,
            momentum: 0.9,
            lr: 0.002,
            ..SgdConfig::default()
        },
        ..TrainConfig::default()
    }
}

/// Two identical `train_loop` runs produce bit-identical checkpoints
/// and experience streams for every optimizer kind — Adam's moment
/// state and step counter included — across both model families.
#[test]
fn checkpoints_are_bit_identical_across_reruns_for_every_optimizer() {
    let db = small_db();
    let w = job_workload(db.catalog(), 7);
    let split = Split {
        train: (0..6).collect(),
        test: (6..8).collect(),
    };
    for kind in [ModelKind::Linear, ModelKind::TreeConv] {
        let run = |optimizer: OptimizerKind| {
            let cfg = small_cfg(kind, optimizer);
            let env = ExecutionEnv::postgres_sim(db.clone());
            let o = train_loop(&db, &env, &w, &split, &cfg);
            (o.model.params(), o.buffer.count(LabelSource::Real))
        };
        let mut by_opt = Vec::new();
        for optimizer in [
            OptimizerKind::Sgd,
            OptimizerKind::Momentum,
            OptimizerKind::Adam,
        ] {
            let (params_a, real_a) = run(optimizer);
            let (params_b, real_b) = run(optimizer);
            assert!(!params_a.is_empty());
            assert_eq!(
                real_a, real_b,
                "{kind:?}/{optimizer:?}: experience streams diverge across reruns"
            );
            assert_eq!(
                params_a, params_b,
                "{kind:?}/{optimizer:?}: checkpoint not bit-identical across reruns"
            );
            by_opt.push((optimizer, params_a));
        }
        // The optimizers must actually produce different trajectories —
        // otherwise the kind switch is dead and the test above proves
        // nothing about Adam.
        for i in 0..by_opt.len() {
            for j in i + 1..by_opt.len() {
                assert_ne!(
                    by_opt[i].1, by_opt[j].1,
                    "{kind:?}: {:?} and {:?} produced identical checkpoints",
                    by_opt[i].0, by_opt[j].0
                );
            }
        }
    }
}

/// The minibatch sampler stream is a pinned contract: every fit draws
/// its epoch orders through `shuffle_epoch_order`, and for a fixed seed
/// the first two epochs' permutations are exactly these. Regenerate the
/// constants only for a deliberate, changelog-noted sampler change —
/// they gate accidental re-seeding or extra RNG draws in the fit paths.
#[test]
fn sampler_stream_is_pinned() {
    let mut rng = SmallRng::seed_from_u64(0xBA15A);
    let mut order: Vec<usize> = (0..10).collect();
    shuffle_epoch_order(&mut order, &mut rng);
    assert_eq!(order, [9, 8, 7, 5, 2, 4, 3, 0, 6, 1], "epoch 1 permutation");
    shuffle_epoch_order(&mut order, &mut rng);
    assert_eq!(order, [7, 6, 2, 8, 3, 4, 5, 0, 9, 1], "epoch 2 permutation");
}
