//! CI regression gate over the checked-in benchmark artifacts.
//!
//! Reads `BENCH_planner.json` and `BENCH_learning.json` (as produced by
//! `bench_planner` / `bench_learning` in the same run) and **fails**
//! (exit 1) when a tracked ratio regresses past its threshold, instead
//! of CI merely uploading the JSON:
//!
//! * **planner quality**: the beam-20 / DP executed-latency median
//!   ratio must stay ≤ [`PLANNER_BEAM_DP_MAX`] — beam search with the
//!   expert cost model may not drift away from the DP optimum's real
//!   latency;
//! * **planner speed**: the DPccp DP's total planning time over the
//!   workload (`plan_secs_total`, dominated by the 14-table JOB-like
//!   queries) must stay ≤ [`DP_VS_SUBMASK_PLAN_RATIO`] of the retained
//!   submask enumerator's, measured in the same run. A same-run ratio
//!   is machine-robust (runner speed and pool contention hit both
//!   planners alike) and the 113-query total is noise-robust (a max
//!   would hinge on one scheduler-stall-prone measurement), while a
//!   `3^n`-style enumeration or per-candidate-allocation regression
//!   drives it toward 1.0 (measured: ~0.15 on a laptop core);
//! * **inference speed**: beam-20's total planning time must stay at
//!   or below the DPccp DP's in the same run
//!   (≤ [`BEAM20_VS_DP_PLAN_RATIO`]) — the learned agent's serving
//!   path may not regress back to pre-batching/pre-dedup-overhaul
//!   costs;
//! * **parallel planning**: when the benchmark ran with
//!   `planning_threads` > 1, the intra-query-parallel DP row
//!   (`dp-par-bushy/expert`) must exist, must report a non-null
//!   `plan_parallel_speedup`, and its `plan_secs_total` must stay ≤
//!   [`DP_PAR_VS_SERIAL_PLAN_RATIO`] of the serial DP's in the same
//!   run — parallel DPccp is bit-identical to serial, so a fan-out
//!   that costs wall instead of saving it is a pure regression;
//! * **learning**: every trained model's `final_vs_expert_ratio`
//!   (validation-selected checkpoint vs the expert DP baseline on
//!   held-out queries) must stay ≤ [`LEARNED_EXPERT_MAX`] for full runs,
//!   or the looser [`LEARNED_EXPERT_MAX_SMOKE`] for `BALSA_SMOKE` runs
//!   (tiny scale, 2 iterations — noisier by construction);
//! * **chaos resilience**: when the CI chaos leg wrote
//!   `BENCH_learning_chaos.json` (same `bench_learning` smoke with
//!   `BALSA_FAULTS` armed), every model's learned/expert held-out ratio
//!   under injected faults must stay within [`CHAOS_VS_CLEAN_MAX`] of
//!   the same run's fault-free ratio, and the chaos leg must actually
//!   have injected faults (a zero count means the wiring is broken and
//!   the leg proves nothing). Skipped with a message when no chaos
//!   artifact exists or when it predates the resilience block — never
//!   silently treated as passing zeros;
//! * **budget resilience**: when the CI budget leg wrote
//!   `BENCH_planner_budget.json` / `BENCH_learning_budget.json` (same
//!   benchmarks re-run with a tight `BALSA_PLAN_BUDGET` armed), the
//!   degraded plans must stay within [`BUDGET_VS_CLEAN_MAX`] of the
//!   same run's clean artifact — executed-latency median for the DP
//!   planner row, learned/expert held-out ratio per model for the
//!   learning smoke — and the budget leg must actually have degraded
//!   (zero recorded fallbacks/exhaustions means the budget never fired
//!   and the leg proves nothing). Skipped with a message when no
//!   budget artifact exists — never silently treated as passing;
//! * **training speed**: the tree-conv batched fit's same-data wall
//!   (`train_batched_secs`, measured by `bench_learning` against the
//!   per-sample reference path on the run's own experience population)
//!   must stay ≤ [`TRAIN_BATCHED_VS_PER_SAMPLE_MAX`] of
//!   `train_per_sample_secs`. Same-run and same-data, so machine speed
//!   cancels; a regression that de-batches the conv kernels or bloats
//!   the batched backprop drives the ratio past 1.
//!
//! The JSON is the repo's own hand-rolled format (the serde shim does
//! not deserialize), so this reads it with a deliberately small
//! anchor-then-key scanner rather than a parser.
//!
//! Run with: `cargo run --release -p balsa-learn --example bench_gate`

use std::process::exit;

/// Max allowed beam-20 / DP executed-latency median ratio.
const PLANNER_BEAM_DP_MAX: f64 = 1.15;
/// Max allowed DPccp / submask `plan_secs_total` ratio on the
/// 113-query JOB-like workload (same-run measurement, so machine speed
/// and pool contention cancel; the 113-query sum is robust to single
/// scheduler stalls). Measured ~0.15 on a laptop-class core; the
/// acceptance bar of "≥5x faster" corresponds to 0.2.
const DP_VS_SUBMASK_PLAN_RATIO: f64 = 0.35;
/// Max allowed beam-20 / DPccp `plan_secs_total` ratio on the
/// 113-query JOB-like workload. Same-run and summed over the workload,
/// so machine speed, pool contention, and single scheduler stalls all
/// cancel — like [`DP_VS_SUBMASK_PLAN_RATIO`]. The PR-5 inference
/// overhaul (dedup-before-score state signatures, batched scoring)
/// brought beam-20 to at-or-below DP cost (measured ~0.6); a
/// per-candidate-allocation or per-probe-fingerprint regression drives
/// this back toward the pre-overhaul ~2.0.
const BEAM20_VS_DP_PLAN_RATIO: f64 = 1.0;
/// Max allowed parallel-DP / serial-DP `plan_secs_total` ratio when the
/// benchmark ran with more than one planning thread. Parallel DPccp is
/// bit-identical to serial by construction, so its only reason to exist
/// is speed: same-run, the fan-out (minus the [`balsa_search`] level
/// cutoff keeping trivial levels serial) must never cost more wall than
/// it saves. With the persistent pool (parked workers, so a level
/// fan-out costs a condvar wake instead of `thread::spawn`s) the ratio
/// measures ~0.5–0.65 even on a single core, where the dp row's outer
/// 4-way contention is the only "speedup" available — so the bound is
/// tightened below break-even. Checked only when the artifact's
/// `planning_threads` > 1. The companion non-null
/// `plan_parallel_speedup` check is stricter than it looks: the field
/// is suppressed unless `parallel_items_total > 0`, i.e. unless DP
/// levels *actually* fanned out.
const DP_PAR_VS_SERIAL_PLAN_RATIO: f64 = 0.85;
/// Max allowed learned / expert held-out ratio for full benchmark runs.
const LEARNED_EXPERT_MAX: f64 = 1.05;
/// Max allowed learned / expert ratio in the CI smoke configuration.
const LEARNED_EXPERT_MAX_SMOKE: f64 = 1.60;
/// Max allowed batched / per-sample tree-conv training-wall ratio —
/// the batched path must never be slower than the reference it
/// replaces (measured ~0.3–0.5 at the default batch of 64).
const TRAIN_BATCHED_VS_PER_SAMPLE_MAX: f64 = 1.0;
/// Max allowed (chaos learned/expert ratio) / (fault-free ratio):
/// retries, honest censoring, and the expert fallback must keep ~5%
/// injected faults from costing more than 25% of final plan quality.
/// Same-run (both artifacts come from the same CI job on the same
/// machine), so runner speed cancels.
const CHAOS_VS_CLEAN_MAX: f64 = 1.25;
/// Max allowed (budget-leg quality) / (clean-leg quality): the
/// fallback chain under a deliberately tight `BALSA_PLAN_BUDGET` may
/// degrade plans, but gracefully — the DP row's executed-latency
/// median and each model's learned/expert held-out ratio must stay
/// within 1.5x of the same run's unbudgeted artifacts. Same-run, so
/// runner speed cancels.
const BUDGET_VS_CLEAN_MAX: f64 = 1.5;

/// Finds `"key": <value>` at or after `anchor` (the first occurrence of
/// `anchor` in `text`) and parses the value token.
fn number_after(text: &str, anchor: &str, key: &str) -> Option<f64> {
    let start = text.find(anchor)?;
    let needle = format!("\"{key}\":");
    let at = text[start..].find(&needle)? + start + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `true`/`false` value of `"key":` after `anchor`.
fn bool_after(text: &str, anchor: &str, key: &str) -> Option<bool> {
    let start = text.find(anchor)?;
    let needle = format!("\"{key}\":");
    let at = text[start..].find(&needle)? + start + needle.len();
    let rest = text[at..].trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

fn main() {
    let mut failures = Vec::new();

    // ---- Planner gate ----
    match std::fs::read_to_string("BENCH_planner.json") {
        Err(e) => failures.push(format!("cannot read BENCH_planner.json: {e}")),
        Ok(planner) => {
            let dp = number_after(
                &planner,
                "\"name\": \"dp-bushy/expert\"",
                "exec_secs_median",
            );
            let beam = number_after(
                &planner,
                "\"name\": \"beam20-bushy/expert\"",
                "exec_secs_median",
            );
            match (dp, beam) {
                (Some(dp), Some(beam)) if dp > 0.0 => {
                    let ratio = beam / dp;
                    println!(
                        "planner: beam20/dp executed-latency median ratio {ratio:.4} (max {PLANNER_BEAM_DP_MAX})"
                    );
                    if ratio > PLANNER_BEAM_DP_MAX {
                        failures.push(format!(
                            "planner regression: beam20/dp executed ratio {ratio:.4} > {PLANNER_BEAM_DP_MAX}"
                        ));
                    }
                }
                _ => failures.push(
                    "BENCH_planner.json: missing dp-bushy/beam20-bushy exec_secs_median".into(),
                ),
            }
            let dp_total =
                number_after(&planner, "\"name\": \"dp-bushy/expert\"", "plan_secs_total");
            let sub_total = number_after(
                &planner,
                "\"name\": \"dp-submask-bushy/expert\"",
                "plan_secs_total",
            );
            match (dp_total, sub_total) {
                (Some(dp), Some(sub)) if sub > 0.0 => {
                    let ratio = dp / sub;
                    println!(
                        "planner: dp/submask plan_secs_total ratio {ratio:.4} ({dp:.4}s vs {sub:.4}s, max {DP_VS_SUBMASK_PLAN_RATIO})"
                    );
                    if ratio > DP_VS_SUBMASK_PLAN_RATIO {
                        failures.push(format!(
                            "planner plan-time regression: dp/submask plan_secs_total ratio {ratio:.4} > {DP_VS_SUBMASK_PLAN_RATIO}"
                        ));
                    }
                }
                _ => failures
                    .push("BENCH_planner.json: missing dp-bushy/dp-submask plan_secs_total".into()),
            }
            let beam_total = number_after(
                &planner,
                "\"name\": \"beam20-bushy/expert\"",
                "plan_secs_total",
            );
            match (beam_total, dp_total) {
                (Some(beam), Some(dp)) if dp > 0.0 => {
                    let ratio = beam / dp;
                    println!(
                        "planner: beam20/dp plan_secs_total ratio {ratio:.4} ({beam:.4}s vs {dp:.4}s, max {BEAM20_VS_DP_PLAN_RATIO})"
                    );
                    if ratio > BEAM20_VS_DP_PLAN_RATIO {
                        failures.push(format!(
                            "planner inference-path regression: beam20/dp plan_secs_total ratio {ratio:.4} > {BEAM20_VS_DP_PLAN_RATIO}"
                        ));
                    }
                }
                _ => failures.push(
                    "BENCH_planner.json: missing beam20-bushy/dp-bushy plan_secs_total".into(),
                ),
            }
            // Parallel-DP gate: only meaningful when the run itself was
            // parallel (the dp-par row is structurally absent at 1
            // thread, e.g. the CI thread-matrix's serial leg).
            let threads = number_after(&planner, "{", "planning_threads").unwrap_or(1.0);
            if threads > 1.0 {
                let par_anchor = "\"name\": \"dp-par-bushy/expert\"";
                let par_total = number_after(&planner, par_anchor, "plan_secs_total");
                match (par_total, dp_total) {
                    (Some(par), Some(dp)) if dp > 0.0 => {
                        let ratio = par / dp;
                        println!(
                            "planner: dp-par/dp plan_secs_total ratio {ratio:.4} ({par:.4}s vs {dp:.4}s at {threads:.0} threads, max {DP_PAR_VS_SERIAL_PLAN_RATIO})"
                        );
                        if ratio > DP_PAR_VS_SERIAL_PLAN_RATIO {
                            failures.push(format!(
                                "parallel-planning regression: dp-par/dp plan_secs_total ratio {ratio:.4} > {DP_PAR_VS_SERIAL_PLAN_RATIO}"
                            ));
                        }
                        if number_after(&planner, par_anchor, "plan_parallel_speedup").is_none() {
                            failures.push(
                                "BENCH_planner.json: dp-par row lacks a non-null plan_parallel_speedup".into(),
                            );
                        }
                    }
                    _ => failures.push(format!(
                        "BENCH_planner.json: planning_threads={threads:.0} but no dp-par-bushy plan_secs_total"
                    )),
                }
            } else {
                println!("planner: single-threaded run — dp-par gate skipped");
            }
        }
    }

    // ---- Learning gate ----
    match std::fs::read_to_string("BENCH_learning.json") {
        Err(e) => failures.push(format!("cannot read BENCH_learning.json: {e}")),
        Ok(learning) => {
            let smoke = bool_after(&learning, "{", "smoke").unwrap_or(false);
            let max = if smoke {
                LEARNED_EXPERT_MAX_SMOKE
            } else {
                LEARNED_EXPERT_MAX
            };
            let mut checked = 0;
            for model in ["linear", "tree_conv"] {
                let anchor = format!("\"model\": \"{model}\"");
                let Some(ratio) = number_after(&learning, &anchor, "final_vs_expert_ratio") else {
                    continue;
                };
                checked += 1;
                println!(
                    "learning[{model}]: learned/expert held-out ratio {ratio:.4} (max {max}, smoke={smoke})"
                );
                if ratio > max {
                    failures.push(format!(
                        "learning regression: {model} learned/expert ratio {ratio:.4} > {max} (smoke={smoke})"
                    ));
                }
            }
            if checked == 0 {
                failures.push("BENCH_learning.json: no model entries found".into());
            }
            // Batched-vs-per-sample training gate: only the tree-conv
            // model has a distinct batched path, and only when that
            // model ran in this benchmark invocation.
            let tc_anchor = "\"model\": \"tree_conv\"";
            if learning.contains(tc_anchor) {
                let batched = number_after(&learning, tc_anchor, "train_batched_secs");
                let per_sample = number_after(&learning, tc_anchor, "train_per_sample_secs");
                match (batched, per_sample) {
                    (Some(b), Some(p)) if p > 0.0 => {
                        let ratio = b / p;
                        println!(
                            "learning[tree_conv]: batched/per-sample training wall ratio {ratio:.4} ({b:.4}s vs {p:.4}s, max {TRAIN_BATCHED_VS_PER_SAMPLE_MAX})"
                        );
                        if ratio > TRAIN_BATCHED_VS_PER_SAMPLE_MAX {
                            failures.push(format!(
                                "training-speed regression: batched/per-sample wall ratio {ratio:.4} > {TRAIN_BATCHED_VS_PER_SAMPLE_MAX}"
                            ));
                        }
                    }
                    _ => failures.push(
                        "BENCH_learning.json: tree_conv entry lacks train_batched_secs/train_per_sample_secs".into(),
                    ),
                }
            }
        }
    }

    // ---- Chaos gate ----
    // Same-run comparison: the CI chaos leg re-runs the learning smoke
    // with BALSA_FAULTS armed and writes BENCH_learning_chaos.json next
    // to the fault-free BENCH_learning.json, so the two artifacts share
    // workload, seed, and machine — the only variable is the injected
    // faults. A skip is printed, never silently scored as passing.
    match std::fs::read_to_string("BENCH_learning_chaos.json") {
        Err(_) => {
            println!("chaos: no BENCH_learning_chaos.json in this run — chaos gate skipped");
        }
        Ok(chaos) if !chaos.contains("\"resilience\":") => {
            println!(
                "chaos: BENCH_learning_chaos.json lacks a resilience block (artifact predates the robustness layer) — chaos gate skipped"
            );
        }
        Ok(chaos) => match std::fs::read_to_string("BENCH_learning.json") {
            Err(e) => failures.push(format!(
                "chaos gate: BENCH_learning_chaos.json exists but the fault-free BENCH_learning.json is unreadable: {e}"
            )),
            Ok(clean) => {
                let mut checked = 0;
                let mut injected_total = 0.0;
                for model in ["linear", "tree_conv"] {
                    let anchor = format!("\"model\": \"{model}\"");
                    let chaos_ratio = number_after(&chaos, &anchor, "final_vs_expert_ratio");
                    let clean_ratio = number_after(&clean, &anchor, "final_vs_expert_ratio");
                    let (Some(c), Some(f)) = (chaos_ratio, clean_ratio) else {
                        continue;
                    };
                    checked += 1;
                    injected_total +=
                        number_after(&chaos, &anchor, "faults_injected").unwrap_or(0.0);
                    if f <= 0.0 {
                        failures.push(format!(
                            "chaos gate: {model} fault-free ratio {f} is not positive — cannot form a degradation ratio"
                        ));
                        continue;
                    }
                    let rel = c / f;
                    println!(
                        "chaos[{model}]: learned/expert ratio {c:.4} under faults vs {f:.4} fault-free -> {rel:.4}x (max {CHAOS_VS_CLEAN_MAX})"
                    );
                    if rel > CHAOS_VS_CLEAN_MAX {
                        failures.push(format!(
                            "chaos regression: {model} learned/expert ratio degrades {rel:.4}x under injected faults > {CHAOS_VS_CLEAN_MAX} ({c:.4} vs {f:.4})"
                        ));
                    }
                }
                if checked == 0 {
                    failures.push(
                        "chaos gate: chaos and fault-free artifacts share no model entries".into(),
                    );
                } else if injected_total == 0.0 {
                    failures.push(
                        "chaos gate: resilience blocks report zero injected faults — the chaos leg exercised nothing".into(),
                    );
                }
            }
        },
    }

    // ---- Budget gate ----
    // Same-run comparison, like the chaos gate: the CI budget leg
    // re-runs the planner benchmark and the learning smoke with a
    // deliberately tight BALSA_PLAN_BUDGET (and the plan verifier
    // forced on), writing *_budget.json artifacts next to the clean
    // ones. Graceful degradation means bounded quality loss with the
    // fallbacks honestly recorded — a budget leg with zero recorded
    // degradations proves nothing and fails loudly.
    match std::fs::read_to_string("BENCH_planner_budget.json") {
        Err(_) => {
            println!("budget: no BENCH_planner_budget.json in this run — planner budget gate skipped");
        }
        Ok(budgeted) => match std::fs::read_to_string("BENCH_planner.json") {
            Err(e) => failures.push(format!(
                "budget gate: BENCH_planner_budget.json exists but the clean BENCH_planner.json is unreadable: {e}"
            )),
            Ok(clean) => {
                let dp_anchor = "\"name\": \"dp-bushy/expert\"";
                let b = number_after(&budgeted, dp_anchor, "exec_secs_median");
                let c = number_after(&clean, dp_anchor, "exec_secs_median");
                match (b, c) {
                    (Some(b), Some(c)) if c > 0.0 => {
                        let ratio = b / c;
                        println!(
                            "budget[planner]: dp executed-latency median {ratio:.4}x of clean ({b:.6}s vs {c:.6}s, max {BUDGET_VS_CLEAN_MAX})"
                        );
                        if ratio > BUDGET_VS_CLEAN_MAX {
                            failures.push(format!(
                                "budget regression: dp executed-latency median degrades {ratio:.4}x under the budget > {BUDGET_VS_CLEAN_MAX}"
                            ));
                        }
                    }
                    _ => failures.push(
                        "budget gate: dp-bushy exec_secs_median missing from planner artifacts"
                            .into(),
                    ),
                }
                let degraded =
                    number_after(&budgeted, dp_anchor, "degraded_levels_total").unwrap_or(0.0);
                let exhausted =
                    number_after(&budgeted, dp_anchor, "budget_exhausted_queries").unwrap_or(0.0);
                println!(
                    "budget[planner]: dp row degraded_levels_total {degraded:.0}, budget_exhausted_queries {exhausted:.0}"
                );
                if degraded == 0.0 || exhausted == 0.0 {
                    failures.push(
                        "budget gate: planner budget leg recorded no degradations — the budget never fired and the leg proves nothing".into(),
                    );
                }
            }
        },
    }
    match std::fs::read_to_string("BENCH_learning_budget.json") {
        Err(_) => {
            println!("budget: no BENCH_learning_budget.json in this run — learning budget gate skipped");
        }
        Ok(budgeted) => match std::fs::read_to_string("BENCH_learning.json") {
            Err(e) => failures.push(format!(
                "budget gate: BENCH_learning_budget.json exists but the clean BENCH_learning.json is unreadable: {e}"
            )),
            Ok(clean) => {
                let mut checked = 0;
                let mut degraded_total = 0.0;
                for model in ["linear", "tree_conv"] {
                    let anchor = format!("\"model\": \"{model}\"");
                    let b = number_after(&budgeted, &anchor, "final_vs_expert_ratio");
                    let c = number_after(&clean, &anchor, "final_vs_expert_ratio");
                    let (Some(b), Some(c)) = (b, c) else {
                        continue;
                    };
                    checked += 1;
                    degraded_total += number_after(&budgeted, &anchor, "planner_degraded")
                        .unwrap_or(0.0)
                        + number_after(&budgeted, &anchor, "planner_exhausted").unwrap_or(0.0);
                    if c <= 0.0 {
                        failures.push(format!(
                            "budget gate: {model} clean ratio {c} is not positive — cannot form a degradation ratio"
                        ));
                        continue;
                    }
                    let rel = b / c;
                    println!(
                        "budget[{model}]: learned/expert ratio {b:.4} under the budget vs {c:.4} clean -> {rel:.4}x (max {BUDGET_VS_CLEAN_MAX})"
                    );
                    if rel > BUDGET_VS_CLEAN_MAX {
                        failures.push(format!(
                            "budget regression: {model} learned/expert ratio degrades {rel:.4}x under the plan budget > {BUDGET_VS_CLEAN_MAX} ({b:.4} vs {c:.4})"
                        ));
                    }
                }
                if checked == 0 {
                    failures.push(
                        "budget gate: budget and clean learning artifacts share no model entries"
                            .into(),
                    );
                } else if degraded_total == 0.0 {
                    failures.push(
                        "budget gate: resilience blocks report zero planner degradations — the budget never fired and the leg proves nothing".into(),
                    );
                }
            }
        },
    }

    if failures.is_empty() {
        println!("bench gate: all thresholds hold");
    } else {
        for f in &failures {
            eprintln!("bench gate FAILURE: {f}");
        }
        exit(1);
    }
}
