//! Learning-loop benchmark: simulation pretraining + real-execution
//! fine-tuning on the JOB-like random split, versus the expert DP
//! baseline, measured in executed (true-cardinality) latencies — for
//! **both** value-model families (the linear baseline and the §6
//! tree-convolution network).
//!
//! Writes `BENCH_learning.json` (hand-rolled JSON — the serde shim does
//! not serialize; see vendor/README.md):
//!
//! * `expert_test_median_secs` — median executed latency of the expert
//!   baseline (DP + expert cost model + histogram estimates) on the
//!   held-out queries;
//! * `models[]` — one entry per trained model variant, each with
//!   `final_test_median_secs` / `final_vs_expert_ratio` (the held-out
//!   median of the **validation-selected checkpoint**; ratio ≤ 1.0 means
//!   the learned value model matches or beats the expert), a per-phase
//!   training breakdown (`forward_secs` / `backward_secs` /
//!   `featurize_secs` / `truecard_secs`), for the tree-conv variant a
//!   same-data timing of the batched fit against the per-sample
//!   reference path (`train_batched_secs` / `train_per_sample_secs` —
//!   gated by `bench_gate`), and the full per-iteration trajectory
//!   (`sim_hours`, train/test medians, timeouts, buffer sizes, fit mse).
//!
//! Run with: `cargo run --release -p balsa-learn --example bench_learning`
//!
//! * `BALSA_SMOKE=1` — the CI smoke configuration (small scale, few
//!   iterations).
//! * `BALSA_MODEL=linear|tree_conv|both` — which value model(s) to
//!   train (default `both`).
//! * `BALSA_OPTIMIZER=sgd|momentum|adam` — override the per-family
//!   default update rule (tree-conv defaults to Adam, linear to plain
//!   SGD).
//! * `BALSA_FAULTS=transient=0.02,crash=0.01,...` — arm chaos injection
//!   on the *training* environments (never the frozen baseline/scoring
//!   env). With faults armed the artifact is written to
//!   `BENCH_learning_chaos.json` so the fault-free recording is never
//!   overwritten, a `faults` block records the rates, and each model
//!   entry carries a `resilience` block (faults injected, retries,
//!   abandoned samples, fallback iterations, backoff wall charged,
//!   planner errors/degradations/budget exhaustions).
//! * `BALSA_PLAN_BUDGET=work=<u64>,memo=<usize>` — arm a planner
//!   resource budget on every planner the run constructs (training,
//!   evaluation, and the expert baseline). With a budget armed the
//!   artifact routes to `BENCH_learning_budget.json` (chaos takes
//!   precedence when both are armed) and a `plan_budget` block records
//!   the limits; `bench_gate`'s budget gate compares it against the
//!   clean recording.
//!
//! All three env specs get the `BALSA_PLAN_THREADS` treatment: a
//! garbled value warns loudly on stderr and falls back to the default —
//! never a silent different run.

use balsa_card::HistogramEstimator;
use balsa_engine::{ExecutionEnv, FaultConfig, ResilienceStats, SimClock};
use balsa_learn::{
    evaluate_expert_baseline, evaluate_learned, median, train_loop, Featurizer, IterationStats,
    LabelSource, ModelKind, OptimizerKind, SgdConfig, TrainBreakdown, TrainConfig, TreeConvConfig,
    TreeConvValueModel, ValueModel,
};
use balsa_query::workloads::job_workload;
use balsa_query::Split;
use balsa_search::{PlanBudget, SearchMode, WorkerPool};
use balsa_storage::{mini_imdb, DataGenConfig, Database};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".into()
    }
}

fn json_opt(x: Option<f64>) -> String {
    match x {
        Some(v) => json_f(v),
        None => "null".into(),
    }
}

/// One model variant's results.
struct ModelRun {
    kind: ModelKind,
    optimizer: OptimizerKind,
    train_batch_size: usize,
    final_test_median: f64,
    ratio: f64,
    wall_secs: f64,
    breakdown: TrainBreakdown,
    /// Same-data wall of the batched fit vs the per-sample reference
    /// (tree-conv only — the linear model has no separate batched path).
    train_batched_secs: Option<f64>,
    train_per_sample_secs: Option<f64>,
    trajectory: Vec<IterationStats>,
    resilience: ResilienceStats,
}

// Like `evaluate_learned`, the argument list is the full run context.
#[allow(clippy::too_many_arguments)]
fn run_model(
    kind: ModelKind,
    db: &Arc<Database>,
    w: &balsa_query::Workload,
    split: &Split,
    cfg: &TrainConfig,
    opt_override: Option<OptimizerKind>,
    faults: Option<FaultConfig>,
    baseline_env: &ExecutionEnv,
    pool: &WorkerPool,
    expert_test_median: f64,
) -> ModelRun {
    let t = Instant::now();
    let cfg = TrainConfig {
        model: kind,
        ..cfg.clone()
    };
    // Per-family update rule: the non-convex tree-conv net wants Adam's
    // per-parameter scaling; the convex linear fit is happy with plain
    // SGD.
    let optimizer = opt_override.unwrap_or(match kind {
        ModelKind::Linear => OptimizerKind::Sgd,
        ModelKind::TreeConv => OptimizerKind::Adam,
    });
    // The tree-conv net also wants a gentler step than the convex
    // linear fit and a longer fine-tuning schedule (its inductive bias
    // starts further from the `C_out` policy, and more iterations give
    // validation selection more checkpoints).
    let cfg = match kind {
        ModelKind::Linear => TrainConfig {
            pretrain_sgd: SgdConfig {
                optimizer,
                ..cfg.pretrain_sgd
            },
            finetune_sgd: SgdConfig {
                optimizer,
                ..cfg.finetune_sgd
            },
            ..cfg
        },
        ModelKind::TreeConv => {
            let (pre_lr, fine_lr) = match optimizer {
                // Adam's moment normalization makes its usable step
                // size nearly problem-independent.
                OptimizerKind::Adam => (0.002, 0.001),
                _ => (0.01, 0.005),
            };
            TrainConfig {
                iterations: cfg.iterations + cfg.iterations / 2,
                pretrain_sgd: SgdConfig {
                    optimizer,
                    momentum: 0.9,
                    lr: pre_lr,
                    ..cfg.pretrain_sgd
                },
                finetune_sgd: SgdConfig {
                    optimizer,
                    momentum: 0.9,
                    lr: fine_lr,
                    epochs: cfg.finetune_sgd.epochs + cfg.finetune_sgd.epochs / 2,
                    ..cfg.finetune_sgd
                },
                ..cfg
            }
        }
    };
    // Each variant trains on its own environment so neither inherits
    // the other's plan cache or clock; the true-cardinality oracle is
    // exact ground truth, so sharing it across variants only avoids
    // re-materializing the same joins.
    let mut env = ExecutionEnv::with_truth(
        baseline_env.truth_arc(),
        *baseline_env.profile(),
        SimClock::paper_default(),
    );
    // Chaos is armed on the training env only: the baseline and final
    // scoring measure plan quality, not luck.
    if let Some(fc) = faults {
        env = env.with_faults(fc);
    }
    let outcome = train_loop(db, &env, w, &split.clone(), &cfg);
    for it in &outcome.trajectory {
        eprintln!(
            "[{}] iter {}: sim {:.2}h  train median {:.4}s  val median {:.4}s  val geo {:.4}s  test median {:.4}s  ({} timeouts, {} real exp, mse {:.3}, {} faults, {} retries, {} abandoned{})",
            kind.as_str(),
            it.iteration,
            it.sim_hours,
            it.train_median_secs,
            it.val_median_secs,
            it.val_geo_mean_secs,
            it.test_median_secs,
            it.timeouts,
            it.buffer_real,
            it.fit_mse,
            it.faults,
            it.retries,
            it.abandoned,
            if it.fallback { ", expert fallback" } else { "" }
        );
    }
    // Final score: the validation-selected checkpoint on held-out
    // queries, executed on the frozen baseline environment.
    let featurizer = Featurizer::new(db.clone(), env.profile().weights, env.profile().bushy_hints);
    let est = HistogramEstimator::new(db);
    let final_test = evaluate_learned(
        db,
        baseline_env,
        &featurizer,
        &*outcome.model,
        &est,
        w,
        &split.test,
        cfg.mode,
        cfg.beam_width,
        cfg.plan_budget,
        pool,
    )
    .expect("connected workload must plan");
    let final_test_median = median(&final_test);
    let ratio = final_test_median / expert_test_median;
    eprintln!(
        "[{}] final (selected checkpoint) learned test median {:.4}s vs expert {:.4}s -> ratio {:.3}",
        kind.as_str(),
        final_test_median,
        expert_test_median,
        ratio
    );
    // Batched-vs-per-sample training wall on this run's own real
    // experience population: two fresh models, same seed and schedule,
    // one through the batched kernels and one through the per-sample
    // reference path. Identical arithmetic at batch 1 is covered by
    // unit tests; here the two layouts race on real data.
    let (train_batched_secs, train_per_sample_secs) = if kind == ModelKind::TreeConv {
        let fit_cfg = cfg.finetune_sgd;
        let bench_fit = |per_sample: bool| {
            let data = outcome.buffer.train_set(LabelSource::Real);
            let mut m = TreeConvValueModel::new(featurizer.node_dim(), TreeConvConfig::default());
            let mut rng = SmallRng::seed_from_u64(cfg.seed);
            let t0 = Instant::now();
            if per_sample {
                m.fit_per_sample(data, &fit_cfg, &mut rng);
            } else {
                m.fit(data, &fit_cfg, &mut rng);
            }
            t0.elapsed().as_secs_f64()
        };
        let batched = bench_fit(false);
        let per_sample = bench_fit(true);
        eprintln!(
            "[{}] fine-tune fit wall: batched {batched:.2}s vs per-sample {per_sample:.2}s ({:.2}x)",
            kind.as_str(),
            per_sample / batched.max(1e-12)
        );
        (Some(batched), Some(per_sample))
    } else {
        (None, None)
    };
    ModelRun {
        kind,
        optimizer,
        train_batch_size: cfg.finetune_sgd.batch,
        final_test_median,
        ratio,
        wall_secs: t.elapsed().as_secs_f64(),
        breakdown: outcome.breakdown,
        train_batched_secs,
        train_per_sample_secs,
        trajectory: outcome.trajectory,
        resilience: outcome.resilience,
    }
}

fn main() {
    let t_total = Instant::now();
    let smoke = std::env::var("BALSA_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    // Env specs get the `BALSA_PLAN_THREADS` warn-and-fallback
    // treatment: a garbled value must never silently select a different
    // benchmark (or kill a CI leg that a typo meant to configure).
    let kinds: Vec<ModelKind> = match std::env::var("BALSA_MODEL") {
        Ok(raw) => ModelKind::parse_spec(&raw).unwrap_or_else(|| {
            eprintln!(
                "warning: BALSA_MODEL={raw:?} is not a model selection \
                 (linear|tree_conv|both); training both"
            );
            vec![ModelKind::Linear, ModelKind::TreeConv]
        }),
        Err(_) => vec![ModelKind::Linear, ModelKind::TreeConv],
    };
    let opt_override: Option<OptimizerKind> = match std::env::var("BALSA_OPTIMIZER") {
        Ok(raw) => match OptimizerKind::parse(&raw) {
            Some(o) => Some(o),
            None => {
                eprintln!(
                    "warning: BALSA_OPTIMIZER={raw:?} is not an update rule \
                     (sgd|momentum|adam); using the per-family defaults"
                );
                None
            }
        },
        Err(_) => None,
    };
    // `FaultConfig::from_env` itself warns-and-runs-fault-free on a
    // garbled BALSA_FAULTS spec.
    let faults = FaultConfig::from_env();
    // Same contract for the planner budget: garbled spec warns loudly
    // and the run plans unbudgeted.
    let plan_budget_env = PlanBudget::from_env();
    let plan_budget = plan_budget_env.unwrap_or(PlanBudget::UNLIMITED);
    let scale = if smoke { 0.05 } else { 1.0 };
    let db = Arc::new(mini_imdb(DataGenConfig {
        scale,
        ..Default::default()
    }));
    let w = job_workload(db.catalog(), 7);
    let split = Split::random(w.queries.len(), 19, 42);
    // Fine-tuning planning/featurization and the execution batches both
    // run on worker pools (`BALSA_PLAN_THREADS`, default = available
    // parallelism); checkpoints are bit-identical to the serial run by
    // construction.
    let planning_threads = balsa_search::pool::env_threads();
    let training_threads = planning_threads;
    let cfg = if smoke {
        TrainConfig {
            beam_width: 5,
            sim_random_plans: 4,
            iterations: 2,
            pretrain_sgd: SgdConfig {
                epochs: 20,
                ..SgdConfig::default()
            },
            finetune_sgd: SgdConfig {
                epochs: 10,
                ..SgdConfig::default()
            },
            planning_threads,
            training_threads,
            plan_budget,
            ..TrainConfig::default()
        }
    } else {
        TrainConfig {
            planning_threads,
            training_threads,
            plan_budget,
            ..TrainConfig::default()
        }
    };

    // Frozen environment for the expert baseline and all final scores
    // (latencies are deterministic per (query, plan), so sharing it
    // across variants changes nothing but keeps the cache warm).
    let baseline_env = ExecutionEnv::postgres_sim(db.clone());
    let baseline_pool = WorkerPool::new(planning_threads);
    let expert_test = evaluate_expert_baseline(
        &db,
        &baseline_env,
        &w,
        &split.test,
        cfg.mode,
        cfg.plan_budget,
        &baseline_pool,
    )
    .expect("connected workload must plan");
    let expert_train = evaluate_expert_baseline(
        &db,
        &baseline_env,
        &w,
        &split.train,
        cfg.mode,
        cfg.plan_budget,
        &baseline_pool,
    )
    .expect("connected workload must plan");
    let expert_test_median = median(&expert_test);
    eprintln!(
        "expert baseline: test median {:.4}s over {} held-out queries",
        expert_test_median,
        split.test.len()
    );

    let runs: Vec<ModelRun> = kinds
        .iter()
        .map(|&k| {
            run_model(
                k,
                &db,
                &w,
                &split,
                &cfg,
                opt_override,
                faults,
                &baseline_env,
                &baseline_pool,
                expert_test_median,
            )
        })
        .collect();

    // Hand-rolled JSON.
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"learning\",\n");
    let _ = writeln!(out, "  \"workload\": \"job_like\",");
    let _ = writeln!(out, "  \"engine\": \"{}\",", baseline_env.profile().name);
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        match cfg.mode {
            SearchMode::Bushy => "bushy",
            SearchMode::LeftDeep => "leftdeep",
        }
    );
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    match &faults {
        Some(fc) => {
            let _ = writeln!(
                out,
                "  \"faults\": {{\"seed\": {}, \"transient\": {}, \"crash\": {}, \"spike\": {}, \"spike_factor\": {}, \"hang\": {}, \"restart_secs\": {}}},",
                fc.seed,
                json_f(fc.transient),
                json_f(fc.crash),
                json_f(fc.spike),
                json_f(fc.spike_factor),
                json_f(fc.hang),
                json_f(fc.crash_restart_secs)
            );
        }
        None => {
            let _ = writeln!(out, "  \"faults\": null,");
        }
    }
    match plan_budget_env {
        Some(b) => {
            let _ = writeln!(
                out,
                "  \"plan_budget\": {{\"work\": {}, \"memo\": {}}},",
                b.work, b.memo
            );
        }
        None => {
            let _ = writeln!(out, "  \"plan_budget\": null,");
        }
    }
    let _ = writeln!(out, "  \"scale\": {},", json_f(scale));
    let _ = writeln!(out, "  \"num_train\": {},", split.train.len());
    let _ = writeln!(out, "  \"num_test\": {},", split.test.len());
    let _ = writeln!(out, "  \"config\": {{");
    let _ = writeln!(out, "    \"beam_width\": {},", cfg.beam_width);
    let _ = writeln!(out, "    \"iterations\": {},", cfg.iterations);
    let _ = writeln!(out, "    \"epsilon\": {},", json_f(cfg.epsilon));
    let _ = writeln!(
        out,
        "    \"timeout_factor\": {},",
        json_f(cfg.timeout_factor)
    );
    let _ = writeln!(out, "    \"sim_random_plans\": {},", cfg.sim_random_plans);
    let _ = writeln!(out, "    \"planning_threads\": {},", cfg.planning_threads);
    let _ = writeln!(out, "    \"training_threads\": {},", cfg.training_threads);
    let _ = writeln!(out, "    \"seed\": {}", cfg.seed);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(
        out,
        "  \"expert_test_median_secs\": {},",
        json_f(expert_test_median)
    );
    let _ = writeln!(
        out,
        "  \"expert_train_median_secs\": {},",
        json_f(median(&expert_train))
    );
    let _ = writeln!(
        out,
        "  \"wall_secs_total\": {},",
        json_f(t_total.elapsed().as_secs_f64())
    );
    out.push_str("  \"models\": [\n");
    for (mi, run) in runs.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"model\": \"{}\",", run.kind.as_str());
        let _ = writeln!(out, "      \"optimizer\": \"{}\",", run.optimizer.as_str());
        let _ = writeln!(out, "      \"train_batch_size\": {},", run.train_batch_size);
        let _ = writeln!(
            out,
            "      \"final_test_median_secs\": {},",
            json_f(run.final_test_median)
        );
        let _ = writeln!(
            out,
            "      \"final_vs_expert_ratio\": {},",
            json_f(run.ratio)
        );
        let _ = writeln!(out, "      \"wall_secs\": {},", json_f(run.wall_secs));
        let b = &run.breakdown;
        let _ = writeln!(out, "      \"forward_secs\": {},", json_f(b.forward_secs));
        let _ = writeln!(out, "      \"backward_secs\": {},", json_f(b.backward_secs));
        let _ = writeln!(
            out,
            "      \"featurize_secs\": {},",
            json_f(b.featurize_secs)
        );
        let _ = writeln!(out, "      \"truecard_secs\": {},", json_f(b.truecard_secs));
        // Same suppression rule as `bench_planner`'s
        // `plan_parallel_speedup`: serial runs — and parallel pools
        // where no execution batch actually fanned out — report null.
        let _ = writeln!(
            out,
            "      \"truecard_parallel_speedup\": {},",
            json_opt(balsa_search::parallel_speedup(
                b.truecard_job_secs,
                b.truecard_secs,
                cfg.training_threads,
                b.truecard_jobs,
            ))
        );
        let _ = writeln!(
            out,
            "      \"train_batched_secs\": {},",
            json_opt(run.train_batched_secs)
        );
        let _ = writeln!(
            out,
            "      \"train_per_sample_secs\": {},",
            json_opt(run.train_per_sample_secs)
        );
        // Everything the resilience layer absorbed. All-zero on a
        // fault-free run; `bench_gate` treats an *absent* block (an
        // artifact recorded before this field existed) as
        // skip-with-message, never as zero.
        let r = &run.resilience;
        let _ = writeln!(
            out,
            "      \"resilience\": {{\"faults_injected\": {}, \"transients\": {}, \"crashes\": {}, \"spikes\": {}, \"hangs\": {}, \"retries\": {}, \"abandoned\": {}, \"exhausted_censored\": {}, \"fallback_iterations\": {}, \"backoff_secs_charged\": {}, \"planner_errors\": {}, \"planner_degraded\": {}, \"planner_exhausted\": {}}},",
            r.faults_injected,
            r.transients,
            r.crashes,
            r.spikes,
            r.hangs,
            r.retries,
            r.abandoned,
            r.exhausted_censored,
            r.fallback_iterations,
            json_f(r.backoff_secs_charged),
            r.planner_errors,
            r.planner_degraded,
            r.planner_exhausted
        );
        out.push_str("      \"iterations\": [\n");
        for (i, it) in run.trajectory.iter().enumerate() {
            let _ = writeln!(out, "        {{");
            let _ = writeln!(out, "          \"iteration\": {},", it.iteration);
            let _ = writeln!(out, "          \"sim_hours\": {},", json_f(it.sim_hours));
            let _ = writeln!(
                out,
                "          \"train_median_secs\": {},",
                json_f(it.train_median_secs)
            );
            let _ = writeln!(
                out,
                "          \"val_median_secs\": {},",
                json_f(it.val_median_secs)
            );
            let _ = writeln!(
                out,
                "          \"test_median_secs\": {},",
                json_f(it.test_median_secs)
            );
            let _ = writeln!(out, "          \"timeouts\": {},", it.timeouts);
            let _ = writeln!(out, "          \"buffer_real\": {},", it.buffer_real);
            let _ = writeln!(out, "          \"buffer_sim\": {},", it.buffer_sim);
            let _ = writeln!(out, "          \"faults\": {},", it.faults);
            let _ = writeln!(out, "          \"retries\": {},", it.retries);
            let _ = writeln!(out, "          \"abandoned\": {},", it.abandoned);
            let _ = writeln!(out, "          \"fallback\": {},", it.fallback);
            let _ = writeln!(out, "          \"fit_mse\": {}", json_f(it.fit_mse));
            let _ = writeln!(
                out,
                "        }}{}",
                if i + 1 < run.trajectory.len() {
                    ","
                } else {
                    ""
                }
            );
        }
        out.push_str("      ]\n");
        let _ = writeln!(out, "    }}{}", if mi + 1 < runs.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");

    // A chaos or budget run must never overwrite the clean recording:
    // the quality gate reads `BENCH_learning.json`, the chaos/budget
    // gates compare their own artifacts against it same-run. Chaos
    // takes precedence when both are armed.
    let artifact = if faults.is_some() {
        "BENCH_learning_chaos.json"
    } else if plan_budget_env.is_some() {
        "BENCH_learning_budget.json"
    } else {
        "BENCH_learning.json"
    };
    std::fs::write(artifact, &out).unwrap_or_else(|e| panic!("write {artifact}: {e}"));
    println!("{out}");
    eprintln!(
        "wrote {artifact} in {:.1}s",
        t_total.elapsed().as_secs_f64()
    );
}
