//! The learned value model as a [`PlanScorer`].
//!
//! This is the tentpole hook-up: the beam search in `balsa-search` is
//! generic over `balsa_cost::PlanScorer`, and [`LearnedScorer`] puts the
//! trained [`ValueModel`] into that slot — the paper's agent, where the
//! value network ranks candidate joins during beam inference (§5). The
//! score of a subtree is the model's predicted latency in seconds
//! (`exp` of its log-space prediction), so forest scores add like
//! latencies and are comparable across trees.
//!
//! Scoring is **incremental**: every [`balsa_cost::ScoredTree`] this
//! scorer returns carries an opaque per-subtree state in its `ext` child
//! hook, and `score_join` composes the joined state from the children's
//! states instead of re-walking the subtree —
//!
//! * flat encoding (linear models): the feature channels compose through
//!   [`Featurizer::flat_join_state`] (O(tables + edges) per candidate,
//!   bit-identical to a from-scratch featurization);
//! * tree encoding (tree convolution): the model's own
//!   [`ValueModel::join_state`] carries per-layer root activations and
//!   pooled maxima, so a candidate join costs one convolution window.
//!
//! A missing child state (e.g. a model without incremental support)
//! falls back to a from-scratch encode, so correctness never depends on
//! the hooks.

use crate::featurize::{Featurizer, FlatState};
use crate::model::{FeatureEncoding, JoinStateItem, ValueModel};
use balsa_card::{CardEstimator, MemoEstimator};
use balsa_cost::{JoinCandidate, PlanScorer, QueryScorer, ScoredTree, SubtreeCost};
use balsa_query::{Plan, Query};
use std::sync::Arc;

/// Cap on predicted log-latency so `exp` stays finite even for a model
/// mid-training.
const MAX_LOG_PRED: f64 = 60.0;

/// Scores plans by a learned value model over featurized states.
pub struct LearnedScorer<'a> {
    featurizer: &'a Featurizer,
    model: &'a dyn ValueModel,
    est: &'a dyn CardEstimator,
}

impl<'a> LearnedScorer<'a> {
    /// Scores with `model` over `featurizer`'s encoding, reading
    /// cardinality channels from `est`.
    pub fn new(
        featurizer: &'a Featurizer,
        model: &'a dyn ValueModel,
        est: &'a dyn CardEstimator,
    ) -> Self {
        Self {
            featurizer,
            model,
            est,
        }
    }
}

impl PlanScorer for LearnedScorer<'_> {
    fn name(&self) -> String {
        format!("learned-{}", self.model.name())
    }

    fn for_query<'q>(&'q self, query: &'q Query) -> Box<dyn QueryScorer + 'q> {
        Box::new(LearnedQueryScorer {
            featurizer: self.featurizer,
            model: self.model,
            memo: MemoEstimator::new(self.est),
            query,
        })
    }
}

struct LearnedQueryScorer<'q> {
    featurizer: &'q Featurizer,
    model: &'q dyn ValueModel,
    memo: MemoEstimator<'q>,
    query: &'q Query,
}

impl LearnedQueryScorer<'_> {
    /// Wraps a log-space prediction and its incremental state into the
    /// beam's scored-tree currency.
    fn scored(&self, plan: &Plan, pred: f64, ext: Option<balsa_cost::SubtreeExt>) -> ScoredTree {
        let secs = pred.min(MAX_LOG_PRED).exp();
        ScoredTree {
            score: secs,
            sc: SubtreeCost {
                work: secs,
                out_rows: self.memo.cardinality(self.query, plan.mask()).max(0.0),
                sorted_on: Vec::new(),
            },
            ext,
        }
    }

    /// From-scratch scoring (leaves, and the fallback when a child state
    /// is missing).
    fn score_full(&self, plan: &Plan) -> ScoredTree {
        match self.model.encoding() {
            FeatureEncoding::Flat => {
                let st = self.featurizer.flat_state(self.query, plan, &self.memo);
                let pred = self.model.predict(&st.x);
                self.scored(plan, pred, Some(Arc::new(st)))
            }
            FeatureEncoding::Tree => {
                let x = self.featurizer.featurize_tree(self.query, plan, &self.memo);
                let pred = self.model.predict(&x);
                self.scored(plan, pred, None)
            }
        }
    }
}

impl QueryScorer for LearnedQueryScorer<'_> {
    fn score_scan(&self, scan: &Plan) -> ScoredTree {
        match self.model.encoding() {
            FeatureEncoding::Flat => {
                let st = self
                    .featurizer
                    .flat_scan_state(self.query, scan, &self.memo);
                let pred = self.model.predict(&st.x);
                self.scored(scan, pred, Some(Arc::new(st)))
            }
            FeatureEncoding::Tree => {
                let nx = self.featurizer.node_features(self.query, scan, &self.memo);
                match self.model.leaf_state(&nx) {
                    Some(state) => {
                        let pred = self
                            .model
                            .state_value(&state)
                            .expect("leaf_state implies state_value");
                        self.scored(scan, pred, Some(state))
                    }
                    None => self.score_full(scan),
                }
            }
        }
    }

    fn score_join(&self, join: &Plan, lc: &ScoredTree, rc: &ScoredTree) -> ScoredTree {
        match self.model.encoding() {
            FeatureEncoding::Flat => {
                let (Some(l), Some(r)) = (
                    lc.ext
                        .as_deref()
                        .and_then(|e| e.downcast_ref::<FlatState>()),
                    rc.ext
                        .as_deref()
                        .and_then(|e| e.downcast_ref::<FlatState>()),
                ) else {
                    return self.score_full(join);
                };
                let st = self
                    .featurizer
                    .flat_join_state(self.query, join, l, r, &self.memo);
                let pred = self.model.predict(&st.x);
                self.scored(join, pred, Some(Arc::new(st)))
            }
            FeatureEncoding::Tree => {
                let (Some(l), Some(r)) = (lc.ext.as_ref(), rc.ext.as_ref()) else {
                    return self.score_full(join);
                };
                let nx = self.featurizer.node_features(self.query, join, &self.memo);
                match self.model.join_state(&nx, l, r) {
                    Some(state) => {
                        let pred = self
                            .model
                            .state_value(&state)
                            .expect("join_state implies state_value");
                        self.scored(join, pred, Some(state))
                    }
                    None => self.score_full(join),
                }
            }
        }
    }

    /// The batched inference hot path: one pass composes every
    /// candidate's incremental state, then a single batched model call
    /// produces all predictions — the tree-convolution forward becomes
    /// a filters × batch matrix product over the stacked per-candidate
    /// root activations, the linear model a streamed dot-product loop.
    /// Candidates missing a child state fall back to the from-scratch
    /// encode in place, so the output order always matches the input
    /// and every tree is bit-identical to [`QueryScorer::score_join`].
    fn score_join_batch(&self, cands: &[JoinCandidate<'_>], out: &mut Vec<ScoredTree>) {
        match self.model.encoding() {
            FeatureEncoding::Flat => {
                let states: Vec<Option<FlatState>> = cands
                    .iter()
                    .map(|c| {
                        let (Some(l), Some(r)) = (
                            c.lc.ext
                                .as_deref()
                                .and_then(|e| e.downcast_ref::<FlatState>()),
                            c.rc.ext
                                .as_deref()
                                .and_then(|e| e.downcast_ref::<FlatState>()),
                        ) else {
                            return None;
                        };
                        Some(
                            self.featurizer
                                .flat_join_state(self.query, c.join, l, r, &self.memo),
                        )
                    })
                    .collect();
                let xs: Vec<&[f64]> = states
                    .iter()
                    .filter_map(|s| s.as_ref().map(|s| s.x.as_slice()))
                    .collect();
                let preds = self.model.predict_batch(&xs);
                let mut pi = 0;
                for (c, st) in cands.iter().zip(states) {
                    match st {
                        Some(st) => {
                            let pred = preds[pi];
                            pi += 1;
                            out.push(self.scored(c.join, pred, Some(Arc::new(st))));
                        }
                        None => out.push(self.score_full(c.join)),
                    }
                }
            }
            FeatureEncoding::Tree => {
                // Composable only when every candidate carries both
                // child states; otherwise score per candidate (each
                // call re-checks its own children, so partial batches
                // still come out bit-identical).
                let all_ext = cands
                    .iter()
                    .all(|c| c.lc.ext.is_some() && c.rc.ext.is_some());
                if !all_ext {
                    out.extend(cands.iter().map(|c| self.score_join(c.join, c.lc, c.rc)));
                    return;
                }
                let nxs: Vec<Vec<f64>> = cands
                    .iter()
                    .map(|c| {
                        self.featurizer
                            .node_features(self.query, c.join, &self.memo)
                    })
                    .collect();
                let items: Vec<JoinStateItem<'_>> = cands
                    .iter()
                    .zip(&nxs)
                    .map(|(c, nx)| JoinStateItem {
                        node_x: nx,
                        left: c.lc.ext.as_ref().expect("checked above"),
                        right: c.rc.ext.as_ref().expect("checked above"),
                    })
                    .collect();
                match self.model.join_state_batch(&items) {
                    Some(states) => {
                        let preds = self
                            .model
                            .state_value_batch(&states)
                            .expect("join_state_batch implies state_value_batch");
                        for ((c, state), pred) in cands.iter().zip(states).zip(preds) {
                            out.push(self.scored(c.join, pred, Some(state)));
                        }
                    }
                    None => {
                        out.extend(cands.iter().map(|c| self.score_join(c.join, c.lc, c.rc)));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinearValueModel;
    use crate::treeconv::{TreeConvConfig, TreeConvValueModel};
    use balsa_card::HistogramEstimator;
    use balsa_cost::OpWeights;
    use balsa_query::workloads::job_workload;
    use balsa_search::{BeamPlanner, Planner, SearchMode};
    use balsa_storage::{mini_imdb, DataGenConfig};
    use std::sync::Arc;

    fn fixture() -> (Arc<balsa_storage::Database>, balsa_query::Workload) {
        let db = Arc::new(mini_imdb(DataGenConfig {
            scale: 0.02,
            ..Default::default()
        }));
        let w = job_workload(db.catalog(), 7);
        (db, w)
    }

    #[test]
    fn untrained_model_still_yields_valid_complete_plans() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let featurizer = Featurizer::new(db.clone(), OpWeights::postgres_like(), true);
        let model = LinearValueModel::new(featurizer.dim());
        let scorer = LearnedScorer::new(&featurizer, &model, &est);
        let planner = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5);
        assert!(planner.name().contains("learned-linear"));
        for q in w.queries.iter().take(3) {
            let out = planner.plan(q);
            assert_eq!(out.plan.mask(), q.all_mask(), "{}", q.name);
            assert!(out.cost.is_finite() && out.cost > 0.0);
        }
    }

    #[test]
    fn tree_conv_beam_plans_are_valid_and_match_full_predictions() {
        let (db, w) = fixture();
        let est = HistogramEstimator::new(&db);
        let featurizer = Featurizer::new(db.clone(), OpWeights::postgres_like(), true);
        let mut model = TreeConvValueModel::new(featurizer.node_dim(), TreeConvConfig::default());
        // Randomize the weights via a one-sample fit so activations are
        // non-trivial.
        {
            use crate::model::{SgdConfig, TrainSet, ValueModel as _};
            use rand::rngs::SmallRng;
            use rand::SeedableRng;
            let q = &w.queries[0];
            let plan = balsa_query::Plan::scan(0, balsa_query::ScanOp::Seq);
            let x = featurizer.featurize_tree(q, &plan, &est);
            let data = TrainSet {
                xs: vec![x],
                ys: vec![1.0],
                censored: vec![false],
            };
            model.fit(
                data,
                &SgdConfig {
                    epochs: 1,
                    ..SgdConfig::default()
                },
                &mut SmallRng::seed_from_u64(5),
            );
        }
        let scorer = LearnedScorer::new(&featurizer, &model, &est);
        let planner = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5);
        assert!(planner.name().contains("learned-tree_conv"));
        for q in w.queries.iter().take(4) {
            let out = planner.plan(q);
            assert_eq!(out.plan.mask(), q.all_mask(), "{}", q.name);
            // The incremental beam score equals a from-scratch encode +
            // predict of the final plan.
            let full = crate::model::ValueModel::predict(
                &model,
                &featurizer.featurize_tree(q, &out.plan, &est),
            );
            let expect = full.min(MAX_LOG_PRED).exp();
            assert!(
                (out.cost - expect).abs() <= 1e-9 * expect.abs().max(1.0),
                "{}: incremental {} vs full {}",
                q.name,
                out.cost,
                expect
            );
        }
    }
}
