//! The learned value model as a [`PlanScorer`].
//!
//! This is the tentpole hook-up: the beam search in `balsa-search` is
//! generic over `balsa_cost::PlanScorer`, and [`LearnedScorer`] puts the
//! trained [`ValueModel`] into that slot — the paper's agent, where the
//! value network ranks candidate joins during beam inference (§5). The
//! score of a subtree is the model's predicted latency in seconds
//! (`exp` of its log-space prediction), so forest scores add like
//! latencies and are comparable across trees.

use crate::featurize::Featurizer;
use crate::model::ValueModel;
use balsa_card::{CardEstimator, MemoEstimator};
use balsa_cost::{PlanScorer, QueryScorer, ScoredTree, SubtreeCost};
use balsa_query::{Plan, Query};

/// Cap on predicted log-latency so `exp` stays finite even for a model
/// mid-training.
const MAX_LOG_PRED: f64 = 60.0;

/// Scores plans by a learned value model over featurized states.
pub struct LearnedScorer<'a> {
    featurizer: &'a Featurizer,
    model: &'a dyn ValueModel,
    est: &'a dyn CardEstimator,
}

impl<'a> LearnedScorer<'a> {
    /// Scores with `model` over `featurizer`'s encoding, reading
    /// cardinality channels from `est`.
    pub fn new(
        featurizer: &'a Featurizer,
        model: &'a dyn ValueModel,
        est: &'a dyn CardEstimator,
    ) -> Self {
        Self {
            featurizer,
            model,
            est,
        }
    }
}

impl PlanScorer for LearnedScorer<'_> {
    fn name(&self) -> String {
        format!("learned-{}", self.model.name())
    }

    fn for_query<'q>(&'q self, query: &'q Query) -> Box<dyn QueryScorer + 'q> {
        Box::new(LearnedQueryScorer {
            featurizer: self.featurizer,
            model: self.model,
            memo: MemoEstimator::new(self.est),
            query,
        })
    }
}

struct LearnedQueryScorer<'q> {
    featurizer: &'q Featurizer,
    model: &'q dyn ValueModel,
    memo: MemoEstimator<'q>,
    query: &'q Query,
}

impl LearnedQueryScorer<'_> {
    fn score(&self, plan: &Plan) -> ScoredTree {
        let x = self.featurizer.featurize(self.query, plan, &self.memo);
        let pred = self.model.predict(&x).min(MAX_LOG_PRED);
        let secs = pred.exp();
        ScoredTree {
            score: secs,
            sc: SubtreeCost {
                work: secs,
                out_rows: self.memo.cardinality(self.query, plan.mask()).max(0.0),
                sorted_on: Vec::new(),
            },
        }
    }
}

impl QueryScorer for LearnedQueryScorer<'_> {
    fn score_scan(&self, scan: &Plan) -> ScoredTree {
        self.score(scan)
    }

    fn score_join(&self, join: &Plan, _lc: &ScoredTree, _rc: &ScoredTree) -> ScoredTree {
        // The value model scores the joined state directly; child scores
        // are not composed (the features already encode the subtree).
        self.score(join)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinearValueModel;
    use balsa_card::HistogramEstimator;
    use balsa_cost::OpWeights;
    use balsa_query::workloads::job_workload;
    use balsa_search::{BeamPlanner, Planner, SearchMode};
    use balsa_storage::{mini_imdb, DataGenConfig};
    use std::sync::Arc;

    #[test]
    fn untrained_model_still_yields_valid_complete_plans() {
        let db = Arc::new(mini_imdb(DataGenConfig {
            scale: 0.02,
            ..Default::default()
        }));
        let w = job_workload(db.catalog(), 7);
        let est = HistogramEstimator::new(&db);
        let featurizer = Featurizer::new(db.clone(), OpWeights::postgres_like(), true);
        let model = LinearValueModel::new(featurizer.dim());
        let scorer = LearnedScorer::new(&featurizer, &model, &est);
        let planner = BeamPlanner::new(&db, &scorer, SearchMode::Bushy, 5);
        assert!(planner.name().contains("learned-linear"));
        for q in w.queries.iter().take(3) {
            let out = planner.plan(q);
            assert_eq!(out.plan.mask(), q.all_mask(), "{}", q.name);
            assert!(out.cost.is_finite() && out.cost > 0.0);
        }
    }
}
