//! # balsa-learn
//!
//! The learning subsystem of balsa-rs — the paper's core contribution:
//! a value function learned from the system's own executions,
//! bootstrapped from a simulator, with **no expert demonstrations**.
//!
//! * [`Featurizer`] — §7's encoding of `(query, partial plan)` states:
//!   table one-hots, join-graph edge channels, estimated-cardinality and
//!   cost channels, operator/shape channels, and the engine mode.
//! * [`ValueModel`] / [`LinearValueModel`] / [`TreeConvValueModel`] —
//!   the learned predictor of a subplan's log latency: a ridge linear
//!   regressor over the flat encoding, and the paper's tree-convolution
//!   network (§6) over the per-node binary-tree tensor encoding (triple
//!   filters, dynamic max-pooling, MLP head, manual backprop), both
//!   trained by the same censored-hinge minibatch SGD.
//! * [`ExperienceBuffer`] — deduplicated per-subplan labels from both
//!   simulated (`C_out`) and real (`ExecutionEnv`, timeout-censored)
//!   runs, with best-label retention (§4.2).
//! * [`LearnedScorer`] — the value model plugged into
//!   `balsa_cost::PlanScorer`, driving the same beam search as the
//!   classical cost models (§5).
//! * [`train_loop`] — the two-phase driver: simulation pretraining, then
//!   real-execution fine-tuning with epsilon-greedy exploration, all
//!   charged to the environment's simulated clock (§4–§6).
//! * [`CheckpointData`] — crash-safe atomic training checkpoints:
//!   kill-at-iteration-k + resume reproduces the uninterrupted run's
//!   remaining iterations and final checkpoint bit-for-bit.

pub mod buffer;
pub mod checkpoint;
pub mod featurize;
pub mod model;
pub mod scorer;
pub mod train;
pub mod treeconv;

pub use buffer::{Experience, ExperienceBuffer, LabelSource};
pub use checkpoint::{BufferEntry, CheckpointData};
pub use featurize::{Featurizer, FlatState};
pub use model::{
    shuffle_epoch_order, FeatureEncoding, FitReport, JoinStateItem, LinearValueModel, ModelKind,
    ModelState, Optimizer, OptimizerKind, ResidualValueModel, SgdConfig, TrainSet, ValueModel,
};
pub use scorer::LearnedScorer;
pub use train::{
    evaluate_expert_baseline, evaluate_learned, geo_mean, make_model, median, train_loop,
    IterationStats, TrainBreakdown, TrainConfig, TrainOutcome,
};
pub use treeconv::{TreeConvConfig, TreeConvValueModel};
