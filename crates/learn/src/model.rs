//! The learned value model.
//!
//! [`ValueModel`] abstracts "predict the (log) latency of a subplan from
//! its features" so richer function classes (the paper's tree
//! convolution) can slot in later; [`LinearValueModel`] is the first
//! instance — a ridge-regularized linear regressor trained by minibatch
//! SGD on the vendored `rand` (Gaussian weight init, seeded shuffling).
//!
//! Labels live in **log space** (latencies span orders of magnitude) and
//! may be **timeout-censored lower bounds** (§4.3): a censored sample
//! contributes gradient only while the model predicts *below* the bound
//! — a one-sided hinge, so killed executions still teach "at least this
//! slow" without anchoring the model to the arbitrary budget value.

use rand::rngs::SmallRng;
use rand::{RngExt, SliceRandomExt};
use std::any::Any;
use std::sync::Arc;

/// Negative-side slope of the leaky ReLU used by the neural models.
pub const LRELU_SLOPE: f64 = 0.01;

/// Which state encoding a model consumes, and therefore which
/// [`crate::Featurizer`] output must feed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureEncoding {
    /// One fixed-length vector per `(query, subplan)` state
    /// ([`crate::Featurizer::featurize`]).
    Flat,
    /// The flat binary-tree tensor encoding — per-node feature rows plus
    /// child indices ([`crate::Featurizer::featurize_tree`]).
    Tree,
}

/// Which value-model family to instantiate (checkpoint selection in the
/// training loop and model flags in the benchmarks go through this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Ridge-regularized linear regressor over the flat encoding.
    Linear,
    /// Tree-convolution network over the per-node encoding (§6).
    TreeConv,
}

impl ModelKind {
    /// Stable name used in benchmark JSON and CLI flags.
    pub fn as_str(&self) -> &'static str {
        match self {
            ModelKind::Linear => "linear",
            ModelKind::TreeConv => "tree_conv",
        }
    }

    /// Parses a CLI/env flag value (the inverse of
    /// [`ModelKind::as_str`]).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "linear" => Some(ModelKind::Linear),
            "tree_conv" => Some(ModelKind::TreeConv),
            _ => None,
        }
    }

    /// Parses a `BALSA_MODEL`-style selection: one family name or
    /// `both`. `None` means the spec is garbled — callers warn loudly
    /// and fall back to the default selection, never silently.
    pub fn parse_spec(s: &str) -> Option<Vec<ModelKind>> {
        match s {
            "both" => Some(vec![ModelKind::Linear, ModelKind::TreeConv]),
            other => ModelKind::parse(other).map(|k| vec![k]),
        }
    }
}

/// Opaque incremental per-subtree inference state threaded through the
/// beam's [`balsa_cost::ScoredTree`] child hooks.
pub type ModelState = Arc<dyn Any + Send + Sync>;

/// One `(node encoding, left state, right state)` item of a batched
/// join-state composition ([`ValueModel::join_state_batch`]).
pub struct JoinStateItem<'a> {
    /// The join node's per-node encoding.
    pub node_x: &'a [f64],
    /// The left child's incremental state.
    pub left: &'a ModelState,
    /// The right child's incremental state.
    pub right: &'a ModelState,
}

/// Which per-parameter update rule the minibatch gradients feed
/// (`BALSA_OPTIMIZER=sgd|momentum|adam` in the benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerKind {
    /// Plain SGD: `p -= lr · (g + l2·mask·p)` (momentum forced to 0).
    Sgd,
    /// Classical momentum on the updates, using [`SgdConfig::momentum`].
    /// With `momentum = 0` this is exactly [`OptimizerKind::Sgd`].
    Momentum,
    /// Adam: bias-corrected first/second moments give per-parameter
    /// step scaling — the paper trains its value network with Adam, and
    /// the non-convex tree-conv loss wants it (flat pooled channels and
    /// rarely-active censored samples get tiny raw gradients).
    Adam,
}

impl OptimizerKind {
    /// Stable name used in benchmark JSON and CLI flags.
    pub fn as_str(&self) -> &'static str {
        match self {
            OptimizerKind::Sgd => "sgd",
            OptimizerKind::Momentum => "momentum",
            OptimizerKind::Adam => "adam",
        }
    }

    /// Parses a CLI/env flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sgd" => Some(OptimizerKind::Sgd),
            "momentum" => Some(OptimizerKind::Momentum),
            "adam" => Some(OptimizerKind::Adam),
            _ => None,
        }
    }
}

/// Minibatch-SGD hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct SgdConfig {
    /// Full passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f64,
    /// L2 (ridge) penalty on the weights (not the bias).
    pub l2: f64,
    /// Classical momentum on the parameter updates (0 disables; the
    /// tree-convolution net wants ~0.9, the convex linear fit none).
    /// Read only by [`OptimizerKind::Momentum`].
    pub momentum: f64,
    /// Update rule the per-minibatch mean gradient feeds.
    pub optimizer: OptimizerKind,
    /// Adam first-moment decay.
    pub beta1: f64,
    /// Adam second-moment decay.
    pub beta2: f64,
    /// Adam denominator fuzz.
    pub adam_eps: f64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            epochs: 60,
            batch: 64,
            lr: 0.03,
            l2: 1e-4,
            momentum: 0.0,
            optimizer: OptimizerKind::Momentum,
            beta1: 0.9,
            beta2: 0.999,
            adam_eps: 1e-8,
        }
    }
}

/// Per-parameter optimizer state shared by every value-model fit; one
/// [`Optimizer::step`] per minibatch applies the configured update rule
/// to the flat parameter vector.
#[derive(Debug, Clone)]
pub struct Optimizer {
    kind: OptimizerKind,
    /// Momentum velocity (momentum/sgd kinds).
    vel: Vec<f64>,
    /// Adam first and second moments.
    m: Vec<f64>,
    v: Vec<f64>,
    /// Adam step counter (advances only on applied steps, so empty
    /// minibatches never skew the bias correction).
    t: i32,
}

impl Optimizer {
    /// Fresh state for `dim` parameters under `cfg`'s update rule.
    pub fn new(cfg: &SgdConfig, dim: usize) -> Self {
        let adam = cfg.optimizer == OptimizerKind::Adam;
        Self {
            kind: cfg.optimizer,
            vel: if adam { Vec::new() } else { vec![0.0; dim] },
            m: if adam { vec![0.0; dim] } else { Vec::new() },
            v: if adam { vec![0.0; dim] } else { Vec::new() },
            t: 0,
        }
    }

    /// Applies one minibatch update. `grad` is the batch-**mean**
    /// gradient; `mask[j] = 1.0` marks weights (L2-penalized), `0.0`
    /// biases. The momentum path reproduces the historical inline
    /// update (`v = mom·v + g + l2·mask·p; p -= lr·v`) bit-for-bit;
    /// Adam folds the same masked L2 term into the gradient before the
    /// moment updates (classical, not decoupled, weight decay).
    pub fn step(&mut self, cfg: &SgdConfig, params: &mut [f64], grad: &[f64], mask: &[f64]) {
        debug_assert_eq!(params.len(), grad.len());
        debug_assert_eq!(params.len(), mask.len());
        match self.kind {
            OptimizerKind::Sgd | OptimizerKind::Momentum => {
                let mom = if self.kind == OptimizerKind::Sgd {
                    0.0
                } else {
                    cfg.momentum
                };
                for (((p, g), m), v) in params.iter_mut().zip(grad).zip(mask).zip(&mut self.vel) {
                    *v = mom * *v + g + cfg.l2 * m * *p;
                    *p -= cfg.lr * *v;
                }
            }
            OptimizerKind::Adam => {
                self.t += 1;
                let bc1 = 1.0 - cfg.beta1.powi(self.t);
                let bc2 = 1.0 - cfg.beta2.powi(self.t);
                for (((p, g), msk), (m, v)) in params
                    .iter_mut()
                    .zip(grad)
                    .zip(mask)
                    .zip(self.m.iter_mut().zip(&mut self.v))
                {
                    let g = g + cfg.l2 * msk * *p;
                    *m = cfg.beta1 * *m + (1.0 - cfg.beta1) * g;
                    *v = cfg.beta2 * *v + (1.0 - cfg.beta2) * (g * g);
                    *p -= cfg.lr * (*m / bc1) / ((*v / bc2).sqrt() + cfg.adam_eps);
                }
            }
        }
    }
}

/// Advances the minibatch sampler by one epoch: shuffles the running
/// visit order in place. Every fit — linear or tree-conv, batched or
/// per-sample — draws its epoch orders through this one function, so
/// the sampler RNG stream is a single pinned contract (covered by a
/// pinned-stream test) and the batched/per-sample paths consume `rng`
/// identically by construction.
pub fn shuffle_epoch_order(order: &mut [usize], rng: &mut SmallRng) {
    order.shuffle(rng);
}

/// A training set in feature space. `ys` are log-latencies; a `true` in
/// `censored` marks the label as a timeout lower bound.
#[derive(Debug, Clone, Default)]
pub struct TrainSet {
    /// Feature vectors (all the same length).
    pub xs: Vec<Vec<f64>>,
    /// Log-space labels.
    pub ys: Vec<f64>,
    /// Censoring flags, parallel to `ys`.
    pub censored: Vec<bool>,
}

impl TrainSet {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.ys.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }
}

/// What one [`ValueModel::fit`] call did.
#[derive(Debug, Clone, Copy, Default)]
pub struct FitReport {
    /// SGD steps performed (for `SimClock::charge_update`).
    pub steps: u64,
    /// Mean squared error (censored samples via one-sided hinge) over
    /// the training set after fitting.
    pub mse: f64,
    /// Measured wall seconds in the forward passes (0 for models whose
    /// fit does not separate the phases, e.g. the linear regressor).
    pub forward_secs: f64,
    /// Measured wall seconds in backprop + parameter updates.
    pub backward_secs: f64,
}

/// Predicts a scalar value (log latency) from an encoded state.
pub trait ValueModel: Send + Sync {
    /// Model name for reports.
    fn name(&self) -> String;

    /// Which featurizer encoding this model consumes.
    fn encoding(&self) -> FeatureEncoding {
        FeatureEncoding::Flat
    }

    /// Whether the model has been fit at least once.
    fn is_fitted(&self) -> bool;

    /// Predicts the log-latency for one encoded state.
    fn predict(&self, x: &[f64]) -> f64;

    /// Trains on `data` (consumed — extraction from the buffer already
    /// yields an owned set), continuing from the current parameters
    /// (fine-tuning when called repeatedly).
    fn fit(&mut self, data: TrainSet, cfg: &SgdConfig, rng: &mut SmallRng) -> FitReport;

    /// Reference per-sample fit: the same samples, sampler stream, and
    /// update arithmetic as [`ValueModel::fit`] with any batched
    /// training kernels bypassed. Models without a distinct batched
    /// path just forward to `fit`; the benchmark's
    /// batched-vs-per-sample training gate times the two against each
    /// other.
    fn fit_per_sample(&mut self, data: TrainSet, cfg: &SgdConfig, rng: &mut SmallRng) -> FitReport {
        self.fit(data, cfg, rng)
    }

    /// All parameters as one flat vector — the serialization-ready
    /// checkpoint form, and the exact-equality witness the determinism
    /// tests compare.
    fn params(&self) -> Vec<f64>;

    /// The model's **complete** internal state as one flat vector, the
    /// round-trippable form [`ValueModel::load_state`] restores
    /// exactly. Distinct from [`ValueModel::params`]: `params` is a
    /// normalized comparison form (the linear model folds its frozen
    /// feature standardization into raw-space weights there, which is
    /// lossy — two different internal states can share a `params`
    /// vector, and SGD continues in the *internal* space). Crash-safe
    /// resume needs `state_vec`; determinism witnesses use `params`.
    fn state_vec(&self) -> Vec<f64>;

    /// Restores the state captured by [`ValueModel::state_vec`] into a
    /// freshly-constructed model of the same architecture. After a
    /// successful load the model continues training bit-identically to
    /// the one that was saved.
    fn load_state(&mut self, state: &[f64]) -> Result<(), String>;

    /// Clones the model behind the trait (checkpointing).
    fn clone_box(&self) -> Box<dyn ValueModel>;

    /// Opens an incremental inference state for a scan leaf whose
    /// per-node encoding is `node_x`. `None` when the model scores only
    /// full encodings; callers then fall back to [`ValueModel::predict`].
    fn leaf_state(&self, node_x: &[f64]) -> Option<ModelState> {
        let _ = node_x;
        None
    }

    /// Composes the state of a join node from its children's states in
    /// O(1) — the beam's per-candidate hot path.
    fn join_state(
        &self,
        node_x: &[f64],
        left: &ModelState,
        right: &ModelState,
    ) -> Option<ModelState> {
        let _ = (node_x, left, right);
        None
    }

    /// The predicted log-latency of an incremental state.
    fn state_value(&self, state: &ModelState) -> Option<f64> {
        let _ = state;
        None
    }

    /// Batched form of [`ValueModel::predict`]: one prediction per
    /// encoded state, in input order. Must be **bit-identical** to
    /// mapping `predict` over `xs` — overrides may only restructure the
    /// computation (shared scratch, filters × batch loops), never change
    /// the per-sample arithmetic.
    fn predict_batch(&self, xs: &[&[f64]]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Batched form of [`ValueModel::join_state`]: composes the states
    /// of all candidate joins of one beam level in a single pass —
    /// models with dense per-state math (the tree convolution) override
    /// this to stream each filter row across the whole batch. `None`
    /// when the model does not support incremental states; otherwise
    /// one state per item, bit-identical to the per-item calls.
    fn join_state_batch(&self, items: &[JoinStateItem<'_>]) -> Option<Vec<ModelState>> {
        items
            .iter()
            .map(|it| self.join_state(it.node_x, it.left, it.right))
            .collect()
    }

    /// Batched form of [`ValueModel::state_value`], in input order.
    fn state_value_batch(&self, states: &[ModelState]) -> Option<Vec<f64>> {
        states.iter().map(|s| self.state_value(s)).collect()
    }
}

impl Clone for Box<dyn ValueModel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Ridge-regularized linear regressor over standardized features.
#[derive(Debug, Clone)]
pub struct LinearValueModel {
    w: Vec<f64>,
    b: f64,
    /// Per-feature standardization, frozen at the first fit so that
    /// fine-tuning keeps the parameter space consistent across phases.
    mean: Vec<f64>,
    inv_std: Vec<f64>,
    fitted: bool,
}

impl LinearValueModel {
    /// Creates an untrained model for `dim` features (predicts 0).
    pub fn new(dim: usize) -> Self {
        Self {
            w: vec![0.0; dim],
            b: 0.0,
            mean: vec![0.0; dim],
            inv_std: vec![1.0; dim],
            fitted: false,
        }
    }

    /// Whether the model has been fit at least once.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    /// The weight vector (standardized space), for introspection.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// Raw-space form `(w, b)` with standardization folded in, so that
    /// `predict(x) = w·x + b`.
    fn raw_form(&self) -> (Vec<f64>, f64) {
        let w: Vec<f64> = self
            .w
            .iter()
            .zip(&self.inv_std)
            .map(|(&w, &s)| w * s)
            .collect();
        let b = self.b
            - self
                .w
                .iter()
                .zip(self.mean.iter().zip(&self.inv_std))
                .map(|(&w, (&m, &s))| w * m * s)
                .sum::<f64>();
        (w, b)
    }

    /// Collapses `self + other` into one linear model predicting the sum
    /// of both predictions. Used by residual fine-tuning: the simulation
    /// phase's model stays frozen as the base, a correction model is
    /// trained on real-execution residuals, and their merge is the
    /// deployable value model. Merging with an unfitted model returns
    /// `self` exactly.
    pub fn merged_with(&self, other: &LinearValueModel) -> LinearValueModel {
        assert_eq!(self.w.len(), other.w.len(), "dimension mismatch");
        let (wa, ba) = self.raw_form();
        let (wb, bb) = other.raw_form();
        LinearValueModel {
            w: wa.iter().zip(&wb).map(|(a, b)| a + b).collect(),
            b: ba + bb,
            mean: vec![0.0; self.w.len()],
            inv_std: vec![1.0; self.w.len()],
            fitted: self.fitted || other.fitted,
        }
    }

    fn standardized(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            x.iter()
                .zip(self.mean.iter().zip(&self.inv_std))
                .map(|(&v, (&m, &s))| (v - m) * s),
        );
    }

    fn raw_predict(&self, z: &[f64]) -> f64 {
        self.w.iter().zip(z).map(|(w, z)| w * z).sum::<f64>() + self.b
    }
}

impl ValueModel for LinearValueModel {
    fn name(&self) -> String {
        "linear".into()
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn params(&self) -> Vec<f64> {
        // Raw-space form, so two models that predict identically have
        // identical parameter vectors regardless of standardization.
        let (mut v, b) = self.raw_form();
        v.push(b);
        v
    }

    fn state_vec(&self) -> Vec<f64> {
        // Internal space: w, b, and the frozen standardization — the
        // raw `params` form cannot reconstruct these, and SGD steps in
        // the standardized space.
        let dim = self.w.len();
        let mut v = Vec::with_capacity(3 * dim + 2);
        v.push(self.fitted as u8 as f64);
        v.extend_from_slice(&self.w);
        v.push(self.b);
        v.extend_from_slice(&self.mean);
        v.extend_from_slice(&self.inv_std);
        v
    }

    fn load_state(&mut self, state: &[f64]) -> Result<(), String> {
        let dim = self.w.len();
        if state.len() != 3 * dim + 2 {
            return Err(format!(
                "linear state length {} != {} (dim {dim})",
                state.len(),
                3 * dim + 2
            ));
        }
        self.fitted = state[0] != 0.0;
        self.w.copy_from_slice(&state[1..1 + dim]);
        self.b = state[1 + dim];
        self.mean.copy_from_slice(&state[2 + dim..2 + 2 * dim]);
        self.inv_std.copy_from_slice(&state[2 + 2 * dim..]);
        Ok(())
    }

    fn clone_box(&self) -> Box<dyn ValueModel> {
        Box::new(self.clone())
    }

    fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.w.len(), "feature length mismatch");
        let mut z = Vec::with_capacity(x.len());
        self.standardized(x, &mut z);
        self.raw_predict(&z)
    }

    /// Linear batching is trivial: one reused standardization buffer,
    /// per-sample math unchanged (bit-identical to `predict`).
    fn predict_batch(&self, xs: &[&[f64]]) -> Vec<f64> {
        let mut z = Vec::with_capacity(self.w.len());
        xs.iter()
            .map(|x| {
                assert_eq!(x.len(), self.w.len(), "feature length mismatch");
                self.standardized(x, &mut z);
                self.raw_predict(&z)
            })
            .collect()
    }

    fn fit(&mut self, data: TrainSet, cfg: &SgdConfig, rng: &mut SmallRng) -> FitReport {
        assert_eq!(data.xs.len(), data.ys.len());
        assert_eq!(data.censored.len(), data.ys.len());
        if data.is_empty() {
            return FitReport::default();
        }
        let dim = self.w.len();
        let n = data.len();

        if !self.fitted {
            // Freeze standardization on the first training distribution.
            for (j, m) in self.mean.iter_mut().enumerate() {
                *m = data.xs.iter().map(|x| x[j]).sum::<f64>() / n as f64;
            }
            for (j, s) in self.inv_std.iter_mut().enumerate() {
                let m = self.mean[j];
                let var = data.xs.iter().map(|x| (x[j] - m) * (x[j] - m)).sum::<f64>() / n as f64;
                *s = if var > 1e-12 { 1.0 / var.sqrt() } else { 0.0 };
            }
            // Gaussian init and a bias at the label mean put the first
            // predictions in range.
            for w in &mut self.w {
                *w = rng.random_normal(0.0, 0.01);
            }
            self.b = data.ys.iter().sum::<f64>() / n as f64;
            self.fitted = true;
        }

        // Pre-standardize once.
        let zs: Vec<Vec<f64>> = data
            .xs
            .iter()
            .map(|x| {
                assert_eq!(x.len(), dim, "feature length mismatch");
                let mut z = Vec::with_capacity(dim);
                self.standardized(x, &mut z);
                z
            })
            .collect();

        // Flat parameter vector `[w…, b]` through the shared optimizer;
        // the weight-only L2 mask zeroes decay on the bias exactly as
        // the historical inline update did.
        let mut params: Vec<f64> = self.w.iter().copied().chain([self.b]).collect();
        let mut mask = vec![1.0; dim + 1];
        mask[dim] = 0.0;
        let mut opt = Optimizer::new(cfg, dim + 1);
        let mut order: Vec<usize> = (0..n).collect();
        let mut grad = vec![0.0; dim + 1];
        let mut steps = 0u64;
        for _epoch in 0..cfg.epochs {
            shuffle_epoch_order(&mut order, rng);
            for chunk in order.chunks(cfg.batch.max(1)) {
                grad.iter_mut().for_each(|g| *g = 0.0);
                let mut active = 0usize;
                for &i in chunk {
                    let pred = params[..dim]
                        .iter()
                        .zip(&zs[i])
                        .map(|(w, z)| w * z)
                        .sum::<f64>()
                        + params[dim];
                    let resid = pred - data.ys[i];
                    // Censored lower bound: no penalty once we predict
                    // at or above it.
                    if data.censored[i] && resid >= 0.0 {
                        continue;
                    }
                    active += 1;
                    for (g, z) in grad.iter_mut().zip(&zs[i]) {
                        *g += resid * z;
                    }
                    grad[dim] += resid;
                }
                if active > 0 {
                    let inv = 1.0 / active as f64;
                    grad.iter_mut().for_each(|g| *g *= inv);
                    opt.step(cfg, &mut params, &grad, &mask);
                }
                steps += 1;
            }
        }
        self.w.copy_from_slice(&params[..dim]);
        self.b = params[dim];

        let mse = zs
            .iter()
            .zip(data.ys.iter().zip(&data.censored))
            .map(|(z, (&y, &c))| {
                let r = self.raw_predict(z) - y;
                if c && r >= 0.0 {
                    0.0
                } else {
                    r * r
                }
            })
            .sum::<f64>()
            / n as f64;
        FitReport {
            steps,
            mse,
            ..FitReport::default()
        }
    }
}

/// A frozen base model plus a trainable correction, predicting the sum
/// of both — the model-agnostic form of residual fine-tuning (§4.2): the
/// simulation phase's model stays fixed and real-execution evidence only
/// trains the correction. For linear models this predicts exactly what
/// [`LinearValueModel::merged_with`] collapses to; for the tree-conv net
/// it is the only way to keep the pretrained policy as the anchor.
pub struct ResidualValueModel {
    base: Box<dyn ValueModel>,
    correction: Box<dyn ValueModel>,
}

impl ResidualValueModel {
    /// Wraps `base` (frozen) with a trainable `correction`. Both must
    /// consume the same encoding.
    pub fn new(base: Box<dyn ValueModel>, correction: Box<dyn ValueModel>) -> Self {
        assert_eq!(
            base.encoding(),
            correction.encoding(),
            "base and correction must share an encoding"
        );
        Self { base, correction }
    }

    /// The frozen base model.
    pub fn base(&self) -> &dyn ValueModel {
        &*self.base
    }

    /// The trainable correction model.
    pub fn correction(&self) -> &dyn ValueModel {
        &*self.correction
    }
}

impl ValueModel for ResidualValueModel {
    fn name(&self) -> String {
        format!("{}+res", self.base.name())
    }

    fn encoding(&self) -> FeatureEncoding {
        self.base.encoding()
    }

    fn is_fitted(&self) -> bool {
        self.base.is_fitted() || self.correction.is_fitted()
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.base.predict(x) + self.correction.predict(x)
    }

    /// Fits the correction on the residual labels `y − base(x)` (labels
    /// are adjusted in place — no copy of the feature vectors). A
    /// censored lower bound on `y` remains a lower bound on the residual.
    fn fit(&mut self, mut data: TrainSet, cfg: &SgdConfig, rng: &mut SmallRng) -> FitReport {
        for (x, y) in data.xs.iter().zip(data.ys.iter_mut()) {
            *y -= self.base.predict(x);
        }
        self.correction.fit(data, cfg, rng)
    }

    /// Same residual-label adjustment, correction trained through its
    /// per-sample reference path.
    fn fit_per_sample(
        &mut self,
        mut data: TrainSet,
        cfg: &SgdConfig,
        rng: &mut SmallRng,
    ) -> FitReport {
        for (x, y) in data.xs.iter().zip(data.ys.iter_mut()) {
            *y -= self.base.predict(x);
        }
        self.correction.fit_per_sample(data, cfg, rng)
    }

    fn params(&self) -> Vec<f64> {
        let mut v = self.base.params();
        v.extend(self.correction.params());
        v
    }

    fn state_vec(&self) -> Vec<f64> {
        // Length-prefix the base half so the split survives halves
        // whose state length varies with fitted-ness.
        let base = self.base.state_vec();
        let mut v = Vec::with_capacity(base.len() + 1);
        v.push(base.len() as f64);
        v.extend(base);
        v.extend(self.correction.state_vec());
        v
    }

    fn load_state(&mut self, state: &[f64]) -> Result<(), String> {
        let n = *state.first().ok_or("empty residual state")? as usize;
        let rest = &state[1..];
        if n > rest.len() {
            return Err(format!(
                "residual base length {n} exceeds state length {}",
                rest.len()
            ));
        }
        self.base.load_state(&rest[..n])?;
        self.correction.load_state(&rest[n..])
    }

    fn clone_box(&self) -> Box<dyn ValueModel> {
        Box::new(ResidualValueModel {
            base: self.base.clone_box(),
            correction: self.correction.clone_box(),
        })
    }

    fn leaf_state(&self, node_x: &[f64]) -> Option<ModelState> {
        let b = self.base.leaf_state(node_x)?;
        let c = self.correction.leaf_state(node_x)?;
        Some(Arc::new((b, c)))
    }

    fn join_state(
        &self,
        node_x: &[f64],
        left: &ModelState,
        right: &ModelState,
    ) -> Option<ModelState> {
        let (lb, lc) = left.downcast_ref::<(ModelState, ModelState)>()?;
        let (rb, rc) = right.downcast_ref::<(ModelState, ModelState)>()?;
        let b = self.base.join_state(node_x, lb, rb)?;
        let c = self.correction.join_state(node_x, lc, rc)?;
        Some(Arc::new((b, c)))
    }

    fn state_value(&self, state: &ModelState) -> Option<f64> {
        let (b, c) = state.downcast_ref::<(ModelState, ModelState)>()?;
        Some(self.base.state_value(b)? + self.correction.state_value(c)?)
    }

    /// Routes both halves through their own batched paths; the sum per
    /// sample matches [`ResidualValueModel::predict`] bit-for-bit.
    fn predict_batch(&self, xs: &[&[f64]]) -> Vec<f64> {
        let base = self.base.predict_batch(xs);
        let corr = self.correction.predict_batch(xs);
        base.iter().zip(&corr).map(|(b, c)| b + c).collect()
    }

    fn join_state_batch(&self, items: &[JoinStateItem<'_>]) -> Option<Vec<ModelState>> {
        let pairs: Option<Vec<_>> = items
            .iter()
            .map(|it| {
                Some((
                    it.left.downcast_ref::<(ModelState, ModelState)>()?,
                    it.right.downcast_ref::<(ModelState, ModelState)>()?,
                ))
            })
            .collect();
        let pairs = pairs?;
        let base_items: Vec<JoinStateItem<'_>> = items
            .iter()
            .zip(&pairs)
            .map(|(it, (l, r))| JoinStateItem {
                node_x: it.node_x,
                left: &l.0,
                right: &r.0,
            })
            .collect();
        let corr_items: Vec<JoinStateItem<'_>> = items
            .iter()
            .zip(&pairs)
            .map(|(it, (l, r))| JoinStateItem {
                node_x: it.node_x,
                left: &l.1,
                right: &r.1,
            })
            .collect();
        let base = self.base.join_state_batch(&base_items)?;
        let corr = self.correction.join_state_batch(&corr_items)?;
        Some(
            base.into_iter()
                .zip(corr)
                .map(|(b, c)| Arc::new((b, c)) as ModelState)
                .collect(),
        )
    }

    fn state_value_batch(&self, states: &[ModelState]) -> Option<Vec<f64>> {
        let pairs: Option<Vec<_>> = states
            .iter()
            .map(|s| s.downcast_ref::<(ModelState, ModelState)>())
            .collect();
        let pairs = pairs?;
        let base_states: Vec<ModelState> = pairs.iter().map(|p| p.0.clone()).collect();
        let corr_states: Vec<ModelState> = pairs.iter().map(|p| p.1.clone()).collect();
        let base = self.base.state_value_batch(&base_states)?;
        let corr = self.correction.state_value_batch(&corr_states)?;
        Some(base.into_iter().zip(corr).map(|(b, c)| b + c).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Parse table for the `BALSA_MODEL` / `BALSA_OPTIMIZER` env specs
    /// (the warn-and-fallback treatment in `bench_learning` relies on
    /// `None` meaning "garbled", mirroring `BALSA_PLAN_THREADS`).
    #[test]
    fn env_spec_parse_tables() {
        use ModelKind::*;
        let model_cases: &[(&str, Option<Vec<ModelKind>>)] = &[
            ("linear", Some(vec![Linear])),
            ("tree_conv", Some(vec![TreeConv])),
            ("both", Some(vec![Linear, TreeConv])),
            ("", None),
            ("treeconv", None),
            ("Linear", None),
            ("linear,tree_conv", None),
            (" both", None),
        ];
        for (raw, want) in model_cases {
            assert_eq!(&ModelKind::parse_spec(raw), want, "BALSA_MODEL={raw:?}");
        }
        let opt_cases: &[(&str, Option<OptimizerKind>)] = &[
            ("sgd", Some(OptimizerKind::Sgd)),
            ("momentum", Some(OptimizerKind::Momentum)),
            ("adam", Some(OptimizerKind::Adam)),
            ("", None),
            ("Adam", None),
            ("adamw", None),
            ("sgd ", None),
        ];
        for (raw, want) in opt_cases {
            assert_eq!(&OptimizerKind::parse(raw), want, "BALSA_OPTIMIZER={raw:?}");
        }
    }

    fn synth(n: usize, rng: &mut SmallRng) -> TrainSet {
        // y = 2*x0 - 3*x1 + 0.5 plus small noise.
        let mut set = TrainSet::default();
        for _ in 0..n {
            let x0: f64 = rng.random::<f64>() * 4.0;
            let x1: f64 = rng.random::<f64>() * 4.0;
            let y = 2.0 * x0 - 3.0 * x1 + 0.5 + rng.random_normal(0.0, 0.01);
            set.xs.push(vec![x0, x1]);
            set.ys.push(y);
            set.censored.push(false);
        }
        set
    }

    #[test]
    fn recovers_a_linear_function() {
        let mut rng = SmallRng::seed_from_u64(1);
        let data = synth(500, &mut rng);
        let mut m = LinearValueModel::new(2);
        let report = m.fit(data, &SgdConfig::default(), &mut rng);
        assert!(report.steps > 0);
        assert!(report.mse < 0.05, "mse {}", report.mse);
        let pred = m.predict(&[1.0, 1.0]);
        assert!((pred - (-0.5)).abs() < 0.3, "pred {pred}");
    }

    #[test]
    fn fit_is_deterministic_given_seed() {
        let data = synth(200, &mut SmallRng::seed_from_u64(2));
        let fit = |seed| {
            let mut m = LinearValueModel::new(2);
            m.fit(
                data.clone(),
                &SgdConfig::default(),
                &mut SmallRng::seed_from_u64(seed),
            );
            m.predict(&[2.0, 1.0])
        };
        assert_eq!(fit(7), fit(7));
    }

    #[test]
    fn censored_labels_push_up_but_do_not_anchor() {
        let mut rng = SmallRng::seed_from_u64(3);
        // All samples censored at 5.0: the model must predict >= ~5 but
        // is free to go higher; with only hinge data it settles near it.
        let mut data = TrainSet::default();
        for i in 0..200 {
            data.xs.push(vec![(i % 7) as f64, 1.0]);
            data.ys.push(5.0);
            data.censored.push(true);
        }
        // A few uncensored points far above the bound dominate where
        // gradients remain active.
        for _ in 0..50 {
            data.xs.push(vec![3.0, 1.0]);
            data.ys.push(9.0);
            data.censored.push(false);
        }
        let mut m = LinearValueModel::new(2);
        m.fit(data, &SgdConfig::default(), &mut rng);
        let at_bound = m.predict(&[1.0, 1.0]);
        assert!(at_bound > 4.0, "censored floor ignored: {at_bound}");
        let at_high = m.predict(&[3.0, 1.0]);
        assert!(
            (at_high - 9.0).abs() < 1.5,
            "uncensored target missed: {at_high}"
        );
    }

    #[test]
    fn merged_model_predicts_the_sum() {
        let mut rng = SmallRng::seed_from_u64(4);
        let a_data = synth(300, &mut rng);
        let mut a = LinearValueModel::new(2);
        a.fit(a_data.clone(), &SgdConfig::default(), &mut rng);
        // Merging with an unfitted correction changes nothing.
        let same = a.merged_with(&LinearValueModel::new(2));
        for x in [[0.5, 1.5], [3.0, 0.0], [2.2, 2.2]] {
            assert!((same.predict(&x) - a.predict(&x)).abs() < 1e-9);
        }
        // Merging two fitted models sums their predictions.
        let mut b = LinearValueModel::new(2);
        b.fit(a_data, &SgdConfig::default(), &mut rng);
        let m = a.merged_with(&b);
        for x in [[0.5, 1.5], [3.0, 0.0]] {
            assert!((m.predict(&x) - (a.predict(&x) + b.predict(&x))).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_fit_is_a_noop() {
        let mut m = LinearValueModel::new(3);
        let r = m.fit(
            TrainSet::default(),
            &SgdConfig::default(),
            &mut SmallRng::seed_from_u64(0),
        );
        assert_eq!(r.steps, 0);
        assert!(!m.is_fitted());
    }
}
