//! Crash-safe training checkpoints.
//!
//! [`train_loop`] can be killed at any moment — process crash, OOM,
//! preemption — and must restart without losing its run or breaking
//! bit-reproducibility. The checkpoint captures **everything** phase 2
//! threads through an iteration boundary:
//!
//! * the fine-tuning model's full internal state
//!   ([`ValueModel::state_vec`], which — unlike `params` — round-trips
//!   frozen feature standardization) and the best-so-far validation
//!   checkpoint;
//! * the master RNG's mid-stream state (the vendored xoshiro256++
//!   exposes its four words), so post-resume fits consume exactly the
//!   draws the uninterrupted run would have;
//! * the experience buffer, as `(query, plan, label)` triples with
//!   plans in [`Plan::encode_compact`] form — features are a pure
//!   function of `(query, plan)` and are recomputed at load, keeping
//!   checkpoints small;
//! * the execution environment's plan cache and hit/miss counters
//!   ([`balsa_engine::EnvSnapshot`]);
//! * per-query best latencies (timeout budgets), the trajectory so
//!   far, the resilience counters, and the expert-fallback window.
//!
//! **Atomicity:** [`CheckpointData::save_atomic`] writes to a temp file
//! in the same directory and `rename`s it into place — a crash
//! mid-write leaves the previous checkpoint intact, never a torn file.
//!
//! **Bit-identity:** every float is serialized as its exact IEEE-754
//! bit pattern (hex), every collection in a deterministic sorted
//! order, and nothing wall-clock-dependent is included — so a
//! kill-at-iteration-k + resume run writes a final checkpoint that is
//! **byte-identical** to the uninterrupted run's (the resume test's
//! acceptance criterion).
//!
//! Measured walls are deliberately excluded — `TrainBreakdown`, the
//! simulated clock (whose planning charges are *measured* planning
//! walls), and each iteration's `sim_hours`. They are honest
//! per-process measurements, not replayable state; including any of
//! them would make two runs of the identical computation produce
//! different checkpoint bytes. After a resume, the sim-hours curve
//! restarts from the resume point and pre-resume entries read as NaN.
//!
//! [`train_loop`]: crate::train_loop
//! [`ValueModel::state_vec`]: crate::ValueModel::state_vec
//! [`Plan::encode_compact`]: balsa_query::Plan::encode_compact

use crate::buffer::LabelSource;
use crate::train::IterationStats;
use balsa_engine::{EnvSnapshot, ResilienceStats};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// One serialized experience-buffer entry. The feature vector is *not*
/// stored: it is recomputed from the plan at load time.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferEntry {
    /// `balsa_engine::query_key` of the owning query.
    pub query_key: u64,
    /// The buffer's frozen structural key (`Plan::canonical_hash`).
    pub fingerprint: u64,
    /// The subplan, in [`balsa_query::Plan::encode_compact`] form.
    pub plan: String,
    /// Label in (pseudo-)seconds.
    pub label_secs: f64,
    /// Whether the label is a censored lower bound.
    pub censored: bool,
    /// Label provenance.
    pub source: LabelSource,
}

/// A complete phase-2 iteration boundary of [`crate::train_loop`].
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointData {
    /// Fingerprint of the training configuration (and fault/retry
    /// config) that produced this checkpoint; resume refuses a
    /// mismatch rather than silently training a different run.
    pub cfg_fingerprint: u64,
    /// Last completed fine-tuning iteration.
    pub iteration: usize,
    /// Master RNG state after this iteration's fit.
    pub rng_state: [u64; 4],
    /// Fine-tuning model state ([`crate::ValueModel::state_vec`] of
    /// the residual wrapper).
    pub model_state: Vec<f64>,
    /// Whether the best-validation model is the residual wrapper
    /// (later iterations) or the plain pretrained model (iteration 0).
    pub best_is_residual: bool,
    /// Best-validation model state.
    pub best_model_state: Vec<f64>,
    /// Best validation geometric-mean latency so far.
    pub best_val: f64,
    /// Per-train-query best observed latencies (timeout budgets),
    /// sorted by query index.
    pub best_lat: Vec<(usize, f64)>,
    /// Recent per-iteration failure+timeout rates (expert-fallback
    /// window), oldest first.
    pub fallback_window: Vec<f64>,
    /// Experience buffer in sorted-key order.
    pub buffer: Vec<BufferEntry>,
    /// Training environment snapshot (plan cache and counters; the
    /// snapshot's `clock_secs` is **not** serialized — the clock
    /// accumulates measured planning walls and is process-local).
    pub env: EnvSnapshot,
    /// Trajectory through this iteration.
    pub trajectory: Vec<IterationStats>,
    /// Resilience counters accumulated so far.
    pub resilience: ResilienceStats,
}

const MAGIC: &str = "balsa-checkpoint v1";

fn hx(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn parse_f64(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad f64 bits {s:?}"))
}

fn parse_u64(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("bad u64 {s:?}"))
}

fn parse_usize(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("bad usize {s:?}"))
}

impl CheckpointData {
    /// Serializes to the deterministic text format.
    pub fn encode(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{MAGIC}");
        let _ = writeln!(s, "cfg {:016x}", self.cfg_fingerprint);
        let _ = writeln!(s, "iteration {}", self.iteration);
        let _ = writeln!(
            s,
            "rng {:016x} {:016x} {:016x} {:016x}",
            self.rng_state[0], self.rng_state[1], self.rng_state[2], self.rng_state[3]
        );
        for (tag, vec) in [
            ("model", &self.model_state),
            ("best", &self.best_model_state),
        ] {
            let _ = write!(s, "{tag} {}", vec.len());
            for v in vec {
                let _ = write!(s, " {}", hx(*v));
            }
            let _ = writeln!(s);
        }
        let _ = writeln!(s, "best_is_residual {}", self.best_is_residual as u8);
        let _ = writeln!(s, "best_val {}", hx(self.best_val));
        let _ = writeln!(s, "best_lat {}", self.best_lat.len());
        for (qi, lat) in &self.best_lat {
            let _ = writeln!(s, "bl {qi} {}", hx(*lat));
        }
        let _ = write!(s, "window {}", self.fallback_window.len());
        for r in &self.fallback_window {
            let _ = write!(s, " {}", hx(*r));
        }
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "env {} {} {}",
            self.env.hits,
            self.env.misses,
            self.env.entries.len()
        );
        for (qk, fp, lat, work) in &self.env.entries {
            let _ = writeln!(s, "ce {qk} {fp} {} {}", hx(*lat), hx(*work));
        }
        let _ = writeln!(s, "buffer {}", self.buffer.len());
        for e in &self.buffer {
            let _ = writeln!(
                s,
                "be {} {} {} {} {} {}",
                e.query_key,
                e.fingerprint,
                match e.source {
                    LabelSource::Simulated => "sim",
                    LabelSource::Real => "real",
                },
                e.censored as u8,
                hx(e.label_secs),
                e.plan
            );
        }
        let _ = writeln!(s, "trajectory {}", self.trajectory.len());
        for t in &self.trajectory {
            let _ = writeln!(
                s,
                "ts {} {} {} {} {} {} {} {} {} {} {} {} {}",
                t.iteration,
                hx(t.train_median_secs),
                hx(t.test_median_secs),
                t.timeouts,
                t.buffer_real,
                t.buffer_sim,
                hx(t.fit_mse),
                hx(t.val_median_secs),
                hx(t.val_geo_mean_secs),
                t.faults,
                t.retries,
                t.abandoned,
                t.fallback as u8
            );
        }
        let r = &self.resilience;
        let _ = writeln!(
            s,
            "resilience {} {} {} {} {} {} {} {} {} {} {} {} {}",
            r.faults_injected,
            r.transients,
            r.crashes,
            r.spikes,
            r.hangs,
            r.retries,
            r.abandoned,
            r.exhausted_censored,
            r.fallback_iterations,
            hx(r.backoff_secs_charged),
            r.planner_errors,
            r.planner_degraded,
            r.planner_exhausted
        );
        let _ = writeln!(s, "end");
        s
    }

    /// Parses [`CheckpointData::encode`] output.
    pub fn decode(text: &str) -> Result<CheckpointData, String> {
        let mut lines = text.lines();
        let mut next = |what: &str| -> Result<&str, String> {
            lines.next().ok_or_else(|| format!("truncated at {what}"))
        };
        if next("magic")? != MAGIC {
            return Err("not a balsa checkpoint (bad magic)".into());
        }
        let field = |line: &str, tag: &str| -> Result<String, String> {
            line.strip_prefix(tag)
                .and_then(|r| r.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| format!("expected {tag:?}, got {line:?}"))
        };
        let cfg_fingerprint = u64::from_str_radix(&field(next("cfg")?, "cfg")?, 16)
            .map_err(|_| "bad cfg fingerprint".to_string())?;
        let iteration = parse_usize(&field(next("iteration")?, "iteration")?)?;
        let rng_words: Vec<u64> = field(next("rng")?, "rng")?
            .split(' ')
            .map(|w| u64::from_str_radix(w, 16).map_err(|_| format!("bad rng word {w:?}")))
            .collect::<Result<_, _>>()?;
        let rng_state: [u64; 4] = rng_words
            .try_into()
            .map_err(|_| "rng needs 4 words".to_string())?;
        let read_vec = |tag: &str, line: &str| -> Result<Vec<f64>, String> {
            let body = field(line, tag)?;
            let mut parts = body.split(' ');
            let n = parse_usize(parts.next().ok_or("missing count")?)?;
            let vec: Vec<f64> = parts.map(parse_f64).collect::<Result<_, _>>()?;
            if vec.len() != n {
                return Err(format!("{tag}: expected {n} values, got {}", vec.len()));
            }
            Ok(vec)
        };
        let model_state = read_vec("model", next("model")?)?;
        let best_model_state = read_vec("best", next("best")?)?;
        let best_is_residual = field(next("best_is_residual")?, "best_is_residual")? == "1";
        let best_val = parse_f64(&field(next("best_val")?, "best_val")?)?;
        let n_bl = parse_usize(&field(next("best_lat")?, "best_lat")?)?;
        let mut best_lat = Vec::with_capacity(n_bl);
        for _ in 0..n_bl {
            let body = field(next("bl")?, "bl")?;
            let (qi, lat) = body.split_once(' ').ok_or("bad bl line")?;
            best_lat.push((parse_usize(qi)?, parse_f64(lat)?));
        }
        let fallback_window = read_vec("window", next("window")?)?;
        let env_head = field(next("env")?, "env")?;
        let mut env_parts = env_head.split(' ');
        let hits = parse_u64(env_parts.next().ok_or("env hits")?)?;
        let misses = parse_u64(env_parts.next().ok_or("env misses")?)?;
        let n_entries = parse_usize(env_parts.next().ok_or("env count")?)?;
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let body = field(next("ce")?, "ce")?;
            let p: Vec<&str> = body.split(' ').collect();
            if p.len() != 4 {
                return Err(format!("bad ce line {body:?}"));
            }
            entries.push((
                parse_u64(p[0])?,
                parse_u64(p[1])?,
                parse_f64(p[2])?,
                parse_f64(p[3])?,
            ));
        }
        // Clock is wall-derived, never serialized: the resume path sets
        // it to the live env's current reading so restore charges zero.
        let env = EnvSnapshot {
            entries,
            hits,
            misses,
            clock_secs: 0.0,
        };
        let n_buf = parse_usize(&field(next("buffer")?, "buffer")?)?;
        let mut buffer = Vec::with_capacity(n_buf);
        for _ in 0..n_buf {
            let body = field(next("be")?, "be")?;
            let p: Vec<&str> = body.splitn(6, ' ').collect();
            if p.len() != 6 {
                return Err(format!("bad be line {body:?}"));
            }
            buffer.push(BufferEntry {
                query_key: parse_u64(p[0])?,
                fingerprint: parse_u64(p[1])?,
                source: match p[2] {
                    "sim" => LabelSource::Simulated,
                    "real" => LabelSource::Real,
                    other => return Err(format!("bad source {other:?}")),
                },
                censored: p[3] == "1",
                label_secs: parse_f64(p[4])?,
                plan: p[5].to_string(),
            });
        }
        let n_traj = parse_usize(&field(next("trajectory")?, "trajectory")?)?;
        let mut trajectory = Vec::with_capacity(n_traj);
        for _ in 0..n_traj {
            let body = field(next("ts")?, "ts")?;
            let p: Vec<&str> = body.split(' ').collect();
            if p.len() != 13 {
                return Err(format!("bad ts line {body:?}"));
            }
            trajectory.push(IterationStats {
                iteration: parse_usize(p[0])?,
                // Wall-derived, not serialized (see module docs).
                sim_hours: f64::NAN,
                train_median_secs: parse_f64(p[1])?,
                test_median_secs: parse_f64(p[2])?,
                timeouts: parse_usize(p[3])?,
                buffer_real: parse_usize(p[4])?,
                buffer_sim: parse_usize(p[5])?,
                fit_mse: parse_f64(p[6])?,
                val_median_secs: parse_f64(p[7])?,
                val_geo_mean_secs: parse_f64(p[8])?,
                faults: parse_u64(p[9])?,
                retries: parse_u64(p[10])?,
                abandoned: parse_u64(p[11])?,
                fallback: p[12] == "1",
            });
        }
        let body = field(next("resilience")?, "resilience")?;
        let p: Vec<&str> = body.split(' ').collect();
        if p.len() != 13 {
            return Err(format!("bad resilience line {body:?}"));
        }
        let resilience = ResilienceStats {
            faults_injected: parse_u64(p[0])?,
            transients: parse_u64(p[1])?,
            crashes: parse_u64(p[2])?,
            spikes: parse_u64(p[3])?,
            hangs: parse_u64(p[4])?,
            retries: parse_u64(p[5])?,
            abandoned: parse_u64(p[6])?,
            exhausted_censored: parse_u64(p[7])?,
            fallback_iterations: parse_u64(p[8])?,
            backoff_secs_charged: parse_f64(p[9])?,
            planner_errors: parse_u64(p[10])?,
            planner_degraded: parse_u64(p[11])?,
            planner_exhausted: parse_u64(p[12])?,
        };
        if next("end")? != "end" {
            return Err("missing end marker".into());
        }
        Ok(CheckpointData {
            cfg_fingerprint,
            iteration,
            rng_state,
            model_state,
            best_is_residual,
            best_model_state,
            best_val,
            best_lat,
            fallback_window,
            buffer,
            env,
            trajectory,
            resilience,
        })
    }

    /// Writes the checkpoint atomically: serialize to `<path>.tmp` in
    /// the same directory, then `rename` over `path`. A crash at any
    /// point leaves either the previous checkpoint or the new one —
    /// never a torn file.
    pub fn save_atomic(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, self.encode())?;
        fs::rename(&tmp, path)
    }

    /// Loads and parses a checkpoint file.
    pub fn load(path: &Path) -> Result<CheckpointData, String> {
        let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::decode(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointData {
        CheckpointData {
            cfg_fingerprint: 0xDEADBEEF,
            iteration: 2,
            rng_state: [1, u64::MAX, 3, 0x1234_5678_9ABC_DEF0],
            model_state: vec![1.0, -0.25, f64::MIN_POSITIVE],
            best_is_residual: true,
            best_model_state: vec![0.5],
            best_val: 0.123456789,
            best_lat: vec![(0, 0.5), (3, 1.25)],
            fallback_window: vec![0.0, 0.4],
            env: EnvSnapshot {
                entries: vec![(7, 9, 0.25, 100.0), (8, 1, 0.5, 7.0)],
                hits: 4,
                misses: 9,
                clock_secs: 0.0,
            },
            buffer: vec![BufferEntry {
                query_key: 42,
                fingerprint: 77,
                plan: "(h q0 q1)".into(),
                label_secs: 0.75,
                censored: true,
                source: LabelSource::Real,
            }],
            trajectory: vec![IterationStats {
                iteration: 0,
                // Wall-derived; encode skips it, decode yields NaN.
                sim_hours: 0.1,
                train_median_secs: f64::NAN,
                test_median_secs: 0.2,
                timeouts: 1,
                buffer_real: 10,
                buffer_sim: 20,
                fit_mse: 0.05,
                val_median_secs: 0.3,
                val_geo_mean_secs: 0.25,
                faults: 2,
                retries: 1,
                abandoned: 0,
                fallback: false,
            }],
            resilience: ResilienceStats {
                faults_injected: 5,
                transients: 2,
                crashes: 1,
                spikes: 1,
                hangs: 1,
                retries: 3,
                abandoned: 1,
                exhausted_censored: 1,
                fallback_iterations: 1,
                backoff_secs_charged: 0.7,
                planner_errors: 1,
                planner_degraded: 2,
                planner_exhausted: 2,
            },
        }
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let data = sample();
        let text = data.encode();
        let back = CheckpointData::decode(&text).unwrap();
        // PartialEq on the struct is false through NaN fields — compare
        // the re-encoding instead, which is the bit-exactness witness
        // that matters (checkpoint files must be byte-stable).
        assert_eq!(back.encode(), text);
        assert_eq!(back.cfg_fingerprint, data.cfg_fingerprint);
        assert_eq!(back.rng_state, data.rng_state);
        assert_eq!(
            back.trajectory[0].train_median_secs.to_bits(),
            data.trajectory[0].train_median_secs.to_bits(),
            "NaN round-trips exactly"
        );
        assert_eq!(back.buffer, data.buffer);
        assert_eq!(back.env, data.env);
    }

    #[test]
    fn atomic_save_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("balsa_ckpt_test_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.txt");
        let data = sample();
        data.save_atomic(&path).unwrap();
        let mut newer = sample();
        newer.iteration = 3;
        newer.save_atomic(&path).unwrap();
        assert_eq!(CheckpointData::load(&path).unwrap().iteration, 3);
        assert!(
            !path.with_extension("tmp").exists(),
            "temp must be renamed away"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoints_are_rejected() {
        assert!(CheckpointData::decode("not a checkpoint").is_err());
        let text = sample().encode();
        // Truncation is detected.
        let cut: String = text.lines().take(5).collect::<Vec<_>>().join("\n");
        assert!(CheckpointData::decode(&cut).is_err());
        // A corrupted float field is detected.
        let bad = text.replace("best_val ", "best_val zz");
        assert!(CheckpointData::decode(&bad).is_err());
    }
}
