//! The experience buffer (§4.2, §7).
//!
//! Every executed (or simulated) subplan becomes an [`Experience`]:
//! features, a latency label, a censoring flag, and its provenance.
//! Entries are deduplicated by `(query, plan fingerprint, source)` with
//! **best-label retention**, mirroring the paper's buffer semantics:
//!
//! * two completed observations of the same subplan keep the *minimum*
//!   latency (the paper relabels replayed experience with the best
//!   observed runtime, §4.2);
//! * a completed observation always supersedes a timeout-censored one;
//! * two censored observations keep the *largest* lower bound (the
//!   tighter constraint);
//! * a censored observation never overwrites a completed one.
//!
//! Simulated (`C_out`) and real (engine) labels live in different units,
//! so they are kept as separate populations and extracted separately
//! for the two training phases.

use crate::model::TrainSet;
use balsa_query::Plan;
use std::collections::HashMap;
use std::sync::Arc;

/// Where a label came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LabelSource {
    /// Simulation phase: `C_out`-derived pseudo-latency.
    Simulated,
    /// Real phase: `ExecutionEnv` latency (possibly censored).
    Real,
}

/// One labeled `(query, subplan)` observation.
#[derive(Debug, Clone)]
pub struct Experience {
    /// Key of the query this subplan belongs to
    /// (`balsa_engine::query_key`).
    pub query_key: u64,
    /// Structural hash of the subplan. The training loop supplies
    /// [`balsa_query::Plan::canonical_hash`] (the frozen encoding), not
    /// `Plan::fingerprint`: [`ExperienceBuffer::train_set`] **sorts**
    /// samples by this key, so its values — not just its equality
    /// classes — determine SGD minibatch composition, and they must
    /// stay stable across fingerprint-algorithm changes for recorded
    /// learning curves to reproduce.
    pub fingerprint: u64,
    /// The subplan itself. Features are a pure function of
    /// `(query, plan)`, so checkpoints persist this compact tree (via
    /// [`Plan::encode_compact`]) and recompute `features` at load time
    /// instead of serializing hundreds of floats per entry.
    pub plan: Arc<Plan>,
    /// Feature vector of the `(query, subplan)` state.
    pub features: Vec<f64>,
    /// Label in seconds (pseudo-seconds for simulated labels). When
    /// `censored`, a lower bound.
    pub label_secs: f64,
    /// Whether the label is a timeout-censored lower bound.
    pub censored: bool,
    /// Provenance of the label.
    pub source: LabelSource,
}

/// Deduplicating store of experiences.
#[derive(Debug, Default)]
pub struct ExperienceBuffer {
    map: HashMap<(u64, u64, LabelSource), Experience>,
}

impl ExperienceBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `exp`, merging with any existing entry for the same
    /// `(query, fingerprint, source)` under best-label retention.
    /// Returns `true` when the stored entry changed.
    pub fn record(&mut self, exp: Experience) -> bool {
        let key = (exp.query_key, exp.fingerprint, exp.source);
        match self.map.get_mut(&key) {
            None => {
                self.map.insert(key, exp);
                true
            }
            Some(old) => {
                let replace = match (old.censored, exp.censored) {
                    // Completed runs keep the best observed latency.
                    (false, false) => exp.label_secs < old.label_secs,
                    // A completed run supersedes a lower bound.
                    (true, false) => true,
                    // A lower bound never displaces a completed run.
                    (false, true) => false,
                    // Tighter (larger) lower bounds win.
                    (true, true) => exp.label_secs > old.label_secs,
                };
                if replace {
                    *old = exp;
                }
                replace
            }
        }
    }

    /// Total entries across both sources.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the buffer holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entries from one source.
    pub fn count(&self, source: LabelSource) -> usize {
        self.map.keys().filter(|(_, _, s)| *s == source).count()
    }

    /// Looks up the stored entry for a `(query, fingerprint, source)`.
    pub fn get(
        &self,
        query_key: u64,
        fingerprint: u64,
        source: LabelSource,
    ) -> Option<&Experience> {
        self.map.get(&(query_key, fingerprint, source))
    }

    /// Every entry in deterministic sorted-key order — the checkpoint
    /// serialization walk. The internal hash-map order is never
    /// observable through this (or any other) accessor, so a buffer
    /// rebuilt from this walk is indistinguishable from the original.
    pub fn sorted_entries(&self) -> Vec<&Experience> {
        let mut keys: Vec<&(u64, u64, LabelSource)> = self.map.keys().collect();
        keys.sort_unstable();
        keys.into_iter().map(|k| &self.map[k]).collect()
    }

    /// Extracts one source's population as a [`TrainSet`] with labels in
    /// log space (`ln(max(label, floor))`). Iteration order is sorted by
    /// key so training is deterministic.
    pub fn train_set(&self, source: LabelSource) -> TrainSet {
        let mut keys: Vec<&(u64, u64, LabelSource)> =
            self.map.keys().filter(|(_, _, s)| *s == source).collect();
        keys.sort_unstable();
        let mut set = TrainSet::default();
        for k in keys {
            let e = &self.map[k];
            set.xs.push(e.features.clone());
            set.ys.push(e.label_secs.max(1e-9).ln());
            set.censored.push(e.censored);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp(fp: u64, label: f64, censored: bool, source: LabelSource) -> Experience {
        Experience {
            query_key: 42,
            fingerprint: fp,
            plan: Plan::scan(0, balsa_query::ScanOp::Seq),
            features: vec![label],
            label_secs: label,
            censored,
            source,
        }
    }

    #[test]
    fn dedup_keeps_best_observed_latency() {
        let mut b = ExperienceBuffer::new();
        assert!(b.record(exp(1, 3.0, false, LabelSource::Real)));
        // A slower completed rerun does not displace the best.
        assert!(!b.record(exp(1, 5.0, false, LabelSource::Real)));
        assert_eq!(b.get(42, 1, LabelSource::Real).unwrap().label_secs, 3.0);
        // A faster rerun does.
        assert!(b.record(exp(1, 2.0, false, LabelSource::Real)));
        assert_eq!(b.get(42, 1, LabelSource::Real).unwrap().label_secs, 2.0);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn censored_labels_are_lower_bounds() {
        let mut b = ExperienceBuffer::new();
        // Two censored observations: the tighter (larger) bound wins.
        assert!(b.record(exp(7, 1.0, true, LabelSource::Real)));
        assert!(b.record(exp(7, 4.0, true, LabelSource::Real)));
        assert!(!b.record(exp(7, 2.0, true, LabelSource::Real)));
        let stored = b.get(42, 7, LabelSource::Real).unwrap();
        assert!(stored.censored);
        assert_eq!(stored.label_secs, 4.0);
        // A completed run supersedes any bound...
        assert!(b.record(exp(7, 6.0, false, LabelSource::Real)));
        let stored = b.get(42, 7, LabelSource::Real).unwrap();
        assert!(!stored.censored);
        assert_eq!(stored.label_secs, 6.0);
        // ...and is never displaced by a later bound.
        assert!(!b.record(exp(7, 9.0, true, LabelSource::Real)));
        assert!(!b.get(42, 7, LabelSource::Real).unwrap().censored);
    }

    #[test]
    fn sources_are_separate_populations() {
        let mut b = ExperienceBuffer::new();
        b.record(exp(1, 10.0, false, LabelSource::Simulated));
        b.record(exp(1, 0.5, false, LabelSource::Real));
        assert_eq!(b.len(), 2);
        assert_eq!(b.count(LabelSource::Simulated), 1);
        assert_eq!(b.count(LabelSource::Real), 1);
        let sim = b.train_set(LabelSource::Simulated);
        let real = b.train_set(LabelSource::Real);
        assert_eq!(sim.len(), 1);
        assert_eq!(real.len(), 1);
        assert!((sim.ys[0] - 10.0f64.ln()).abs() < 1e-12);
        assert!((real.ys[0] - 0.5f64.ln()).abs() < 1e-12);
    }

    /// Property test: against randomized record sequences, the buffer
    /// always stores exactly what the reference semantics dictate — the
    /// minimum completed latency when any completed observation exists,
    /// otherwise the maximum (tightest) censored lower bound — and every
    /// merge step preserves the monotonicity invariants (completed
    /// labels never increase, censored bounds never decrease, censored
    /// never displaces completed).
    #[test]
    fn randomized_merges_match_reference_semantics() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        use std::collections::HashMap;

        for seed in 0..25u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut buffer = ExperienceBuffer::new();
            // Reference: per key, all completed and censored labels seen.
            type Key = (u64, u64, LabelSource);
            let mut seen: HashMap<Key, (Vec<f64>, Vec<f64>)> = HashMap::new();
            for _ in 0..300 {
                let qk = rng.random_range(0..2u64);
                let fp = rng.random_range(0..5u64);
                let source = if rng.random_bool(0.3) {
                    LabelSource::Simulated
                } else {
                    LabelSource::Real
                };
                let censored = rng.random_bool(0.4);
                let label = (rng.random_range(1..100u32) as f64) / 10.0;
                let before = buffer
                    .get(qk, fp, source)
                    .map(|e| (e.censored, e.label_secs));
                buffer.record(Experience {
                    query_key: qk,
                    fingerprint: fp,
                    plan: Plan::scan(0, balsa_query::ScanOp::Seq),
                    features: vec![label],
                    label_secs: label,
                    censored,
                    source,
                });
                let (completed, bounds) = seen.entry((qk, fp, source)).or_default();
                if censored {
                    bounds.push(label);
                } else {
                    completed.push(label);
                }
                let after = buffer.get(qk, fp, source).expect("just recorded");
                // Monotonicity of the merge step.
                if let Some((was_censored, was_label)) = before {
                    match (was_censored, after.censored) {
                        (false, true) => panic!("censored displaced completed (seed {seed})"),
                        (false, false) => assert!(after.label_secs <= was_label),
                        (true, true) => assert!(after.label_secs >= was_label),
                        (true, false) => {} // completion always wins
                    }
                }
                // Reference semantics after every step.
                if completed.is_empty() {
                    assert!(after.censored);
                    assert_eq!(
                        after.label_secs,
                        bounds.iter().cloned().fold(f64::MIN, f64::max),
                        "tightest bound retained (seed {seed})"
                    );
                } else {
                    assert!(!after.censored, "completed must win (seed {seed})");
                    assert_eq!(
                        after.label_secs,
                        completed.iter().cloned().fold(f64::MAX, f64::min),
                        "best completed latency retained (seed {seed})"
                    );
                }
            }
            assert_eq!(buffer.len(), seen.len());
        }
    }

    #[test]
    fn train_set_is_deterministic() {
        let mut b = ExperienceBuffer::new();
        for fp in [5u64, 3, 9, 1] {
            b.record(exp(fp, fp as f64, false, LabelSource::Real));
        }
        let a = b.train_set(LabelSource::Real);
        let c = b.train_set(LabelSource::Real);
        assert_eq!(a.ys, c.ys);
        let mut sorted = a.ys.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a.ys, sorted, "sorted by fingerprint == sorted labels here");
    }
}
