//! The tree-convolution value network (§6).
//!
//! [`TreeConvValueModel`] is the paper's stronger function class over the
//! per-node plan encoding: the plan is reshaped into the binary-tree
//! tensor layout ([`balsa_query::Plan::tree_tensor`]), 2–3 tree
//! convolution layers slide **triple filters** over every
//! `(node, left child, right child)` window, a **dynamic pooling** step
//! takes the channel-wise max over all nodes (so plans of any size map
//! to a fixed-length vector), and a small MLP head reads the pooled
//! vector out to a scalar log-latency.
//!
//! Everything is pure Rust on the vendored shims: forward, manual
//! backprop (through the MLP, the max-pool routing, and the shared
//! convolution filters), and the same censored-hinge minibatch SGD the
//! linear model trains with. Weights flatten to a single parameter
//! vector ([`TreeConvValueModel::set_params`] /
//! [`crate::model::ValueModel::params`]), so checkpoints are
//! serialization-ready and exactly comparable.
//!
//! Because a convolution layer only looks *downward* (a node and its
//! children), a node's activations never change when a parent is added
//! above it. Inference inside the beam exploits this: the incremental
//! [`crate::model::ValueModel::join_state`] hook carries each subtree's
//! root activations per layer plus the pooled channel maxima, so scoring
//! a candidate join costs one window of convolutions — O(1) in the
//! subtree size — instead of a full re-encode.

use crate::model::{
    shuffle_epoch_order, FeatureEncoding, FitReport, JoinStateItem, ModelState, Optimizer,
    SgdConfig, TrainSet, ValueModel, LRELU_SLOPE,
};
use rand::rngs::SmallRng;
use rand::RngExt;
use std::sync::Arc;
use std::time::Instant;

/// Architecture of the tree-convolution network.
#[derive(Debug, Clone)]
pub struct TreeConvConfig {
    /// Output channels of each tree-convolution layer, applied in order
    /// over the node encoding.
    pub conv_channels: Vec<usize>,
    /// Hidden width of the MLP head over the pooled vector.
    pub mlp_hidden: usize,
}

impl Default for TreeConvConfig {
    fn default() -> Self {
        Self {
            conv_channels: vec![24, 16],
            mlp_hidden: 16,
        }
    }
}

/// Serializes per-node feature rows plus the child table into the flat
/// self-describing tree encoding consumed by [`TreeConvValueModel`]:
/// `[n, d, (left+1, right+1, d features) * n]`, nodes in post-order with
/// `0` marking a missing child. This is the contract between the
/// featurizer's tree encoding and the model.
pub fn encode_tree(feats: &[Vec<f64>], children: &[Option<(usize, usize)>]) -> Vec<f64> {
    assert_eq!(feats.len(), children.len(), "ragged tree encoding");
    assert!(!feats.is_empty(), "empty tree");
    let d = feats[0].len();
    let mut x = Vec::with_capacity(2 + feats.len() * (2 + d));
    x.push(feats.len() as f64);
    x.push(d as f64);
    for (f, kids) in feats.iter().zip(children) {
        assert_eq!(f.len(), d, "ragged node features");
        match kids {
            None => {
                x.push(0.0);
                x.push(0.0);
            }
            Some((l, r)) => {
                x.push((l + 1) as f64);
                x.push((r + 1) as f64);
            }
        }
        x.extend_from_slice(f);
    }
    x
}

/// A decoded tree: per-node feature rows (post-order) and child slots.
struct DecodedTree {
    feats: Vec<Vec<f64>>,
    children: Vec<Option<(usize, usize)>>,
}

/// Parses the flat encoding produced by [`encode_tree`].
fn decode_tree(x: &[f64]) -> DecodedTree {
    assert!(x.len() >= 2, "tree encoding too short");
    let n = x[0] as usize;
    let d = x[1] as usize;
    assert_eq!(x.len(), 2 + n * (2 + d), "corrupt tree encoding");
    let mut feats = Vec::with_capacity(n);
    let mut children = Vec::with_capacity(n);
    for i in 0..n {
        let base = 2 + i * (2 + d);
        let (l, r) = (x[base] as usize, x[base + 1] as usize);
        children.push(if l == 0 {
            None
        } else {
            debug_assert!(r > 0 && l <= i && r <= i, "child slots must precede");
            Some((l - 1, r - 1))
        });
        feats.push(x[base + 2..base + 2 + d].to_vec());
    }
    DecodedTree { feats, children }
}

/// Every training tree decoded into one flat arena: node features and
/// child links stored contiguously so minibatch assembly is a gather
/// rather than a pointer chase, and epochs re-slice it allocation-free.
struct TreeArena {
    /// Node features, node-major (`total_nodes × node_dim`); trees in
    /// dataset order, nodes in post-order within each tree.
    feats: Vec<f64>,
    /// Per-node children as arena-global indices + 1 (`(0, 0)` marks a
    /// leaf; both children are present otherwise).
    kids: Vec<(u32, u32)>,
    /// Tree `i` occupies arena nodes `ofs[i]..ofs[i + 1]`.
    ofs: Vec<u32>,
}

impl TreeArena {
    fn build(xs: &[Vec<f64>], node_dim: usize) -> Self {
        let mut arena = Self {
            feats: Vec::new(),
            kids: Vec::new(),
            ofs: vec![0],
        };
        for x in xs {
            assert!(x.len() >= 2, "tree encoding too short");
            let n = x[0] as usize;
            let d = x[1] as usize;
            assert_eq!(d, node_dim, "node encoding dimension mismatch");
            assert_eq!(x.len(), 2 + n * (2 + d), "corrupt tree encoding");
            let base = *arena.ofs.last().expect("seeded with 0") as usize;
            for i in 0..n {
                let at = 2 + i * (2 + d);
                let (l, r) = (x[at] as usize, x[at + 1] as usize);
                arena.kids.push(if l == 0 {
                    (0, 0)
                } else {
                    debug_assert!(r > 0 && l <= i && r <= i, "child slots must precede");
                    ((base + l) as u32, (base + r) as u32)
                });
                arena.feats.extend_from_slice(&x[at + 2..at + 2 + d]);
            }
            arena.ofs.push((base + n) as u32);
        }
        arena
    }

    /// Arena node range of tree `i`.
    fn tree(&self, i: usize) -> std::ops::Range<usize> {
        self.ofs[i] as usize..self.ofs[i + 1] as usize
    }
}

#[inline]
fn lrelu(z: f64) -> f64 {
    if z >= 0.0 {
        z
    } else {
        LRELU_SLOPE * z
    }
}

#[inline]
fn lrelu_grad(z: f64) -> f64 {
    if z >= 0.0 {
        1.0
    } else {
        LRELU_SLOPE
    }
}

/// `out += W·x` for row-major `W` of shape `out.len() × x.len()`.
#[inline]
fn matvec_acc(w: &[f64], x: &[f64], out: &mut [f64]) {
    for (o, row) in out.iter_mut().zip(w.chunks_exact(x.len())) {
        *o += row.iter().zip(x).map(|(w, x)| w * x).sum::<f64>();
    }
}

/// `dx += Wᵀ·dy` for the same `W` layout.
#[inline]
fn matvec_t_acc(w: &[f64], dy: &[f64], dx: &mut [f64]) {
    for (dyi, row) in dy.iter().zip(w.chunks_exact(dx.len())) {
        for (dx, w) in dx.iter_mut().zip(row) {
            *dx += w * dyi;
        }
    }
}

/// `gw += dy ⊗ x` (outer product) for the same `W` layout.
#[inline]
fn outer_acc(gw: &mut [f64], dy: &[f64], x: &[f64]) {
    for (dyi, row) in dy.iter().zip(gw.chunks_exact_mut(x.len())) {
        for (g, xi) in row.iter_mut().zip(x) {
            *g += dyi * xi;
        }
    }
}

/// One tree-convolution layer: a triple filter `(node, left, right)`
/// with shared weights across every window of the tree.
#[derive(Debug, Clone)]
struct ConvLayer {
    in_dim: usize,
    out_dim: usize,
    /// Node filter, row-major `out_dim × in_dim`.
    wn: Vec<f64>,
    /// Left-child filter.
    wl: Vec<f64>,
    /// Right-child filter.
    wr: Vec<f64>,
    /// Bias.
    b: Vec<f64>,
}

impl ConvLayer {
    fn new(in_dim: usize, out_dim: usize) -> Self {
        Self {
            in_dim,
            out_dim,
            wn: vec![0.0; in_dim * out_dim],
            wl: vec![0.0; in_dim * out_dim],
            wr: vec![0.0; in_dim * out_dim],
            b: vec![0.0; out_dim],
        }
    }

    /// Pre-activation of one window; `xl`/`xr` are `None` for leaves.
    fn pre(&self, x: &[f64], xl: Option<&[f64]>, xr: Option<&[f64]>) -> Vec<f64> {
        let mut z = self.b.clone();
        matvec_acc(&self.wn, x, &mut z);
        if let Some(xl) = xl {
            matvec_acc(&self.wl, xl, &mut z);
        }
        if let Some(xr) = xr {
            matvec_acc(&self.wr, xr, &mut z);
        }
        z
    }
}

/// A dense layer, row-major `out_dim × in_dim`.
#[derive(Debug, Clone)]
struct Dense {
    in_dim: usize,
    w: Vec<f64>,
    b: Vec<f64>,
}

impl Dense {
    fn new(in_dim: usize, out_dim: usize) -> Self {
        Self {
            in_dim,
            w: vec![0.0; in_dim * out_dim],
            b: vec![0.0; out_dim],
        }
    }

    fn pre(&self, x: &[f64]) -> Vec<f64> {
        let mut z = self.b.clone();
        matvec_acc(&self.w, x, &mut z);
        z
    }
}

/// Forward caches for one tree, kept for backprop.
struct Forward {
    /// `acts[l][i]`: node `i`'s activation entering conv layer `l`
    /// (`acts[0]` is the node encoding); `acts[L]` feeds the pool.
    acts: Vec<Vec<Vec<f64>>>,
    /// Pre-activations of conv layer `l` at node `i`.
    pre: Vec<Vec<Vec<f64>>>,
    /// Channel-wise max over `acts[L]`.
    pooled: Vec<f64>,
    /// Which node each pooled channel came from (gradient routing).
    argmax: Vec<usize>,
    /// MLP hidden pre-activation and activation.
    h_pre: Vec<f64>,
    h_act: Vec<f64>,
    /// Scalar output (predicted log latency).
    out: f64,
}

/// Reusable buffers for one minibatch through the batched training
/// kernels — sized on first use and recycled across minibatches and
/// epochs so the training hot loop performs no per-node allocation.
#[derive(Default)]
struct BatchScratch {
    /// Arena node of each batch slot (samples in minibatch order, nodes
    /// in post-order within a sample).
    node: Vec<u32>,
    /// Batch-local children + 1 (`(0, 0)` = leaf).
    kids: Vec<(u32, u32)>,
    /// Sample `s` owns batch slots `sample_ofs[s]..sample_ofs[s + 1]`.
    sample_ofs: Vec<u32>,
    /// Per-level activations, slot-major; `acts[0]` holds the gathered
    /// node encodings and `acts[L]` feeds the pool.
    acts: Vec<Vec<f64>>,
    /// Per-level pre-activations, slot-major.
    pre: Vec<Vec<f64>>,
    /// Pooled channel maxima, `samples × C`.
    pooled: Vec<f64>,
    /// Batch slot each pooled channel came from (gradient routing).
    argmax: Vec<u32>,
    /// MLP hidden pre-activations / activations, `samples × H`.
    h_pre: Vec<f64>,
    h_act: Vec<f64>,
    /// Scalar outputs, one per sample.
    outs: Vec<f64>,
    /// Per-sample backprop seed (`∂loss/∂out`) and hinge-activity flag,
    /// filled by the caller between forward and backward.
    d_outs: Vec<f64>,
    active: Vec<bool>,
    /// Backprop: gradient wrt the current conv level's activations and
    /// the level below (swapped per level), plus small per-node/sample
    /// temporaries.
    d_act: Vec<f64>,
    d_below: Vec<f64>,
    d_z: Vec<f64>,
    d_pooled: Vec<f64>,
    d_h_pre: Vec<f64>,
}

/// Incremental per-subtree inference state (the [`ModelState`] payload):
/// the subtree root's activation at every level plus the pooled
/// channel-maxima over the whole subtree.
struct TcState {
    /// `acts[l]`: the root node's activation entering conv layer `l`;
    /// the last entry is its final-layer activation.
    acts: Vec<Vec<f64>>,
    /// Channel-wise max of final-layer activations over the subtree.
    pooled: Vec<f64>,
}

/// Tree-convolution value model over the flat tree encoding.
#[derive(Debug, Clone)]
pub struct TreeConvValueModel {
    node_dim: usize,
    conv: Vec<ConvLayer>,
    head1: Dense,
    head2: Dense,
    fitted: bool,
}

impl TreeConvValueModel {
    /// Creates an untrained network for `node_dim`-dimensional node
    /// encodings (predicts 0 until fit).
    pub fn new(node_dim: usize, cfg: TreeConvConfig) -> Self {
        assert!(node_dim > 0, "node encoding must be non-empty");
        assert!(
            !cfg.conv_channels.is_empty(),
            "need at least one conv layer"
        );
        let mut conv = Vec::new();
        let mut in_dim = node_dim;
        for &out_dim in &cfg.conv_channels {
            conv.push(ConvLayer::new(in_dim, out_dim));
            in_dim = out_dim;
        }
        Self {
            node_dim,
            conv,
            head1: Dense::new(in_dim, cfg.mlp_hidden),
            head2: Dense::new(cfg.mlp_hidden, 1),
            fitted: false,
        }
    }

    /// The node-encoding dimension this network convolves over.
    pub fn node_dim(&self) -> usize {
        self.node_dim
    }

    /// Total number of parameters.
    pub fn num_params(&self) -> usize {
        self.conv
            .iter()
            .map(|c| 3 * c.wn.len() + c.b.len())
            .sum::<usize>()
            + self.head1.w.len()
            + self.head1.b.len()
            + self.head2.w.len()
            + self.head2.b.len()
    }

    /// Overwrites all parameters from a flat vector in the layout of
    /// [`ValueModel::params`] (conv layers in order — `wn`, `wl`, `wr`,
    /// `b` — then the two head layers). The serialization counterpart of
    /// `params`, also used by the finite-difference gradient tests.
    pub fn set_params(&mut self, v: &[f64]) {
        assert_eq!(v.len(), self.num_params(), "parameter length mismatch");
        let mut it = v.iter().copied();
        let mut take = |dst: &mut [f64]| {
            for d in dst {
                *d = it.next().expect("length checked");
            }
        };
        for c in &mut self.conv {
            take(&mut c.wn);
            take(&mut c.wl);
            take(&mut c.wr);
            take(&mut c.b);
        }
        take(&mut self.head1.w);
        take(&mut self.head1.b);
        take(&mut self.head2.w);
        take(&mut self.head2.b);
        self.fitted = true;
    }

    fn init_weights(&mut self, label_mean: f64, rng: &mut SmallRng) {
        for c in &mut self.conv {
            let std = (1.0 / (3 * c.in_dim) as f64).sqrt();
            for w in c.wn.iter_mut().chain(&mut c.wl).chain(&mut c.wr) {
                *w = rng.random_normal(0.0, std);
            }
        }
        for d in [&mut self.head1, &mut self.head2] {
            let std = (1.0 / d.in_dim as f64).sqrt();
            for w in &mut d.w {
                *w = rng.random_normal(0.0, std);
            }
        }
        // Bias the output at the label mean so first predictions land in
        // range, mirroring the linear model's init.
        self.head2.b[0] = label_mean;
        self.fitted = true;
    }

    /// Full forward pass over a decoded tree, caching everything
    /// backprop needs.
    fn forward(&self, t: &DecodedTree) -> Forward {
        let n = t.feats.len();
        assert!(
            t.feats.iter().all(|f| f.len() == self.node_dim),
            "node encoding dimension mismatch"
        );
        let levels = self.conv.len();
        let mut acts: Vec<Vec<Vec<f64>>> = Vec::with_capacity(levels + 1);
        let mut pre: Vec<Vec<Vec<f64>>> = Vec::with_capacity(levels);
        acts.push(t.feats.clone());
        for (l, layer) in self.conv.iter().enumerate() {
            let mut zs = Vec::with_capacity(n);
            let mut hs = Vec::with_capacity(n);
            for i in 0..n {
                let (xl, xr) = match t.children[i] {
                    None => (None, None),
                    Some((a, b)) => (Some(&acts[l][a][..]), Some(&acts[l][b][..])),
                };
                let z = layer.pre(&acts[l][i], xl, xr);
                hs.push(z.iter().map(|&z| lrelu(z)).collect::<Vec<f64>>());
                zs.push(z);
            }
            pre.push(zs);
            acts.push(hs);
        }
        // Dynamic pooling: channel-wise max over all nodes.
        let c = self.conv.last().expect("at least one layer").out_dim;
        let mut pooled = vec![f64::NEG_INFINITY; c];
        let mut argmax = vec![0usize; c];
        for (i, h) in acts[levels].iter().enumerate() {
            for (ch, &v) in h.iter().enumerate() {
                if v > pooled[ch] {
                    pooled[ch] = v;
                    argmax[ch] = i;
                }
            }
        }
        let h_pre = self.head1.pre(&pooled);
        let h_act: Vec<f64> = h_pre.iter().map(|&z| lrelu(z)).collect();
        let out = self.head2.pre(&h_act)[0];
        Forward {
            acts,
            pre,
            pooled,
            argmax,
            h_pre,
            h_act,
            out,
        }
    }

    /// Accumulates `d_out * ∂out/∂θ` into the flat gradient `grad`
    /// (layout of [`ValueModel::params`]) by backprop through the head,
    /// the pool routing, and the convolution stack.
    fn backward(&self, t: &DecodedTree, f: &Forward, d_out: f64, grad: &mut [f64]) {
        let n = t.feats.len();
        let levels = self.conv.len();
        // Split the flat gradient into per-layer views.
        let mut parts: Vec<&mut [f64]> = Vec::new();
        let mut rest = grad;
        for c in &self.conv {
            for len in [c.wn.len(), c.wl.len(), c.wr.len(), c.b.len()] {
                let (head, tail) = rest.split_at_mut(len);
                parts.push(head);
                rest = tail;
            }
        }
        for len in [
            self.head1.w.len(),
            self.head1.b.len(),
            self.head2.w.len(),
            self.head2.b.len(),
        ] {
            let (head, tail) = rest.split_at_mut(len);
            parts.push(head);
            rest = tail;
        }
        debug_assert!(rest.is_empty());
        let (conv_parts, head_parts) = parts.split_at_mut(4 * levels);

        // Head: out = w2 · lrelu(w1 · pooled + b1) + b2.
        let d_h_act: Vec<f64> = self.head2.w.iter().map(|w| w * d_out).collect();
        outer_acc(head_parts[2], &[d_out], &f.h_act);
        head_parts[3][0] += d_out;
        let d_h_pre: Vec<f64> = d_h_act
            .iter()
            .zip(&f.h_pre)
            .map(|(&d, &z)| d * lrelu_grad(z))
            .collect();
        outer_acc(head_parts[0], &d_h_pre, &f.pooled);
        for (g, d) in head_parts[1].iter_mut().zip(&d_h_pre) {
            *g += d;
        }
        let mut d_pooled = vec![0.0; f.pooled.len()];
        matvec_t_acc(&self.head1.w, &d_h_pre, &mut d_pooled);

        // Pool routing: each channel's gradient flows to its argmax node.
        let mut d_act: Vec<Vec<f64>> = vec![vec![0.0; f.pooled.len()]; n];
        for (ch, &d) in d_pooled.iter().enumerate() {
            d_act[f.argmax[ch]][ch] += d;
        }

        // Conv stack, top layer down. All of layer l+1's gradients are
        // in `d_act` before layer l runs, because convolutions only read
        // activations of the same level.
        for l in (0..levels).rev() {
            let layer = &self.conv[l];
            let mut d_below: Vec<Vec<f64>> = vec![vec![0.0; layer.in_dim]; n];
            for i in 0..n {
                let d_z: Vec<f64> = d_act[i]
                    .iter()
                    .zip(&f.pre[l][i])
                    .map(|(&d, &z)| d * lrelu_grad(z))
                    .collect();
                let x = &f.acts[l][i];
                outer_acc(conv_parts[4 * l], &d_z, x);
                matvec_t_acc(&layer.wn, &d_z, &mut d_below[i]);
                if let Some((a, b)) = t.children[i] {
                    outer_acc(conv_parts[4 * l + 1], &d_z, &f.acts[l][a]);
                    outer_acc(conv_parts[4 * l + 2], &d_z, &f.acts[l][b]);
                    matvec_t_acc(&layer.wl, &d_z, &mut d_below[a]);
                    matvec_t_acc(&layer.wr, &d_z, &mut d_below[b]);
                }
                for (g, d) in conv_parts[4 * l + 3].iter_mut().zip(&d_z) {
                    *g += d;
                }
            }
            d_act = d_below;
        }
    }

    /// Mean censored-hinge loss `½·r²` over `data` (censored samples
    /// contribute only while the prediction is below the bound).
    pub fn loss(&self, data: &TrainSet) -> f64 {
        assert!(!data.is_empty(), "loss of an empty set");
        let mut total = 0.0;
        for ((x, &y), &c) in data.xs.iter().zip(&data.ys).zip(&data.censored) {
            let r = self.forward(&decode_tree(x)).out - y;
            if !(c && r >= 0.0) {
                total += 0.5 * r * r;
            }
        }
        total / data.len() as f64
    }

    /// Analytic gradient of [`TreeConvValueModel::loss`] with respect to
    /// the flat parameter vector — the reference the finite-difference
    /// tests check against (no L2 term).
    pub fn loss_grad(&self, data: &TrainSet) -> Vec<f64> {
        let mut grad = vec![0.0; self.num_params()];
        let inv = 1.0 / data.len() as f64;
        for ((x, &y), &c) in data.xs.iter().zip(&data.ys).zip(&data.censored) {
            let t = decode_tree(x);
            let f = self.forward(&t);
            let r = f.out - y;
            if !(c && r >= 0.0) {
                self.backward(&t, &f, r * inv, &mut grad);
            }
        }
        grad
    }

    /// The weight-decay mask: 1 for weights, 0 for biases, in the flat
    /// parameter layout (L2 never penalizes biases, as in the linear
    /// model).
    fn l2_mask(&self) -> Vec<f64> {
        let mut mask = Vec::with_capacity(self.num_params());
        for c in &self.conv {
            mask.extend(vec![1.0; 3 * c.wn.len()]);
            mask.extend(vec![0.0; c.b.len()]);
        }
        mask.extend(vec![1.0; self.head1.w.len()]);
        mask.extend(vec![0.0; self.head1.b.len()]);
        mask.extend(vec![1.0; self.head2.w.len()]);
        mask.extend(vec![0.0; self.head2.b.len()]);
        mask
    }

    /// Batched training forward over one minibatch of trees: the same
    /// filters × tile orientation as the inference-side
    /// [`ValueModel::join_state_batch`], generalized from one window per
    /// candidate to every node of every sample. Within a tile of node
    /// windows each filter row sweeps the gathered inputs while the
    /// weights stay cached — a tiled filters × batch matrix product.
    /// Per-window arithmetic (`b + wn·x + wl·xl + wr·xr`, dots
    /// accumulated left to right), the strict-`>` pool over nodes in
    /// post-order, and the MLP head all replay
    /// [`TreeConvValueModel::forward`] exactly, so batched outputs are
    /// bit-identical to the per-sample path at any batch geometry.
    // Filters × tile wants plain index loops over parallel slice views;
    // see `join_state_batch` for the layout rationale.
    #[allow(clippy::needless_range_loop)]
    fn batch_forward(&self, arena: &TreeArena, chunk: &[usize], s: &mut BatchScratch) {
        /// Node windows per tile: 3 input slices × ≤ 34 channels × 8 B
        /// × 32 ≈ 26 KB — sized to L1, matching `join_state_batch`.
        const TILE: usize = 32;
        // Assemble the batch: gather arena nodes, rebase child links.
        s.node.clear();
        s.kids.clear();
        s.sample_ofs.clear();
        s.sample_ofs.push(0);
        for &ti in chunk {
            let range = arena.tree(ti);
            let (tree_base, batch_base) = (range.start, s.node.len());
            for g in range {
                s.node.push(g as u32);
                let (l, r) = arena.kids[g];
                s.kids.push(if l == 0 {
                    (0, 0)
                } else {
                    (
                        (l as usize - tree_base + batch_base) as u32,
                        (r as usize - tree_base + batch_base) as u32,
                    )
                });
            }
            s.sample_ofs.push(s.node.len() as u32);
        }
        let nodes = s.node.len();
        let nsamples = chunk.len();
        let levels = self.conv.len();
        s.acts.resize_with(levels + 1, Vec::new);
        s.pre.resize_with(levels, Vec::new);

        // Level 0: the gathered node encodings.
        let d0 = self.node_dim;
        s.acts[0].clear();
        s.acts[0].reserve(nodes * d0);
        for &g in &s.node {
            let at = g as usize * d0;
            s.acts[0].extend_from_slice(&arena.feats[at..at + d0]);
        }

        // Convolution stack. A layer only reads same-level activations,
        // which are complete before the next level runs, so tiles can
        // sweep nodes in any grouping without ordering hazards.
        for (li, layer) in self.conv.iter().enumerate() {
            let (in_dim, out_dim) = (layer.in_dim, layer.out_dim);
            let (lower, upper) = s.acts.split_at_mut(li + 1);
            let x_all = lower[li].as_slice();
            let z_all = &mut s.pre[li];
            z_all.clear();
            z_all.resize(nodes * out_dim, 0.0);
            let mut lo = 0;
            while lo < nodes {
                let hi = (lo + TILE).min(nodes);
                for o in 0..out_dim {
                    let wn_row = &layer.wn[o * in_dim..(o + 1) * in_dim];
                    let wl_row = &layer.wl[o * in_dim..(o + 1) * in_dim];
                    let wr_row = &layer.wr[o * in_dim..(o + 1) * in_dim];
                    let b = layer.b[o];
                    for p in lo..hi {
                        let x = &x_all[p * in_dim..(p + 1) * in_dim];
                        let mut z = b;
                        z += wn_row.iter().zip(x).map(|(w, x)| w * x).sum::<f64>();
                        let (lk, rk) = s.kids[p];
                        if lk != 0 {
                            let (a, c) = (lk as usize - 1, rk as usize - 1);
                            let xl = &x_all[a * in_dim..(a + 1) * in_dim];
                            let xr = &x_all[c * in_dim..(c + 1) * in_dim];
                            z += wl_row.iter().zip(xl).map(|(w, x)| w * x).sum::<f64>();
                            z += wr_row.iter().zip(xr).map(|(w, x)| w * x).sum::<f64>();
                        }
                        z_all[p * out_dim + o] = z;
                    }
                }
                lo = hi;
            }
            let a_out = &mut upper[0];
            a_out.clear();
            a_out.extend(z_all.iter().map(|&z| lrelu(z)));
        }

        // Dynamic pooling per sample: strict `>` over nodes in
        // post-order, exactly as `forward`.
        let c_dim = self.conv.last().expect("at least one layer").out_dim;
        let top = s.acts[levels].as_slice();
        s.pooled.clear();
        s.pooled.resize(nsamples * c_dim, f64::NEG_INFINITY);
        s.argmax.clear();
        s.argmax.resize(nsamples * c_dim, 0);
        for si in 0..nsamples {
            let pooled = &mut s.pooled[si * c_dim..(si + 1) * c_dim];
            let argmax = &mut s.argmax[si * c_dim..(si + 1) * c_dim];
            for p in s.sample_ofs[si] as usize..s.sample_ofs[si + 1] as usize {
                let h = &top[p * c_dim..(p + 1) * c_dim];
                for (ch, &v) in h.iter().enumerate() {
                    if v > pooled[ch] {
                        pooled[ch] = v;
                        argmax[ch] = p as u32;
                    }
                }
            }
        }

        // MLP head per sample.
        let hd = self.head1.b.len();
        s.h_pre.clear();
        s.h_pre.resize(nsamples * hd, 0.0);
        s.h_act.clear();
        s.h_act.resize(nsamples * hd, 0.0);
        s.outs.clear();
        s.outs.resize(nsamples, 0.0);
        for si in 0..nsamples {
            let pooled = &s.pooled[si * c_dim..(si + 1) * c_dim];
            for o in 0..hd {
                let row = &self.head1.w[o * c_dim..(o + 1) * c_dim];
                let z = self.head1.b[o] + row.iter().zip(pooled).map(|(w, x)| w * x).sum::<f64>();
                s.h_pre[si * hd + o] = z;
                s.h_act[si * hd + o] = lrelu(z);
            }
            let h_act = &s.h_act[si * hd..(si + 1) * hd];
            s.outs[si] = self.head2.b[0]
                + self
                    .head2
                    .w
                    .iter()
                    .zip(h_act)
                    .map(|(w, x)| w * x)
                    .sum::<f64>();
        }
    }

    /// Batched backprop over the minibatch's **active** samples,
    /// accumulating `Σ_s d_out_s · ∂out_s/∂θ` into the flat `grad`
    /// (layout of [`ValueModel::params`]). Samples accumulate in
    /// minibatch order and the per-node operation sequence replays
    /// [`TreeConvValueModel::backward`] exactly, so a one-sample batch
    /// is bit-identical to the per-sample reference and any fixed batch
    /// geometry sums gradients in a deterministic order. Inactive
    /// samples (hinge-gated) are skipped entirely, matching the
    /// per-sample path's `continue`.
    fn batch_backward(&self, s: &mut BatchScratch, grad: &mut [f64]) {
        let levels = self.conv.len();
        // Split the flat gradient exactly as `backward` does.
        let mut parts: Vec<&mut [f64]> = Vec::new();
        let mut rest = grad;
        for c in &self.conv {
            for len in [c.wn.len(), c.wl.len(), c.wr.len(), c.b.len()] {
                let (head, tail) = rest.split_at_mut(len);
                parts.push(head);
                rest = tail;
            }
        }
        for len in [
            self.head1.w.len(),
            self.head1.b.len(),
            self.head2.w.len(),
            self.head2.b.len(),
        ] {
            let (head, tail) = rest.split_at_mut(len);
            parts.push(head);
            rest = tail;
        }
        debug_assert!(rest.is_empty());
        let (conv_parts, head_parts) = parts.split_at_mut(4 * levels);

        let nsamples = s.sample_ofs.len() - 1;
        let nodes = s.node.len();
        let c_dim = self.conv.last().expect("at least one layer").out_dim;
        let hd = self.head1.b.len();

        // Head phase per active sample, then pool routing into the top
        // conv level's activation gradients.
        s.d_act.clear();
        s.d_act.resize(nodes * c_dim, 0.0);
        for si in 0..nsamples {
            if !s.active[si] {
                continue;
            }
            let d_out = s.d_outs[si];
            let h_act = &s.h_act[si * hd..(si + 1) * hd];
            let h_pre = &s.h_pre[si * hd..(si + 1) * hd];
            let pooled = &s.pooled[si * c_dim..(si + 1) * c_dim];
            // Same op order as `backward`: head2 grads, then head1
            // grads, then d_pooled, then argmax routing.
            s.d_h_pre.clear();
            s.d_h_pre.extend(
                self.head2
                    .w
                    .iter()
                    .zip(h_pre)
                    .map(|(w, &z)| w * d_out * lrelu_grad(z)),
            );
            outer_acc(head_parts[2], &[d_out], h_act);
            head_parts[3][0] += d_out;
            outer_acc(head_parts[0], &s.d_h_pre, pooled);
            for (g, d) in head_parts[1].iter_mut().zip(&s.d_h_pre) {
                *g += d;
            }
            s.d_pooled.clear();
            s.d_pooled.resize(c_dim, 0.0);
            matvec_t_acc(&self.head1.w, &s.d_h_pre, &mut s.d_pooled);
            for (ch, &d) in s.d_pooled.iter().enumerate() {
                let p = s.argmax[si * c_dim + ch] as usize;
                s.d_act[p * c_dim + ch] += d;
            }
        }

        // Conv stack, top layer down; within a level, samples in
        // minibatch order and nodes in post-order, per-node op sequence
        // identical to `backward`.
        for l in (0..levels).rev() {
            let layer = &self.conv[l];
            let (in_dim, out_dim) = (layer.in_dim, layer.out_dim);
            s.d_below.clear();
            s.d_below.resize(nodes * in_dim, 0.0);
            let x_all = s.acts[l].as_slice();
            let z_all = s.pre[l].as_slice();
            for si in 0..nsamples {
                if !s.active[si] {
                    continue;
                }
                for p in s.sample_ofs[si] as usize..s.sample_ofs[si + 1] as usize {
                    s.d_z.clear();
                    s.d_z.extend(
                        s.d_act[p * out_dim..(p + 1) * out_dim]
                            .iter()
                            .zip(&z_all[p * out_dim..(p + 1) * out_dim])
                            .map(|(&d, &z)| d * lrelu_grad(z)),
                    );
                    let x = &x_all[p * in_dim..(p + 1) * in_dim];
                    outer_acc(conv_parts[4 * l], &s.d_z, x);
                    matvec_t_acc(
                        &layer.wn,
                        &s.d_z,
                        &mut s.d_below[p * in_dim..(p + 1) * in_dim],
                    );
                    let (lk, rk) = s.kids[p];
                    if lk != 0 {
                        let (a, c) = (lk as usize - 1, rk as usize - 1);
                        outer_acc(
                            conv_parts[4 * l + 1],
                            &s.d_z,
                            &x_all[a * in_dim..(a + 1) * in_dim],
                        );
                        outer_acc(
                            conv_parts[4 * l + 2],
                            &s.d_z,
                            &x_all[c * in_dim..(c + 1) * in_dim],
                        );
                        matvec_t_acc(
                            &layer.wl,
                            &s.d_z,
                            &mut s.d_below[a * in_dim..(a + 1) * in_dim],
                        );
                        matvec_t_acc(
                            &layer.wr,
                            &s.d_z,
                            &mut s.d_below[c * in_dim..(c + 1) * in_dim],
                        );
                    }
                    for (g, d) in conv_parts[4 * l + 3].iter_mut().zip(&s.d_z) {
                        *g += d;
                    }
                }
            }
            std::mem::swap(&mut s.d_act, &mut s.d_below);
        }
    }

    /// Analytic gradient of [`TreeConvValueModel::loss`] computed
    /// through the batched kernels at minibatch size `batch` — the
    /// finite-difference tests check this path at several batch
    /// geometries against the same numeric reference as
    /// [`TreeConvValueModel::loss_grad`] (no L2 term).
    pub fn loss_grad_batched(&self, data: &TrainSet, batch: usize) -> Vec<f64> {
        assert!(!data.is_empty(), "gradient of an empty set");
        let arena = TreeArena::build(&data.xs, self.node_dim);
        let mut grad = vec![0.0; self.num_params()];
        let mut scratch = BatchScratch::default();
        let inv = 1.0 / data.len() as f64;
        let idxs: Vec<usize> = (0..data.len()).collect();
        for chunk in idxs.chunks(batch.max(1)) {
            self.batch_forward(&arena, chunk, &mut scratch);
            scratch.d_outs.clear();
            scratch.active.clear();
            for (bs, &i) in chunk.iter().enumerate() {
                let r = scratch.outs[bs] - data.ys[i];
                scratch.active.push(!(data.censored[i] && r >= 0.0));
                scratch.d_outs.push(r * inv);
            }
            self.batch_backward(&mut scratch, &mut grad);
        }
        grad
    }
}

impl ValueModel for TreeConvValueModel {
    fn name(&self) -> String {
        "tree_conv".into()
    }

    fn encoding(&self) -> FeatureEncoding {
        FeatureEncoding::Tree
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.forward(&decode_tree(x)).out
    }

    /// Minibatched censored-hinge SGD: the whole minibatch runs through
    /// [`TreeConvValueModel::batch_forward`] /
    /// [`TreeConvValueModel::batch_backward`] as filters × batch matrix
    /// products instead of one tree at a time. The batched kernels
    /// replay the per-sample arithmetic exactly, so at any fixed batch
    /// geometry checkpoints are bit-identical across runs, and a batch
    /// size of 1 reproduces [`ValueModel::fit_per_sample`] bit for bit.
    fn fit(&mut self, data: TrainSet, cfg: &SgdConfig, rng: &mut SmallRng) -> FitReport {
        assert_eq!(data.xs.len(), data.ys.len());
        assert_eq!(data.censored.len(), data.ys.len());
        if data.is_empty() {
            return FitReport::default();
        }
        let n = data.len();
        if !self.fitted {
            let mean = data.ys.iter().sum::<f64>() / n as f64;
            self.init_weights(mean, rng);
        }
        // Decode every tree once into the flat arena; epochs re-slice
        // it with zero per-batch allocation.
        let arena = TreeArena::build(&data.xs, self.node_dim);

        let mask = self.l2_mask();
        let mut params = self.params();
        let mut grad = vec![0.0; params.len()];
        let mut opt = Optimizer::new(cfg, params.len());
        let mut order: Vec<usize> = (0..n).collect();
        let mut scratch = BatchScratch::default();
        let mut steps = 0u64;
        let (mut forward_secs, mut backward_secs) = (0.0, 0.0);
        for _epoch in 0..cfg.epochs {
            shuffle_epoch_order(&mut order, rng);
            for chunk in order.chunks(cfg.batch.max(1)) {
                let t0 = Instant::now();
                self.batch_forward(&arena, chunk, &mut scratch);
                let t1 = Instant::now();
                forward_secs += (t1 - t0).as_secs_f64();
                let mut active = 0usize;
                scratch.d_outs.clear();
                scratch.active.clear();
                for (bs, &i) in chunk.iter().enumerate() {
                    let r = scratch.outs[bs] - data.ys[i];
                    let live = !(data.censored[i] && r >= 0.0);
                    scratch.d_outs.push(r);
                    scratch.active.push(live);
                    active += usize::from(live);
                }
                if active > 0 {
                    grad.iter_mut().for_each(|g| *g = 0.0);
                    self.batch_backward(&mut scratch, &mut grad);
                    let inv = 1.0 / active as f64;
                    grad.iter_mut().for_each(|g| *g *= inv);
                    opt.step(cfg, &mut params, &grad, &mask);
                    self.set_params(&params);
                }
                backward_secs += t1.elapsed().as_secs_f64();
                steps += 1;
            }
        }

        // Final training error through the batched forward, samples in
        // dataset order (the same accumulation order as per-sample).
        let idxs: Vec<usize> = (0..n).collect();
        let mut total = 0.0;
        for chunk in idxs.chunks(cfg.batch.max(1)) {
            self.batch_forward(&arena, chunk, &mut scratch);
            for (bs, &i) in chunk.iter().enumerate() {
                let r = scratch.outs[bs] - data.ys[i];
                if !(data.censored[i] && r >= 0.0) {
                    total += r * r;
                }
            }
        }
        FitReport {
            steps,
            mse: total / n as f64,
            forward_secs,
            backward_secs,
        }
    }

    /// The pre-batching reference: one tree at a time through
    /// [`TreeConvValueModel::forward`] / `backward`, with the same
    /// sampler stream ([`shuffle_epoch_order`]) and the same
    /// [`Optimizer`] arithmetic as the batched [`ValueModel::fit`].
    /// Kept as the bit-identity reference (a batch of one reproduces it
    /// exactly) and as the benchmark gate's baseline.
    fn fit_per_sample(&mut self, data: TrainSet, cfg: &SgdConfig, rng: &mut SmallRng) -> FitReport {
        assert_eq!(data.xs.len(), data.ys.len());
        assert_eq!(data.censored.len(), data.ys.len());
        if data.is_empty() {
            return FitReport::default();
        }
        let n = data.len();
        if !self.fitted {
            let mean = data.ys.iter().sum::<f64>() / n as f64;
            self.init_weights(mean, rng);
        }
        // Decode every tree once; epochs reuse the decoded forms.
        let trees: Vec<DecodedTree> = data
            .xs
            .iter()
            .map(|x| {
                let t = decode_tree(x);
                assert_eq!(
                    t.feats.first().map_or(0, |f| f.len()),
                    self.node_dim,
                    "node encoding dimension mismatch"
                );
                t
            })
            .collect();

        let mask = self.l2_mask();
        let mut params = self.params();
        let mut grad = vec![0.0; params.len()];
        let mut opt = Optimizer::new(cfg, params.len());
        let mut order: Vec<usize> = (0..n).collect();
        let mut steps = 0u64;
        let (mut forward_secs, mut backward_secs) = (0.0, 0.0);
        for _epoch in 0..cfg.epochs {
            shuffle_epoch_order(&mut order, rng);
            for chunk in order.chunks(cfg.batch.max(1)) {
                grad.iter_mut().for_each(|g| *g = 0.0);
                let mut active = 0usize;
                for &i in chunk {
                    let t0 = Instant::now();
                    let f = self.forward(&trees[i]);
                    let t1 = Instant::now();
                    forward_secs += (t1 - t0).as_secs_f64();
                    let r = f.out - data.ys[i];
                    if data.censored[i] && r >= 0.0 {
                        continue;
                    }
                    active += 1;
                    self.backward(&trees[i], &f, r, &mut grad);
                    backward_secs += t1.elapsed().as_secs_f64();
                }
                if active > 0 {
                    let inv = 1.0 / active as f64;
                    grad.iter_mut().for_each(|g| *g *= inv);
                    opt.step(cfg, &mut params, &grad, &mask);
                    self.set_params(&params);
                }
                steps += 1;
            }
        }

        let mse = trees
            .iter()
            .zip(data.ys.iter().zip(&data.censored))
            .map(|(t, (&y, &c))| {
                let r = self.forward(t).out - y;
                if c && r >= 0.0 {
                    0.0
                } else {
                    r * r
                }
            })
            .sum::<f64>()
            / n as f64;
        FitReport {
            steps,
            mse,
            forward_secs,
            backward_secs,
        }
    }

    fn params(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.num_params());
        for c in &self.conv {
            v.extend_from_slice(&c.wn);
            v.extend_from_slice(&c.wl);
            v.extend_from_slice(&c.wr);
            v.extend_from_slice(&c.b);
        }
        v.extend_from_slice(&self.head1.w);
        v.extend_from_slice(&self.head1.b);
        v.extend_from_slice(&self.head2.w);
        v.extend_from_slice(&self.head2.b);
        v
    }

    fn state_vec(&self) -> Vec<f64> {
        // The flat weight vector IS the complete state here (no frozen
        // standardization, no optimizer moments — the optimizer is
        // created fresh per fit call); only the fitted flag rides
        // along.
        let mut v = Vec::with_capacity(self.num_params() + 1);
        v.push(self.fitted as u8 as f64);
        v.extend(self.params());
        v
    }

    fn load_state(&mut self, state: &[f64]) -> Result<(), String> {
        let (&flag, weights) = state.split_first().ok_or("empty tree-conv state")?;
        if weights.len() != self.num_params() {
            return Err(format!(
                "tree-conv state length {} != {}",
                weights.len(),
                self.num_params()
            ));
        }
        if flag != 0.0 {
            self.set_params(weights);
        } else {
            // An unfitted net is exactly a fresh construction (zero
            // weights, init deferred to the first fit) — nothing to
            // restore.
            self.fitted = false;
        }
        Ok(())
    }

    fn clone_box(&self) -> Box<dyn ValueModel> {
        Box::new(self.clone())
    }

    fn leaf_state(&self, node_x: &[f64]) -> Option<ModelState> {
        assert_eq!(node_x.len(), self.node_dim, "node encoding mismatch");
        let mut acts = Vec::with_capacity(self.conv.len() + 1);
        acts.push(node_x.to_vec());
        for layer in &self.conv {
            let z = layer.pre(acts.last().expect("non-empty"), None, None);
            acts.push(z.into_iter().map(lrelu).collect());
        }
        let pooled = acts.last().expect("non-empty").clone();
        Some(Arc::new(TcState { acts, pooled }))
    }

    fn join_state(
        &self,
        node_x: &[f64],
        left: &ModelState,
        right: &ModelState,
    ) -> Option<ModelState> {
        let l = left.downcast_ref::<TcState>()?;
        let r = right.downcast_ref::<TcState>()?;
        let mut acts = Vec::with_capacity(self.conv.len() + 1);
        acts.push(node_x.to_vec());
        for (i, layer) in self.conv.iter().enumerate() {
            let z = layer.pre(&acts[i], Some(&l.acts[i]), Some(&r.acts[i]));
            acts.push(z.into_iter().map(lrelu).collect());
        }
        let top = acts.last().expect("non-empty");
        let pooled: Vec<f64> = top
            .iter()
            .zip(l.pooled.iter().zip(&r.pooled))
            .map(|(&h, (&a, &b))| h.max(a.max(b)))
            .collect();
        Some(Arc::new(TcState { acts, pooled }))
    }

    fn state_value(&self, state: &ModelState) -> Option<f64> {
        let s = state.downcast_ref::<TcState>()?;
        let h: Vec<f64> = self.head1.pre(&s.pooled).into_iter().map(lrelu).collect();
        Some(self.head2.pre(&h)[0])
    }

    /// The batched beam forward: instead of N independent `join_state`
    /// walks, each convolution **filter row streams across a tile of
    /// candidates** (a tiled filters × batch matrix product over the
    /// stacked per-candidate window inputs): within a tile the three
    /// input slices stay resident in L1 while every filter row sweeps
    /// them, and the weight matrix is small enough to stay cached
    /// across tiles — the classical GEMM blocking, sized for this
    /// network's tiny filter banks against beam-level-sized batches.
    /// Per-candidate arithmetic — `b + wn·x + wl·xl + wr·xr`, dots
    /// accumulated left to right — is exactly [`ConvLayer::pre`]'s, so
    /// the composed states are bit-identical to the per-candidate path.
    // The filters × tile orientation wants plain index loops over
    // several parallel slice arrays; iterator chains over four zipped
    // row views would obscure the GEMM blocking.
    #[allow(clippy::needless_range_loop)]
    fn join_state_batch(&self, items: &[JoinStateItem<'_>]) -> Option<Vec<ModelState>> {
        /// Candidates per tile: 3 input slices × ≤ 34 channels × 8 B
        /// × 32 ≈ 26 KB — sized to L1.
        const TILE: usize = 32;
        let n = items.len();
        let ls: Option<Vec<&TcState>> = items
            .iter()
            .map(|it| it.left.downcast_ref::<TcState>())
            .collect();
        let rs: Option<Vec<&TcState>> = items
            .iter()
            .map(|it| it.right.downcast_ref::<TcState>())
            .collect();
        let (ls, rs) = (ls?, rs?);
        let levels = self.conv.len();
        let mut acts: Vec<Vec<Vec<f64>>> = items
            .iter()
            .map(|it| {
                assert_eq!(it.node_x.len(), self.node_dim, "node encoding mismatch");
                let mut v = Vec::with_capacity(levels + 1);
                v.push(it.node_x.to_vec());
                v
            })
            .collect();
        for (li, layer) in self.conv.iter().enumerate() {
            let (in_dim, out_dim) = (layer.in_dim, layer.out_dim);
            let mut zs: Vec<Vec<f64>> = (0..n).map(|_| vec![0.0; out_dim]).collect();
            let mut lo = 0;
            while lo < n {
                let hi = (lo + TILE).min(n);
                // One indirection per candidate per tile, not per
                // (filter, candidate) pair.
                let xn: Vec<&[f64]> = (lo..hi).map(|c| acts[c][li].as_slice()).collect();
                let xl: Vec<&[f64]> = (lo..hi).map(|c| ls[c].acts[li].as_slice()).collect();
                let xr: Vec<&[f64]> = (lo..hi).map(|c| rs[c].acts[li].as_slice()).collect();
                for o in 0..out_dim {
                    let wn_row = &layer.wn[o * in_dim..(o + 1) * in_dim];
                    let wl_row = &layer.wl[o * in_dim..(o + 1) * in_dim];
                    let wr_row = &layer.wr[o * in_dim..(o + 1) * in_dim];
                    let b = layer.b[o];
                    for cc in 0..hi - lo {
                        let mut z = b;
                        z += wn_row.iter().zip(xn[cc]).map(|(w, x)| w * x).sum::<f64>();
                        z += wl_row.iter().zip(xl[cc]).map(|(w, x)| w * x).sum::<f64>();
                        z += wr_row.iter().zip(xr[cc]).map(|(w, x)| w * x).sum::<f64>();
                        zs[lo + cc][o] = z;
                    }
                }
                lo = hi;
            }
            for (a, mut z) in acts.iter_mut().zip(zs) {
                z.iter_mut().for_each(|z| *z = lrelu(*z));
                a.push(z);
            }
        }
        Some(
            acts.into_iter()
                .enumerate()
                .map(|(c, acts)| {
                    let top = acts.last().expect("non-empty");
                    let pooled: Vec<f64> = top
                        .iter()
                        .zip(ls[c].pooled.iter().zip(&rs[c].pooled))
                        .map(|(&h, (&a, &b))| h.max(a.max(b)))
                        .collect();
                    Arc::new(TcState { acts, pooled }) as ModelState
                })
                .collect(),
        )
    }

    /// Batched MLP head over the pooled vectors, filters × batch like
    /// the convolution stack; bit-identical to per-state `state_value`.
    #[allow(clippy::needless_range_loop)]
    fn state_value_batch(&self, states: &[ModelState]) -> Option<Vec<f64>> {
        let ss: Option<Vec<&TcState>> =
            states.iter().map(|s| s.downcast_ref::<TcState>()).collect();
        let ss = ss?;
        const TILE: usize = 64;
        let n = ss.len();
        let hd = self.head1.b.len();
        let in_dim = self.head1.in_dim;
        let mut hs: Vec<Vec<f64>> = (0..n).map(|_| vec![0.0; hd]).collect();
        let mut lo = 0;
        while lo < n {
            let hi = (lo + TILE).min(n);
            let xs: Vec<&[f64]> = (lo..hi).map(|c| ss[c].pooled.as_slice()).collect();
            for o in 0..hd {
                let row = &self.head1.w[o * in_dim..(o + 1) * in_dim];
                let b = self.head1.b[o];
                for cc in 0..hi - lo {
                    hs[lo + cc][o] =
                        lrelu(b + row.iter().zip(xs[cc]).map(|(w, x)| w * x).sum::<f64>());
                }
            }
            lo = hi;
        }
        Some(
            hs.iter()
                .map(|h| {
                    self.head2.b[0] + self.head2.w.iter().zip(h).map(|(w, x)| w * x).sum::<f64>()
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Random per-node features plus a random valid topology (post-order
    /// with children preceding parents), encoded in the flat layout.
    fn random_tree(n_leaves: usize, dim: usize, rng: &mut SmallRng) -> Vec<f64> {
        assert!(n_leaves >= 1);
        let mut feats: Vec<Vec<f64>> = Vec::new();
        let mut children: Vec<Option<(usize, usize)>> = Vec::new();
        let mut roots: Vec<usize> = Vec::new();
        let push = |feats: &mut Vec<Vec<f64>>,
                    children: &mut Vec<Option<(usize, usize)>>,
                    kids,
                    rng: &mut SmallRng| {
            feats.push((0..dim).map(|_| rng.random_normal(0.0, 1.0)).collect());
            children.push(kids);
            feats.len() - 1
        };
        for _ in 0..n_leaves {
            let i = push(&mut feats, &mut children, None, rng);
            roots.push(i);
        }
        while roots.len() > 1 {
            let a = rng.random_range(0..roots.len());
            let l = roots.swap_remove(a);
            let b = rng.random_range(0..roots.len());
            let r = roots.swap_remove(b);
            let i = push(&mut feats, &mut children, Some((l, r)), rng);
            roots.push(i);
        }
        encode_tree(&feats, &children)
    }

    fn small_model(rng: &mut SmallRng) -> TreeConvValueModel {
        let mut m = TreeConvValueModel::new(
            5,
            TreeConvConfig {
                conv_channels: vec![4, 3],
                mlp_hidden: 3,
            },
        );
        m.init_weights(0.5, rng);
        m
    }

    fn fd_set(rng: &mut SmallRng) -> TrainSet {
        let mut data = TrainSet::default();
        for (leaves, y, censored) in [
            (1, 2.0, false),
            (3, -1.0, false),
            (5, 4.0, true),  // far above init predictions: hinge active
            (2, -9.0, true), // far below: hinge inactive, zero gradient
            (4, 0.5, false),
        ] {
            data.xs.push(random_tree(leaves, 5, rng));
            data.ys.push(y);
            data.censored.push(censored);
        }
        data
    }

    /// The satellite acceptance test: analytic gradients of the full
    /// network (conv layers, pooling routing, MLP head, censored hinge)
    /// match central finite differences on random small plans.
    #[test]
    fn finite_difference_gradients_match() {
        let mut rng = SmallRng::seed_from_u64(0xF00D);
        let model = small_model(&mut rng);
        let data = fd_set(&mut rng);
        let analytic = model.loss_grad(&data);
        let p0 = model.params();
        assert_eq!(analytic.len(), p0.len());
        let h = 1e-5;
        let mut worst = 0.0f64;
        for j in 0..p0.len() {
            let mut m = model.clone();
            let mut p = p0.clone();
            p[j] += h;
            m.set_params(&p);
            let up = m.loss(&data);
            p[j] = p0[j] - h;
            m.set_params(&p);
            let down = m.loss(&data);
            let numeric = (up - down) / (2.0 * h);
            let err = (numeric - analytic[j]).abs();
            let tol = 1e-6 + 1e-4 * numeric.abs().max(analytic[j].abs());
            assert!(
                err <= tol,
                "param {j}: numeric {numeric} vs analytic {} (err {err})",
                analytic[j]
            );
            worst = worst.max(err);
        }
        assert!(worst.is_finite());
    }

    /// A larger mixed set for exercising real minibatch geometries
    /// (several chunks at batch 7, one chunk at batch 32).
    fn fd_set_large(rng: &mut SmallRng) -> TrainSet {
        let mut data = TrainSet::default();
        for i in 0..17 {
            data.xs.push(random_tree(1 + i % 6, 5, rng));
            data.ys.push((i as f64) - 8.0 + 0.25 * (i % 3) as f64);
            data.censored.push(i % 4 == 0);
        }
        data
    }

    /// The batched backprop path (conv tiles, pool routing, hinge
    /// gating) matches central finite differences at several batch
    /// geometries — including partial final chunks (17 samples at
    /// batch 7) and the whole-set batch.
    #[test]
    fn batched_gradients_match_finite_differences() {
        let mut rng = SmallRng::seed_from_u64(0xBA7C4);
        let model = small_model(&mut rng);
        let data = fd_set_large(&mut rng);
        let p0 = model.params();
        let h = 1e-5;
        let numeric: Vec<f64> = (0..p0.len())
            .map(|j| {
                let mut m = model.clone();
                let mut p = p0.clone();
                p[j] += h;
                m.set_params(&p);
                let up = m.loss(&data);
                p[j] = p0[j] - h;
                m.set_params(&p);
                let down = m.loss(&data);
                (up - down) / (2.0 * h)
            })
            .collect();
        for batch in [1usize, 7, 32] {
            let analytic = model.loss_grad_batched(&data, batch);
            assert_eq!(analytic.len(), p0.len());
            for (j, (&num, &ana)) in numeric.iter().zip(&analytic).enumerate() {
                let err = (num - ana).abs();
                let tol = 1e-6 + 1e-4 * num.abs().max(ana.abs());
                assert!(
                    err <= tol,
                    "batch {batch}, param {j}: numeric {num} vs analytic {ana} (err {err})"
                );
            }
        }
    }

    /// At batch size 1 the batched kernels replay the per-sample op
    /// sequence exactly, so the gradients are bit-identical — not just
    /// close — to [`TreeConvValueModel::loss_grad`].
    #[test]
    fn batched_gradient_is_bit_identical_at_batch_one() {
        let mut rng = SmallRng::seed_from_u64(0x1DE);
        let model = small_model(&mut rng);
        let data = fd_set_large(&mut rng);
        assert_eq!(model.loss_grad_batched(&data, 1), model.loss_grad(&data));
    }

    /// Batched `fit` at batch size 1 reproduces the per-sample
    /// reference bit for bit: same sampler stream, same optimizer
    /// arithmetic, same checkpoint.
    #[test]
    fn batched_fit_matches_per_sample_at_batch_one() {
        let mut rng = SmallRng::seed_from_u64(0xF17);
        let data = fd_set_large(&mut rng);
        let cfg = SgdConfig {
            epochs: 8,
            batch: 1,
            lr: 0.001,
            ..SgdConfig::default()
        };
        for optimizer in [
            crate::model::OptimizerKind::Sgd,
            crate::model::OptimizerKind::Momentum,
            crate::model::OptimizerKind::Adam,
        ] {
            let cfg = SgdConfig {
                optimizer,
                momentum: 0.9,
                ..cfg
            };
            let mut seed_rng = SmallRng::seed_from_u64(0xAB);
            let mut batched = small_model(&mut seed_rng);
            let mut seed_rng = SmallRng::seed_from_u64(0xAB);
            let mut per_sample = small_model(&mut seed_rng);
            let mut r1 = SmallRng::seed_from_u64(99);
            let mut r2 = SmallRng::seed_from_u64(99);
            let a = batched.fit(data.clone(), &cfg, &mut r1);
            let b = per_sample.fit_per_sample(data.clone(), &cfg, &mut r2);
            let p = batched.params();
            assert!(p.iter().all(|v| v.is_finite()), "{optimizer:?} diverged");
            assert_eq!(p, per_sample.params(), "{optimizer:?}");
            assert_eq!(a.steps, b.steps);
            assert_eq!(a.mse.to_bits(), b.mse.to_bits());
        }
    }

    /// A censored sample whose prediction already exceeds the bound
    /// contributes no gradient; one below the bound does.
    #[test]
    fn censored_hinge_gates_gradients() {
        let mut rng = SmallRng::seed_from_u64(7);
        let model = small_model(&mut rng);
        let x = random_tree(3, 5, &mut rng);
        let pred = model.predict(&x);
        let inactive = TrainSet {
            xs: vec![x.clone()],
            ys: vec![pred - 5.0],
            censored: vec![true],
        };
        assert!(model.loss_grad(&inactive).iter().all(|&g| g == 0.0));
        assert_eq!(model.loss(&inactive), 0.0);
        let active = TrainSet {
            xs: vec![x],
            ys: vec![pred + 5.0],
            censored: vec![true],
        };
        assert!(model.loss_grad(&active).iter().any(|&g| g != 0.0));
        assert!(model.loss(&active) > 0.0);
    }

    /// Dynamic pooling is the channel-wise max over all nodes, and the
    /// incremental join state reproduces the full forward exactly.
    #[test]
    fn incremental_states_match_full_forward() {
        let mut rng = SmallRng::seed_from_u64(21);
        let model = small_model(&mut rng);
        for leaves in [1usize, 2, 4, 7] {
            let x = random_tree(leaves, 5, &mut rng);
            let t = decode_tree(&x);
            // Recompute incrementally, bottom-up over the same topology.
            let mut states: Vec<Option<ModelState>> = vec![None; t.feats.len()];
            for i in 0..t.feats.len() {
                states[i] = Some(match t.children[i] {
                    None => model.leaf_state(&t.feats[i]).expect("leaf state"),
                    Some((a, b)) => model
                        .join_state(
                            &t.feats[i],
                            states[a].as_ref().expect("child before parent"),
                            states[b].as_ref().expect("child before parent"),
                        )
                        .expect("join state"),
                });
            }
            let root = states.last().unwrap().as_ref().unwrap();
            let incremental = model.state_value(root).expect("state value");
            let full = model.predict(&x);
            assert!(
                (incremental - full).abs() <= 1e-12 * full.abs().max(1.0),
                "leaves {leaves}: incremental {incremental} vs full {full}"
            );
            // The root state's pooled vector is the channel-wise max of
            // the full forward's final-layer activations.
            let f = model.forward(&t);
            let s = root.downcast_ref::<TcState>().unwrap();
            for (c, (&a, &b)) in s.pooled.iter().zip(&f.pooled).enumerate() {
                assert!((a - b).abs() < 1e-15, "channel {c}: {a} vs {b}");
            }
        }
    }

    /// SGD on the censored-hinge loss reduces training error on a
    /// synthetic tree-structured signal, deterministically per seed.
    #[test]
    fn fit_learns_and_is_deterministic() {
        let gen = |rng: &mut SmallRng| {
            let mut data = TrainSet::default();
            for _ in 0..80 {
                let leaves = rng.random_range(1..5usize);
                let x = random_tree(leaves, 5, rng);
                // Signal: node count plus the first feature of the root.
                let t = decode_tree(&x);
                let y = 0.3 * t.feats.len() as f64 + 0.5 * t.feats.last().unwrap()[0];
                data.xs.push(x);
                data.ys.push(y);
                data.censored.push(false);
            }
            data
        };
        let data = gen(&mut SmallRng::seed_from_u64(3));
        let run = |seed: u64| {
            let mut m = TreeConvValueModel::new(
                5,
                TreeConvConfig {
                    conv_channels: vec![8, 8],
                    mlp_hidden: 8,
                },
            );
            let report = m.fit(
                data.clone(),
                &SgdConfig {
                    epochs: 120,
                    lr: 0.03,
                    batch: 16,
                    ..SgdConfig::default()
                },
                &mut SmallRng::seed_from_u64(seed),
            );
            (m, report)
        };
        let (m, report) = run(11);
        assert!(report.steps > 0);
        let var = {
            let mean = data.ys.iter().sum::<f64>() / data.len() as f64;
            data.ys.iter().map(|y| (y - mean) * (y - mean)).sum::<f64>() / data.len() as f64
        };
        assert!(
            report.mse < var * 0.5,
            "mse {} should beat half the label variance {var}",
            report.mse
        );
        // Same seed, same data: bit-identical parameters.
        let (m2, _) = run(11);
        assert_eq!(m.params(), m2.params());
        // Different seed: different init, different weights.
        let (m3, _) = run(12);
        assert_ne!(m.params(), m3.params());
    }

    #[test]
    fn params_set_params_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(2);
        let m = small_model(&mut rng);
        let p = m.params();
        assert_eq!(p.len(), m.num_params());
        let mut fresh = TreeConvValueModel::new(
            5,
            TreeConvConfig {
                conv_channels: vec![4, 3],
                mlp_hidden: 3,
            },
        );
        assert!(!fresh.is_fitted());
        fresh.set_params(&p);
        assert!(fresh.is_fitted());
        assert_eq!(fresh.params(), p);
        let x = random_tree(3, 5, &mut rng);
        assert_eq!(m.predict(&x), fresh.predict(&x));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(5);
        let x = random_tree(4, 3, &mut rng);
        let t = decode_tree(&x);
        assert_eq!(encode_tree(&t.feats, &t.children), x);
        // Leaves have no children; the root is the last slot.
        assert_eq!(t.feats.len(), 7);
        assert!(t.children.last().unwrap().is_some());
    }

    /// An untrained network predicts 0 and never poisons the beam.
    #[test]
    fn unfitted_predicts_zero() {
        let m = TreeConvValueModel::new(5, TreeConvConfig::default());
        let mut rng = SmallRng::seed_from_u64(9);
        let x = random_tree(3, 5, &mut rng);
        assert_eq!(m.predict(&x), 0.0);
        assert!(!m.is_fitted());
    }
}
