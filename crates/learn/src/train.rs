//! The two-phase training loop (§4–§6).
//!
//! **Phase 1 — simulation pretraining (§4.1).** For every training
//! query, collect plans (the `C_out`-optimal DP plan plus random
//! samples), label *every subplan* with its `C_out` pseudo-latency under
//! the estimator (the minimal simulator needs no execution), and fit the
//! value model. This bootstraps the agent away from disastrous plans
//! without a single real execution and without expert demonstrations.
//!
//! **Phase 2 — real-execution fine-tuning (§4.2–§4.3).** Iterate: plan
//! every training query with the learned-value beam under epsilon-greedy
//! exploration (§5.2), execute on the [`ExecutionEnv`] with a safety
//! timeout relative to the best latency seen for that query, record
//! per-subplan (possibly censored) labels into the
//! [`ExperienceBuffer`], and fine-tune the model on the real population.
//! Planning time, execution time, and SGD steps are all charged to the
//! environment's [`SimClock`], so the trajectory's `sim_hours` is the
//! paper's learning-curve x-axis.
//!
//! Held-out queries are evaluated each iteration with greedy (ε = 0)
//! inference on a *separate* environment, so evaluation neither warms
//! the training plan cache nor advances the training clock.

use crate::buffer::{Experience, ExperienceBuffer, LabelSource};
use crate::featurize::Featurizer;
use crate::model::{
    FeatureEncoding, LinearValueModel, ModelKind, ResidualValueModel, SgdConfig, ValueModel,
};
use crate::scorer::LearnedScorer;
use crate::treeconv::{TreeConvConfig, TreeConvValueModel};
use balsa_card::{CardEstimator, HistogramEstimator, MemoEstimator};
use balsa_cost::{CostModel, CoutModel, ExpertCostModel};
use balsa_engine::{query_key, ExecutionEnv, SimClock, SubtreeObs};
use balsa_query::workloads::Workload;
use balsa_query::{Plan, Query, Split};
use balsa_search::{random_plan, BeamPlanner, DpPlanner, Planner, SearchMode, WorkerPool};
use balsa_storage::Database;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

/// Hyperparameters of [`train_loop`].
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Which value-model family to train (§6's tree convolution or the
    /// linear baseline).
    pub model: ModelKind,
    /// Plan-shape space (match the engine's hint space).
    pub mode: SearchMode,
    /// Beam width for both training and evaluation inference.
    pub beam_width: usize,
    /// Random plans per training query in simulation pretraining
    /// (besides the `C_out`-optimal DP plan).
    pub sim_random_plans: usize,
    /// Real-execution fine-tuning iterations.
    pub iterations: usize,
    /// Initial epsilon for epsilon-greedy beam exploration during
    /// fine-tuning; decays linearly to 0 across the iterations (§5.2).
    pub epsilon: f64,
    /// Timeout budget as a multiple of the best observed latency per
    /// query (§4.3); the first execution of a query is unbudgeted.
    pub timeout_factor: f64,
    /// SGD settings for the pretraining fit.
    pub pretrain_sgd: SgdConfig,
    /// SGD settings for each fine-tuning fit (fewer epochs: the model
    /// continues from its current parameters).
    pub finetune_sgd: SgdConfig,
    /// Master seed for weight init, shuffling, sampling, exploration.
    pub seed: u64,
    /// Worker threads for the fine-tuning phase's per-query planning
    /// and featurization, and for the per-iteration evaluation sweeps
    /// (1 = serial). Per-query exploration RNGs are seeded by query id
    /// and results merge in split order, so any thread count produces
    /// bit-identical checkpoints; planning wall-clock is charged as the
    /// parallel makespan.
    pub planning_threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            model: ModelKind::Linear,
            mode: SearchMode::Bushy,
            beam_width: 20,
            sim_random_plans: 20,
            iterations: 10,
            epsilon: 0.15,
            timeout_factor: 4.0,
            pretrain_sgd: SgdConfig::default(),
            finetune_sgd: SgdConfig {
                epochs: 20,
                lr: 0.02,
                l2: 0.02,
                ..SgdConfig::default()
            },
            seed: 0xBA15A,
            planning_threads: 1,
        }
    }
}

/// One point of the learning trajectory.
#[derive(Debug, Clone, Copy)]
pub struct IterationStats {
    /// 0 after simulation pretraining, then 1..=iterations.
    pub iteration: usize,
    /// Simulated elapsed hours on the training environment's clock.
    pub sim_hours: f64,
    /// Median latency of the plans executed on the training set this
    /// iteration (NaN for iteration 0, which executes nothing).
    pub train_median_secs: f64,
    /// Median executed latency of greedy inference on the held-out set.
    pub test_median_secs: f64,
    /// Training executions killed by the timeout this iteration.
    pub timeouts: usize,
    /// Real-source experiences in the buffer.
    pub buffer_real: usize,
    /// Simulated-source experiences in the buffer.
    pub buffer_sim: usize,
    /// Training MSE of the last fit.
    pub fit_mse: f64,
    /// Median executed latency of greedy inference on the *training*
    /// workload (held-out queries are never used for selection).
    pub val_median_secs: f64,
    /// Geometric-mean executed latency on the training workload — the
    /// checkpoint-selection signal.
    pub val_geo_mean_secs: f64,
}

/// Result of a [`train_loop`] run.
pub struct TrainOutcome {
    /// The selected value model: the per-iteration checkpoint with the
    /// best validation (training-workload) geometric-mean latency, as
    /// the paper retains the best agent by validation rather than the
    /// last one.
    pub model: Box<dyn ValueModel>,
    /// Per-iteration learning trajectory (first entry is iteration 0,
    /// right after pretraining).
    pub trajectory: Vec<IterationStats>,
    /// The accumulated experience buffer.
    pub buffer: ExperienceBuffer,
}

/// Instantiates an untrained model of `kind` sized for `featurizer`.
pub fn make_model(kind: ModelKind, featurizer: &Featurizer) -> Box<dyn ValueModel> {
    match kind {
        ModelKind::Linear => Box::new(LinearValueModel::new(featurizer.dim())),
        ModelKind::TreeConv => Box::new(TreeConvValueModel::new(
            featurizer.node_dim(),
            TreeConvConfig::default(),
        )),
    }
}

/// Records `C_out` pseudo-latency labels for every subplan of `plan`,
/// encoded for the model family being trained.
// Like `evaluate_learned`, the argument list is the full labeling
// context; a struct would be rebuilt per call site.
#[allow(clippy::too_many_arguments)]
fn record_sim_labels(
    buffer: &mut ExperienceBuffer,
    featurizer: &Featurizer,
    enc: FeatureEncoding,
    query: &Query,
    plan: &Arc<Plan>,
    est: &dyn CardEstimator,
    time_per_work: f64,
    startup_secs: f64,
) {
    let qk = query_key(query);
    let cout = CoutModel;
    for sub in plan.subplans() {
        let label = startup_secs + cout.plan_cost(query, &sub, est) * time_per_work;
        // `canonical_hash`, not `fingerprint`: the buffer's training-set
        // ordering sorts on this key, so it must be the frozen encoding
        // or fingerprint-algorithm changes would permute every SGD
        // minibatch and invalidate recorded learning curves.
        buffer.record(Experience {
            query_key: qk,
            fingerprint: sub.canonical_hash(),
            features: featurizer.featurize_enc(enc, query, &sub, est),
            label_secs: label,
            censored: false,
            source: LabelSource::Simulated,
        });
    }
}

/// Geometric mean of a slice of positive latencies (NaN when empty).
/// More sensitive than the median to tail disasters, which makes it the
/// better validation signal for checkpoint selection.
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|&x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Median of a slice (NaN when empty).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Executes greedy learned-value inference for `idxs` on `eval_env`,
/// returning the per-query latencies. Planning runs on `pool` (one
/// planner per worker, results merged in `idxs` order — bit-identical
/// to the serial loop since greedy inference consumes no randomness);
/// execution stays serial so the environment sees a fixed sequence.
// The argument list is the full evaluation context; a config struct
// would be rebuilt at every call site for no clarity gain.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_learned(
    db: &Arc<Database>,
    eval_env: &ExecutionEnv,
    featurizer: &Featurizer,
    model: &dyn ValueModel,
    est: &dyn CardEstimator,
    workload: &Workload,
    idxs: &[usize],
    mode: SearchMode,
    beam_width: usize,
    pool: &WorkerPool,
) -> Vec<f64> {
    let scorer = LearnedScorer::new(featurizer, model, est);
    let planned = pool.map_init(
        idxs,
        || BeamPlanner::new(db, &scorer, mode, beam_width),
        |planner, _, &i| planner.plan(&workload.queries[i]),
    );
    idxs.iter()
        .zip(&planned)
        .map(|(&i, out)| {
            eval_env
                .execute(&workload.queries[i], &out.plan, None)
                .expect("beam plan must be executable")
                .latency_secs
        })
        .collect()
}

/// Executes the expert baseline — DP with the engine's expert cost model
/// on estimated cardinalities — for `idxs`, returning latencies.
pub fn evaluate_expert_baseline(
    db: &Arc<Database>,
    eval_env: &ExecutionEnv,
    workload: &Workload,
    idxs: &[usize],
    mode: SearchMode,
) -> Vec<f64> {
    let est = HistogramEstimator::new(db);
    let model = ExpertCostModel::new(db.clone(), eval_env.profile().weights);
    let planner = DpPlanner::new(db, &model, &est, mode);
    idxs.iter()
        .map(|&i| {
            let q = &workload.queries[i];
            let out = planner.plan(q);
            eval_env
                .execute(q, &out.plan, None)
                .expect("dp plan must be executable")
                .latency_secs
        })
        .collect()
}

/// Runs simulation pretraining followed by real-execution fine-tuning on
/// `env`, returning the trained model, the learning trajectory, and the
/// experience buffer.
pub fn train_loop(
    db: &Arc<Database>,
    env: &ExecutionEnv,
    workload: &Workload,
    split: &Split,
    cfg: &TrainConfig,
) -> TrainOutcome {
    assert!(!split.train.is_empty(), "empty training split");
    let profile = env.profile();
    let est = HistogramEstimator::new(db);
    let featurizer = Featurizer::new(db.clone(), profile.weights, profile.bushy_hints);
    let mut buffer = ExperienceBuffer::new();
    let mut model = make_model(cfg.model, &featurizer);
    let enc = model.encoding();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    // Evaluation runs on a twin environment: latencies are deterministic
    // per (query, plan), so results match the training engine without
    // touching its clock or plan cache.
    let eval_env = ExecutionEnv::new(db.clone(), *profile, SimClock::paper_default());

    // ---- Phase 1: simulation pretraining (§4.1) ----
    let cout = CoutModel;
    for &qi in &split.train {
        let q = &workload.queries[qi];
        let memo = MemoEstimator::new(&est);
        let dp = DpPlanner::new(db, &cout, &memo, cfg.mode).plan(q);
        env.charge_planning(dp.planning_secs);
        let mut plans = vec![dp.plan];
        for _ in 0..cfg.sim_random_plans {
            plans.push(random_plan(db, q, cfg.mode, &mut rng));
        }
        for plan in &plans {
            record_sim_labels(
                &mut buffer,
                &featurizer,
                enc,
                q,
                plan,
                &memo,
                profile.time_per_work,
                profile.startup_secs,
            );
        }
    }
    let report = model.fit(
        buffer.train_set(LabelSource::Simulated),
        &cfg.pretrain_sgd,
        &mut rng,
    );
    env.charge_update(report.steps);

    let mut trajectory = Vec::new();
    let pool = WorkerPool::new(cfg.planning_threads);
    let eval_point = |model: &dyn ValueModel| {
        let test = evaluate_learned(
            db,
            &eval_env,
            &featurizer,
            model,
            &est,
            workload,
            &split.test,
            cfg.mode,
            cfg.beam_width,
            &pool,
        );
        let val = evaluate_learned(
            db,
            &eval_env,
            &featurizer,
            model,
            &est,
            workload,
            &split.train,
            cfg.mode,
            cfg.beam_width,
            &pool,
        );
        (median(&test), median(&val), geo_mean(&val))
    };
    let (test_median, val_median, val_geo) = eval_point(&*model);
    let mut best_model = model.clone_box();
    let mut best_val = val_geo;
    trajectory.push(IterationStats {
        iteration: 0,
        sim_hours: env.elapsed_secs() / 3600.0,
        train_median_secs: f64::NAN,
        test_median_secs: test_median,
        timeouts: 0,
        buffer_real: buffer.count(LabelSource::Real),
        buffer_sim: buffer.count(LabelSource::Simulated),
        fit_mse: report.mse,
        val_median_secs: val_median,
        val_geo_mean_secs: val_geo,
    });

    // ---- Phase 2: real-execution fine-tuning (§4.2–§4.3) ----
    //
    // Residual scheme ([`ResidualValueModel`]): the pretrained model is
    // frozen as the base; a correction model of the same family is
    // trained on real-execution residual labels (`ln latency − base
    // prediction`), and the deployed model is their sum. Iteration 1
    // therefore starts exactly at the pretrained policy, and fine-tuning
    // moves it only where real evidence pulls — the stable counterpart
    // of the paper's sim-to-real transfer.
    let mut model: Box<dyn ValueModel> = Box::new(ResidualValueModel::new(
        model,
        make_model(cfg.model, &featurizer),
    ));
    let mut best_lat: HashMap<usize, f64> = HashMap::new();
    for iter in 1..=cfg.iterations {
        // Linear epsilon decay: full exploration early, pure greed last.
        let epsilon = if cfg.iterations > 1 {
            cfg.epsilon * (1.0 - (iter - 1) as f64 / (cfg.iterations - 1) as f64)
        } else {
            cfg.epsilon
        };
        // (a) Plan every training query on the worker pool. Each query's
        // exploration RNG is seeded by (seed, iteration, query id) inside
        // the beam, and results come back in split order, so this is
        // bit-identical to the serial loop for any thread count.
        let model_ref: &dyn ValueModel = &*model;
        let planned = pool.map(&split.train, |_, &qi| {
            let q = &workload.queries[qi];
            let scorer = LearnedScorer::new(&featurizer, model_ref, &est);
            BeamPlanner::new(db, &scorer, cfg.mode, cfg.beam_width)
                .with_exploration(epsilon, cfg.seed ^ ((iter as u64) << 44))
                .plan(q)
        });
        // The clock advances by the phase's parallel makespan, not the
        // serial sum — planning wall-clock is what the paper charges.
        let plan_secs: Vec<f64> = planned.iter().map(|p| p.planning_secs).collect();
        env.charge_planning_parallel(&plan_secs, pool.threads());

        // (b) Execute serially in split order: the training clock, plan
        // cache, and per-query timeout budgets see the exact sequence
        // the serial loop produced.
        let mut lats = Vec::with_capacity(split.train.len());
        let mut timeouts = 0usize;
        let mut label_jobs: Vec<(usize, Vec<SubtreeObs>)> = Vec::with_capacity(split.train.len());
        for (&qi, out) in split.train.iter().zip(&planned) {
            let q = &workload.queries[qi];
            let budget = best_lat.get(&qi).map(|b| b * cfg.timeout_factor);
            let (outcome, labels) = env
                .execute_labeled(q, &out.plan, budget)
                .expect("beam plan must be executable");
            if outcome.timed_out {
                timeouts += 1;
            } else {
                let e = best_lat.entry(qi).or_insert(f64::INFINITY);
                *e = e.min(outcome.latency_secs);
            }
            lats.push(outcome.latency_secs);
            label_jobs.push((qi, labels));
        }

        // (c) Featurize all subtree labels on the pool, (d) record into
        // the buffer serially in the same (query, subtree) order as the
        // serial loop — the experience stream is order-sensitive
        // (dedup/best-label retention), the featurization is pure.
        let featurized = pool.map(&label_jobs, |_, (qi, labels)| {
            let q = &workload.queries[*qi];
            let qk = query_key(q);
            let memo = MemoEstimator::new(&est);
            labels
                .iter()
                .map(|l| Experience {
                    query_key: qk,
                    // Frozen key — see `record_sim_labels`.
                    fingerprint: l.plan.canonical_hash(),
                    features: featurizer.featurize_enc(enc, q, &l.plan, &memo),
                    label_secs: l.latency_secs,
                    censored: l.censored,
                    source: LabelSource::Real,
                })
                .collect::<Vec<_>>()
        });
        for exps in featurized {
            for e in exps {
                buffer.record(e);
            }
        }
        // The residual wrapper subtracts the frozen base's predictions
        // and fits only the correction.
        let report = model.fit(
            buffer.train_set(LabelSource::Real),
            &cfg.finetune_sgd,
            &mut rng,
        );
        env.charge_update(report.steps);

        let (test_median, val_median, val_geo) = eval_point(&*model);
        if val_geo < best_val || best_val.is_nan() {
            best_val = val_geo;
            best_model = model.clone_box();
        }
        trajectory.push(IterationStats {
            iteration: iter,
            sim_hours: env.elapsed_secs() / 3600.0,
            train_median_secs: median(&lats),
            test_median_secs: test_median,
            timeouts,
            buffer_real: buffer.count(LabelSource::Real),
            buffer_sim: buffer.count(LabelSource::Simulated),
            fit_mse: report.mse,
            val_median_secs: val_median,
            val_geo_mean_secs: val_geo,
        });
    }

    TrainOutcome {
        model: best_model,
        trajectory,
        buffer,
    }
}
