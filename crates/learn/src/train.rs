//! The two-phase training loop (§4–§6).
//!
//! **Phase 1 — simulation pretraining (§4.1).** For every training
//! query, collect plans (the `C_out`-optimal DP plan plus random
//! samples), label *every subplan* with its `C_out` pseudo-latency under
//! the estimator (the minimal simulator needs no execution), and fit the
//! value model. This bootstraps the agent away from disastrous plans
//! without a single real execution and without expert demonstrations.
//!
//! **Phase 2 — real-execution fine-tuning (§4.2–§4.3).** Iterate: plan
//! every training query with the learned-value beam under epsilon-greedy
//! exploration (§5.2), execute on the [`ExecutionEnv`] with a safety
//! timeout relative to the best latency seen for that query, record
//! per-subplan (possibly censored) labels into the
//! [`ExperienceBuffer`], and fine-tune the model on the real population.
//! Planning time, execution time, and SGD steps are all charged to the
//! environment's [`SimClock`], so the trajectory's `sim_hours` is the
//! paper's learning-curve x-axis.
//!
//! **Robustness.** Fine-tuning executions run under a bounded
//! [`RetryPolicy`]: retryable faults (see [`balsa_engine::faults`]) are
//! retried with exponential backoff whose wall is charged to the clock
//! as honest makespan; exhausted retries become timeout-censored labels
//! or dropped samples per the policy. When the recent failure+timeout
//! rate over a sliding window exceeds `fallback_threshold`, the next
//! iteration degrades gracefully to expert DP plans — recorded in the
//! trajectory and [`ResilienceStats`], never silent. With
//! `checkpoint_every > 0` the loop writes an atomic checkpoint each N
//! iterations and `resume_from` restarts mid-run, reproducing the
//! uninterrupted run's remaining iterations bit-for-bit (see
//! [`crate::checkpoint`]).
//!
//! Held-out queries are evaluated each iteration with greedy (ε = 0)
//! inference on a *separate* environment, so evaluation neither warms
//! the training plan cache nor advances the training clock.

use crate::buffer::{Experience, ExperienceBuffer, LabelSource};
use crate::checkpoint::{BufferEntry, CheckpointData};
use crate::featurize::Featurizer;
use crate::model::{
    FeatureEncoding, LinearValueModel, ModelKind, ResidualValueModel, SgdConfig, ValueModel,
};
use crate::scorer::LearnedScorer;
use crate::treeconv::{TreeConvConfig, TreeConvValueModel};
use balsa_card::{CardEstimator, HistogramEstimator, MemoEstimator};
use balsa_cost::{CostModel, CoutModel, ExpertCostModel};
use balsa_engine::{query_key, ExecutionEnv, ResilienceStats, RetryPolicy, SimClock, SubtreeObs};
use balsa_query::workloads::Workload;
use balsa_query::{Plan, Query, Split};
use balsa_search::{
    random_plan, BeamPlanner, DpPlanner, PlanBudget, PlanError, Planner, SearchMode, WorkerPool,
};
use balsa_storage::Database;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Hyperparameters of [`train_loop`].
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Which value-model family to train (§6's tree convolution or the
    /// linear baseline).
    pub model: ModelKind,
    /// Plan-shape space (match the engine's hint space).
    pub mode: SearchMode,
    /// Beam width for both training and evaluation inference.
    pub beam_width: usize,
    /// Random plans per training query in simulation pretraining
    /// (besides the `C_out`-optimal DP plan).
    pub sim_random_plans: usize,
    /// Real-execution fine-tuning iterations.
    pub iterations: usize,
    /// Initial epsilon for epsilon-greedy beam exploration during
    /// fine-tuning; decays linearly to 0 across the iterations (§5.2).
    pub epsilon: f64,
    /// Timeout budget as a multiple of the best observed latency per
    /// query (§4.3); the first execution of a query is unbudgeted.
    pub timeout_factor: f64,
    /// SGD settings for the pretraining fit.
    pub pretrain_sgd: SgdConfig,
    /// SGD settings for each fine-tuning fit (fewer epochs: the model
    /// continues from its current parameters).
    pub finetune_sgd: SgdConfig,
    /// Master seed for weight init, shuffling, sampling, exploration.
    pub seed: u64,
    /// Worker threads for the fine-tuning phase's per-query planning
    /// and featurization, and for the per-iteration evaluation sweeps
    /// (1 = serial). Per-query exploration RNGs are seeded by query id
    /// and results merge in split order, so any thread count produces
    /// bit-identical checkpoints; planning wall-clock is charged as the
    /// parallel makespan.
    pub planning_threads: usize,
    /// Worker threads for the fine-tuning phase's plan *executions*
    /// (1 = serial) — first-touch true-cardinality joins materialize
    /// concurrently. Queries within an iteration are distinct and
    /// timeout budgets derive only from prior iterations, so every
    /// observed latency, label, and cache decision is independent of
    /// the thread count; the clock is charged the batch makespan via
    /// [`ExecutionEnv::charge_execution_batch`].
    pub training_threads: usize,
    /// Retry policy for fine-tuning executions. With no fault injector
    /// armed on the env, at most one attempt ever runs and the loop is
    /// bit-identical to a retry-free one.
    pub retry: RetryPolicy,
    /// Resource budget armed on every planner the loop constructs —
    /// pretraining DP, the learned training/evaluation beams, and the
    /// expert-DP fallback. [`PlanBudget::UNLIMITED`] (the default) is
    /// bit-identical to the historical unbudgeted loop; a finite budget
    /// degrades exhausted searches through the fallback chain
    /// (DP → beam → greedy), counted in [`ResilienceStats`].
    pub plan_budget: PlanBudget,
    /// Sliding-window length (iterations) for the graceful-degradation
    /// check.
    pub fallback_window: usize,
    /// When the mean failure+timeout rate over the window exceeds this,
    /// the next iteration plans with expert DP instead of the learned
    /// beam. `f64::INFINITY` (the default) disables fallback.
    pub fallback_threshold: f64,
    /// Write an atomic checkpoint every N fine-tuning iterations
    /// (0 = never). Requires `checkpoint_path`.
    pub checkpoint_every: usize,
    /// Where checkpoints are written.
    pub checkpoint_path: Option<PathBuf>,
    /// Resume from this checkpoint, skipping pretraining and all
    /// completed iterations. A missing file starts a fresh run (first
    /// launch); a corrupt or configuration-mismatched file panics —
    /// never silently trains a different run.
    pub resume_from: Option<PathBuf>,
    /// Test hook: stop right after iteration N's checkpoint is written,
    /// simulating a kill at that boundary. A shortened `iterations`
    /// cannot simulate this because the epsilon decay schedule depends
    /// on the full horizon.
    pub halt_after: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            model: ModelKind::Linear,
            mode: SearchMode::Bushy,
            beam_width: 20,
            sim_random_plans: 20,
            iterations: 10,
            epsilon: 0.15,
            timeout_factor: 4.0,
            pretrain_sgd: SgdConfig::default(),
            finetune_sgd: SgdConfig {
                epochs: 20,
                lr: 0.02,
                l2: 0.02,
                ..SgdConfig::default()
            },
            seed: 0xBA15A,
            planning_threads: 1,
            training_threads: 1,
            retry: RetryPolicy::default(),
            plan_budget: PlanBudget::UNLIMITED,
            fallback_window: 3,
            fallback_threshold: f64::INFINITY,
            checkpoint_every: 0,
            checkpoint_path: None,
            resume_from: None,
            halt_after: None,
        }
    }
}

/// SplitMix64 finalizer — fingerprint mixing.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn mix_str(h: u64, s: &str) -> u64 {
    s.bytes().fold(h, |h, b| mix(h ^ b as u64))
}

impl TrainConfig {
    /// Structural fingerprint of everything that shapes the
    /// deterministic computation: hyperparameters, retry and fallback
    /// policy, and the env's fault configuration. Checkpoints refuse to
    /// resume under a different fingerprint. Thread counts and the
    /// checkpoint/halt plumbing are deliberately excluded — they do not
    /// change any computed bit.
    pub fn fingerprint(&self, env: &ExecutionEnv) -> u64 {
        let mut h = mix(0xBA15A ^ self.seed);
        h = mix_str(h, &format!("{:?}", self.model));
        h = mix_str(h, &format!("{:?}", self.mode));
        for v in [
            self.beam_width as u64,
            self.sim_random_plans as u64,
            self.iterations as u64,
            self.fallback_window as u64,
        ] {
            h = mix(h ^ v);
        }
        for bits in [
            self.epsilon.to_bits(),
            self.timeout_factor.to_bits(),
            self.fallback_threshold.to_bits(),
        ] {
            h = mix(h ^ bits);
        }
        h = mix_str(h, &format!("{:?}", self.pretrain_sgd));
        h = mix_str(h, &format!("{:?}", self.finetune_sgd));
        h = mix(h ^ self.retry.fingerprint());
        h = mix(h ^ self.plan_budget.fingerprint());
        h = mix(h ^ env.fault_injector().map_or(0, |i| i.config().fingerprint()));
        h
    }
}

/// Where the training loop's wall-clock went — the benchmark's
/// per-phase breakdown. All fields are measured walls for reporting;
/// nothing downstream is keyed on them.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrainBreakdown {
    /// Model-fit forward passes (the batched tree-conv kernels; 0 for
    /// models that do not separate phases).
    pub forward_secs: f64,
    /// Model-fit backprop + parameter updates.
    pub backward_secs: f64,
    /// Subplan featurization (pretraining + fine-tuning), as the
    /// parallel phases' wall-clock.
    pub featurize_secs: f64,
    /// Execution phases' wall-clock — dominated by first-touch
    /// true-cardinality materialization.
    pub truecard_secs: f64,
    /// Sum of per-execution walls inside the execution phases; divide
    /// by [`TrainBreakdown::truecard_secs`] for the realized parallel
    /// speedup.
    pub truecard_job_secs: f64,
    /// Execution jobs run across the execution pool — the
    /// `parallel_items` feeding `balsa_search::parallel_speedup`'s
    /// suppression rule, so a run where nothing fanned out reports
    /// `null` rather than a noise "speedup".
    pub truecard_jobs: usize,
}

/// One point of the learning trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationStats {
    /// 0 after simulation pretraining, then 1..=iterations.
    pub iteration: usize,
    /// Simulated elapsed hours on the training environment's clock.
    /// Wall-derived (planning charges are measured), so NaN for
    /// iterations replayed from a checkpoint.
    pub sim_hours: f64,
    /// Median latency of the plans executed on the training set this
    /// iteration (NaN for iteration 0, which executes nothing).
    pub train_median_secs: f64,
    /// Median executed latency of greedy inference on the held-out set.
    pub test_median_secs: f64,
    /// Training executions killed by the timeout this iteration
    /// (including exhausted-retry executions recorded as censored).
    pub timeouts: usize,
    /// Real-source experiences in the buffer.
    pub buffer_real: usize,
    /// Simulated-source experiences in the buffer.
    pub buffer_sim: usize,
    /// Training MSE of the last fit.
    pub fit_mse: f64,
    /// Median executed latency of greedy inference on the *training*
    /// workload (held-out queries are never used for selection).
    pub val_median_secs: f64,
    /// Geometric-mean executed latency on the training workload — the
    /// checkpoint-selection signal.
    pub val_geo_mean_secs: f64,
    /// Faults injected into this iteration's executions.
    pub faults: u64,
    /// Retry attempts spent this iteration.
    pub retries: u64,
    /// Samples dropped after exhausting retries this iteration.
    pub abandoned: u64,
    /// Whether this iteration planned with the expert DP fallback
    /// instead of the learned beam.
    pub fallback: bool,
}

/// Result of a [`train_loop`] run.
pub struct TrainOutcome {
    /// The selected value model: the per-iteration checkpoint with the
    /// best validation (training-workload) geometric-mean latency, as
    /// the paper retains the best agent by validation rather than the
    /// last one.
    pub model: Box<dyn ValueModel>,
    /// Per-iteration learning trajectory (first entry is iteration 0,
    /// right after pretraining).
    pub trajectory: Vec<IterationStats>,
    /// The accumulated experience buffer.
    pub buffer: ExperienceBuffer,
    /// Per-phase wall-clock breakdown of the run.
    pub breakdown: TrainBreakdown,
    /// Everything the resilience layer absorbed across the run.
    pub resilience: ResilienceStats,
}

/// Instantiates an untrained model of `kind` sized for `featurizer`.
pub fn make_model(kind: ModelKind, featurizer: &Featurizer) -> Box<dyn ValueModel> {
    match kind {
        ModelKind::Linear => Box::new(LinearValueModel::new(featurizer.dim())),
        ModelKind::TreeConv => Box::new(TreeConvValueModel::new(
            featurizer.node_dim(),
            TreeConvConfig::default(),
        )),
    }
}

/// Builds `C_out` pseudo-latency labels for every subplan of `plan`,
/// encoded for the model family being trained. Pure (fresh estimator
/// memos yield identical estimates), so the training loop featurizes on
/// the worker pool and records the returned experiences serially.
// Like `evaluate_learned`, the argument list is the full labeling
// context; a struct would be rebuilt per call site.
#[allow(clippy::too_many_arguments)]
fn sim_labels(
    featurizer: &Featurizer,
    enc: FeatureEncoding,
    query: &Query,
    plan: &Arc<Plan>,
    est: &dyn CardEstimator,
    time_per_work: f64,
    startup_secs: f64,
    out: &mut Vec<Experience>,
) {
    let qk = query_key(query);
    let cout = CoutModel;
    for sub in plan.subplans() {
        let label = startup_secs + cout.plan_cost(query, &sub, est) * time_per_work;
        // `canonical_hash`, not `fingerprint`: the buffer's training-set
        // ordering sorts on this key, so it must be the frozen encoding
        // or fingerprint-algorithm changes would permute every SGD
        // minibatch and invalidate recorded learning curves.
        out.push(Experience {
            query_key: qk,
            fingerprint: sub.canonical_hash(),
            features: featurizer.featurize_enc(enc, query, &sub, est),
            plan: sub,
            label_secs: label,
            censored: false,
            source: LabelSource::Simulated,
        });
    }
}

/// Geometric mean of a slice of positive latencies (NaN when empty).
/// More sensitive than the median to tail disasters, which makes it the
/// better validation signal for checkpoint selection.
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|&x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Median of a slice (NaN when empty).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Executes greedy learned-value inference for `idxs` on `eval_env`,
/// returning the per-query latencies. Planning *and* execution run on
/// `pool` (one planner per worker, results merged in `idxs` order —
/// bit-identical to the serial loop, since greedy inference consumes no
/// randomness, latencies are deterministic per (query, plan), and the
/// indices are distinct so no execution observes another's cache
/// entry). Executions are uncharged: evaluation must not advance any
/// simulated clock.
///
/// A finite `budget` degrades exhausted searches through the fallback
/// chain; the call errors only when some query has no plan at all
/// ([`PlanError::DisconnectedGraph`]) — surfaced, never a panic.
// The argument list is the full evaluation context; a config struct
// would be rebuilt at every call site for no clarity gain.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_learned(
    db: &Arc<Database>,
    eval_env: &ExecutionEnv,
    featurizer: &Featurizer,
    model: &dyn ValueModel,
    est: &dyn CardEstimator,
    workload: &Workload,
    idxs: &[usize],
    mode: SearchMode,
    beam_width: usize,
    budget: PlanBudget,
    pool: &WorkerPool,
) -> Result<Vec<f64>, PlanError> {
    let scorer = LearnedScorer::new(featurizer, model, est);
    let planned: Vec<PlannedOrErr> = pool.map_init(
        idxs,
        || BeamPlanner::new(db, &scorer, mode, beam_width).with_budget(budget),
        |planner, _, &i| planner.try_plan(&workload.queries[i]),
    );
    let planned = planned.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(pool.map(&planned, |j, out| {
        eval_env
            .execute_uncharged(&workload.queries[idxs[j]], &out.plan, None)
            .expect("beam plan must be executable")
            .latency_secs
    }))
}

type PlannedOrErr = Result<balsa_search::PlannedQuery, PlanError>;

/// Executes the expert baseline — DP with the engine's expert cost model
/// on estimated cardinalities — for `idxs` on `pool`, returning
/// latencies (deterministic for any thread count, as in
/// [`evaluate_learned`], and degrading identically under a finite
/// `budget`).
pub fn evaluate_expert_baseline(
    db: &Arc<Database>,
    eval_env: &ExecutionEnv,
    workload: &Workload,
    idxs: &[usize],
    mode: SearchMode,
    budget: PlanBudget,
    pool: &WorkerPool,
) -> Result<Vec<f64>, PlanError> {
    let est = HistogramEstimator::new(db);
    let model = ExpertCostModel::new(db.clone(), eval_env.profile().weights);
    let planned: Vec<PlannedOrErr> = pool.map_init(
        idxs,
        || DpPlanner::new(db, &model, &est, mode).with_budget(budget),
        |planner, _, &i| planner.try_plan(&workload.queries[i]),
    );
    let planned = planned.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(pool.map(&planned, |j, out| {
        eval_env
            .execute_uncharged(&workload.queries[idxs[j]], &out.plan, None)
            .expect("dp plan must be executable")
            .latency_secs
    }))
}

/// Runs simulation pretraining followed by real-execution fine-tuning on
/// `env`, returning the trained model, the learning trajectory, and the
/// experience buffer.
pub fn train_loop(
    db: &Arc<Database>,
    env: &ExecutionEnv,
    workload: &Workload,
    split: &Split,
    cfg: &TrainConfig,
) -> TrainOutcome {
    assert!(!split.train.is_empty(), "empty training split");
    let profile = env.profile();
    let est = HistogramEstimator::new(db);
    let featurizer = Featurizer::new(db.clone(), profile.weights, profile.bushy_hints);
    let mut buffer = ExperienceBuffer::new();
    let probe = make_model(cfg.model, &featurizer);
    let enc = probe.encoding();
    let cfg_fp = cfg.fingerprint(env);
    // Evaluation runs on a twin environment: latencies are deterministic
    // per (query, plan), so results match the training engine without
    // touching its clock or plan cache. The true-cardinality oracle is
    // shared — cardinalities are exact ground truth, so sharing only
    // saves re-materializing the same joins twice. Faults are never
    // armed on it: evaluation measures plans, not luck.
    let eval_env = ExecutionEnv::with_truth(env.truth_arc(), *profile, SimClock::paper_default());

    let mut breakdown = TrainBreakdown::default();
    let pool = WorkerPool::new(cfg.planning_threads);

    // Workload generators only emit connected queries, so evaluation
    // planning cannot fail (a finite budget degrades instead of
    // erroring); an Err here means the workload itself is malformed.
    let eval_point = |model: &dyn ValueModel| {
        let test = evaluate_learned(
            db,
            &eval_env,
            &featurizer,
            model,
            &est,
            workload,
            &split.test,
            cfg.mode,
            cfg.beam_width,
            cfg.plan_budget,
            &pool,
        )
        .unwrap_or_else(|e| panic!("evaluation planning: {e}"));
        let val = evaluate_learned(
            db,
            &eval_env,
            &featurizer,
            model,
            &est,
            workload,
            &split.train,
            cfg.mode,
            cfg.beam_width,
            cfg.plan_budget,
            &pool,
        )
        .unwrap_or_else(|e| panic!("evaluation planning: {e}"));
        (median(&test), median(&val), geo_mean(&val))
    };

    let resume: Option<CheckpointData> = match &cfg.resume_from {
        Some(path) if path.exists() => {
            let data = CheckpointData::load(path)
                .unwrap_or_else(|e| panic!("resume_from {}: {e}", path.display()));
            assert_eq!(
                data.cfg_fingerprint,
                cfg_fp,
                "checkpoint {} was written under a different training/fault/retry \
                 configuration; refusing to silently train a different run",
                path.display()
            );
            Some(data)
        }
        Some(path) => {
            eprintln!(
                "balsa: resume_from {} not found; starting a fresh run",
                path.display()
            );
            None
        }
        None => None,
    };

    let mut model: Box<dyn ValueModel>;
    let mut best_model: Box<dyn ValueModel>;
    let mut best_is_residual: bool;
    let mut best_val: f64;
    let mut best_lat: HashMap<usize, f64>;
    let mut rng: SmallRng;
    let mut trajectory: Vec<IterationStats>;
    let mut stats: ResilienceStats;
    let mut window: Vec<f64>;
    let start_iter: usize;

    if let Some(data) = resume {
        // ---- Resume: rebuild the iteration boundary, skip phase 1 ----
        // Features are a pure function of (query, plan); the checkpoint
        // stores compact plan trees and we recompute features here, so
        // the rebuilt buffer is indistinguishable from the original.
        let qmap: HashMap<u64, &Query> =
            workload.queries.iter().map(|q| (query_key(q), q)).collect();
        for e in &data.buffer {
            let q = qmap
                .get(&e.query_key)
                .unwrap_or_else(|| panic!("checkpoint query key {} not in workload", e.query_key));
            let plan = Plan::parse_compact(&e.plan)
                .unwrap_or_else(|err| panic!("checkpoint plan {:?}: {err}", e.plan));
            assert_eq!(
                plan.canonical_hash(),
                e.fingerprint,
                "checkpoint plan does not match its recorded fingerprint"
            );
            let memo = MemoEstimator::new(&est);
            let features = featurizer.featurize_enc(enc, q, &plan, &memo);
            buffer.record(Experience {
                query_key: e.query_key,
                fingerprint: e.fingerprint,
                features,
                plan,
                label_secs: e.label_secs,
                censored: e.censored,
                source: e.source,
            });
        }
        let mut m: Box<dyn ValueModel> = Box::new(ResidualValueModel::new(
            make_model(cfg.model, &featurizer),
            make_model(cfg.model, &featurizer),
        ));
        m.load_state(&data.model_state)
            .unwrap_or_else(|e| panic!("checkpoint model state: {e}"));
        model = m;
        let mut bm: Box<dyn ValueModel> = if data.best_is_residual {
            Box::new(ResidualValueModel::new(
                make_model(cfg.model, &featurizer),
                make_model(cfg.model, &featurizer),
            ))
        } else {
            make_model(cfg.model, &featurizer)
        };
        bm.load_state(&data.best_model_state)
            .unwrap_or_else(|e| panic!("checkpoint best-model state: {e}"));
        best_model = bm;
        best_is_residual = data.best_is_residual;
        best_val = data.best_val;
        best_lat = data.best_lat.iter().copied().collect();
        // The vendored xoshiro exposes its word state: the master RNG
        // continues exactly mid-stream, so post-resume fits draw the
        // same shuffles and init the uninterrupted run would have.
        rng = SmallRng::from_state(data.rng_state);
        trajectory = data.trajectory;
        stats = data.resilience;
        window = data.fallback_window;
        start_iter = data.iteration + 1;
        // Restore the plan cache and counters. The clock is wall-derived
        // state and is not checkpointed; pin the snapshot's clock to the
        // live reading so the restore charges nothing.
        let mut snap = data.env;
        snap.clock_secs = env.elapsed_secs();
        env.restore(&snap);
    } else {
        // ---- Phase 1: simulation pretraining (§4.1) ----
        // Plan collection stays serial: `random_plan` consumes the master
        // RNG, whose stream is part of the reproducibility contract. The
        // expensive per-subplan featurization is pure, so it fans out on
        // the pool and the experiences are recorded serially in the same
        // (query, plan, subplan) order as the historical serial loop.
        let mut pre = probe;
        rng = SmallRng::seed_from_u64(cfg.seed);
        let cout = CoutModel;
        stats = ResilienceStats::default();
        let mut sim_jobs: Vec<(usize, Vec<Arc<Plan>>)> = Vec::with_capacity(split.train.len());
        for &qi in &split.train {
            let q = &workload.queries[qi];
            let memo = MemoEstimator::new(&est);
            // A finite budget degrades through the fallback chain; an
            // Err means the query has no plan at all (disconnected
            // graph) — skip it honestly rather than crash the run. The
            // skip happens before this query's random-plan draws, so it
            // cannot perturb other queries' RNG consumption.
            let dp = match DpPlanner::new(db, &cout, &memo, cfg.mode)
                .with_budget(cfg.plan_budget)
                .try_plan(q)
            {
                Ok(p) => p,
                Err(e) => {
                    stats.planner_errors += 1;
                    eprintln!("balsa: pretraining: {e}; skipping query");
                    continue;
                }
            };
            if dp.stats.degraded_levels > 0 {
                stats.planner_degraded += 1;
            }
            if dp.stats.budget_exhausted {
                stats.planner_exhausted += 1;
            }
            env.charge_planning(dp.planning_secs);
            let mut plans = vec![dp.plan];
            for _ in 0..cfg.sim_random_plans {
                plans.push(random_plan(db, q, cfg.mode, &mut rng));
            }
            sim_jobs.push((qi, plans));
        }
        let t_feat = Instant::now();
        let featurized = pool.map(&sim_jobs, |_, (qi, plans)| {
            let q = &workload.queries[*qi];
            // A fresh memo per job: estimates are pure functions of the
            // base estimator, so labels match the serial loop exactly.
            let memo = MemoEstimator::new(&est);
            let mut exps = Vec::new();
            for plan in plans {
                sim_labels(
                    &featurizer,
                    enc,
                    q,
                    plan,
                    &memo,
                    profile.time_per_work,
                    profile.startup_secs,
                    &mut exps,
                );
            }
            exps
        });
        breakdown.featurize_secs += t_feat.elapsed().as_secs_f64();
        for exps in featurized {
            for e in exps {
                buffer.record(e);
            }
        }
        let report = pre.fit(
            buffer.train_set(LabelSource::Simulated),
            &cfg.pretrain_sgd,
            &mut rng,
        );
        env.charge_update(report.steps);
        breakdown.forward_secs += report.forward_secs;
        breakdown.backward_secs += report.backward_secs;

        let (test_median, val_median, val_geo) = eval_point(&*pre);
        best_model = pre.clone_box();
        best_is_residual = false;
        best_val = val_geo;
        trajectory = vec![IterationStats {
            iteration: 0,
            sim_hours: env.elapsed_secs() / 3600.0,
            train_median_secs: f64::NAN,
            test_median_secs: test_median,
            timeouts: 0,
            buffer_real: buffer.count(LabelSource::Real),
            buffer_sim: buffer.count(LabelSource::Simulated),
            fit_mse: report.mse,
            val_median_secs: val_median,
            val_geo_mean_secs: val_geo,
            faults: 0,
            retries: 0,
            abandoned: 0,
            fallback: false,
        }];

        // Residual scheme ([`ResidualValueModel`]): the pretrained model
        // is frozen as the base; a correction model of the same family is
        // trained on real-execution residual labels (`ln latency − base
        // prediction`), and the deployed model is their sum. Iteration 1
        // therefore starts exactly at the pretrained policy, and
        // fine-tuning moves it only where real evidence pulls — the
        // stable counterpart of the paper's sim-to-real transfer.
        model = Box::new(ResidualValueModel::new(
            pre,
            make_model(cfg.model, &featurizer),
        ));
        best_lat = HashMap::new();
        window = Vec::new();
        start_iter = 1;
    }

    // ---- Phase 2: real-execution fine-tuning (§4.2–§4.3) ----
    // The pool is persistent: when the two phases are configured to the
    // same width, share one set of parked workers instead of spawning a
    // second pool (clones share workers).
    let exec_pool = if cfg.training_threads == cfg.planning_threads {
        pool.clone()
    } else {
        WorkerPool::new(cfg.training_threads)
    };
    for iter in start_iter..=cfg.iterations {
        // Graceful degradation: when the recent failure+timeout rate
        // exceeds the threshold, plan this iteration with expert DP
        // instead of the learned beam — recorded, never silent.
        let use_fallback = cfg.fallback_window > 0
            && window.len() >= cfg.fallback_window
            && window.iter().sum::<f64>() / window.len() as f64 > cfg.fallback_threshold;
        if use_fallback {
            stats.fallback_iterations += 1;
            eprintln!(
                "balsa: iteration {iter}: failure rate {:.3} over the last {} iterations \
                 exceeds {:.3}; planning with the expert DP fallback",
                window.iter().sum::<f64>() / window.len() as f64,
                window.len(),
                cfg.fallback_threshold
            );
        }
        // Linear epsilon decay: full exploration early, pure greed last.
        let epsilon = if cfg.iterations > 1 {
            cfg.epsilon * (1.0 - (iter - 1) as f64 / (cfg.iterations - 1) as f64)
        } else {
            cfg.epsilon
        };
        // (a) Plan every training query on the worker pool. Each query's
        // exploration RNG is seeded by (seed, iteration, query id) inside
        // the beam, and results come back in split order, so this is
        // bit-identical to the serial loop for any thread count — and
        // swapping the beam for the DP fallback consumes nothing from the
        // master RNG stream either way.
        let model_ref: &dyn ValueModel = &*model;
        let planned_res: Vec<PlannedOrErr> = if use_fallback {
            let expert = ExpertCostModel::new(db.clone(), profile.weights);
            pool.map_init(
                &split.train,
                || DpPlanner::new(db, &expert, &est, cfg.mode).with_budget(cfg.plan_budget),
                |planner, _, &qi| planner.try_plan(&workload.queries[qi]),
            )
        } else {
            pool.map(&split.train, |_, &qi| {
                let q = &workload.queries[qi];
                let scorer = LearnedScorer::new(&featurizer, model_ref, &est);
                BeamPlanner::new(db, &scorer, cfg.mode, cfg.beam_width)
                    .with_budget(cfg.plan_budget)
                    .with_exploration(epsilon, cfg.seed ^ ((iter as u64) << 44))
                    .try_plan(q)
            })
        };
        // Planner errors (only possible for queries with no plan at
        // all) drop the query from this iteration — surfaced on stderr
        // and counted, never silently masked. `train_idx` keeps the
        // surviving (query, plan) pairs aligned in split order.
        let mut iter_res = ResilienceStats::default();
        let mut train_idx: Vec<usize> = Vec::with_capacity(split.train.len());
        let mut planned = Vec::with_capacity(split.train.len());
        for (&qi, res) in split.train.iter().zip(planned_res) {
            match res {
                Ok(p) => {
                    if p.stats.degraded_levels > 0 {
                        iter_res.planner_degraded += 1;
                    }
                    if p.stats.budget_exhausted {
                        iter_res.planner_exhausted += 1;
                    }
                    train_idx.push(qi);
                    planned.push(p);
                }
                Err(e) => {
                    iter_res.planner_errors += 1;
                    eprintln!("balsa: iteration {iter}: {e}; skipping query");
                }
            }
        }
        // The clock advances by the phase's parallel makespan, not the
        // serial sum — planning wall-clock is what the paper charges.
        let plan_secs: Vec<f64> = planned.iter().map(|p| p.planning_secs).collect();
        env.charge_planning_parallel(&plan_secs, pool.threads());

        // (b) Execute on the execution pool, each query under the retry
        // policy. Budgets are precomputed: each query appears once per
        // iteration, so its budget depends only on prior iterations and
        // matches the serial loop's. Latencies, labels, fault draws
        // (stateless, keyed), and cache decisions are deterministic per
        // (query, plan, attempt) and the keys are distinct within the
        // batch, so any thread count observes the serial outcomes;
        // results fold back in split order and the clock is charged the
        // batch's parallel makespan once.
        let budgets: Vec<Option<f64>> = train_idx
            .iter()
            .map(|qi| best_lat.get(qi).map(|b| b * cfg.timeout_factor))
            .collect();
        let jobs: Vec<usize> = (0..train_idx.len()).collect();
        let t_exec = Instant::now();
        let executed = exec_pool.map(&jobs, |_, &j| {
            let q = &workload.queries[train_idx[j]];
            let t0 = Instant::now();
            let r = env
                .execute_labeled_retry_uncharged(q, &planned[j].plan, budgets[j], &cfg.retry)
                .expect("plan must be executable");
            (r, t0.elapsed().as_secs_f64())
        });
        breakdown.truecard_secs += t_exec.elapsed().as_secs_f64();
        if exec_pool.threads().min(jobs.len()) > 1 {
            breakdown.truecard_jobs += jobs.len();
        }
        let mut lats = Vec::with_capacity(train_idx.len());
        let mut timeouts = 0usize;
        let mut charged = Vec::with_capacity(train_idx.len());
        let mut label_jobs: Vec<(usize, Vec<SubtreeObs>)> = Vec::with_capacity(train_idx.len());
        for (&qi, (report, job_secs)) in train_idx.iter().zip(executed) {
            breakdown.truecard_job_secs += job_secs;
            iter_res.merge(&report.stats);
            // Wasted attempts + the final attempt occupy this query's
            // execution slot; cache hits cost nothing, exactly as in
            // `execute`. Fault-free this is the fresh latency alone.
            if report.exec_secs > 0.0 {
                charged.push(report.exec_secs);
            }
            // A `None` outcome was dropped after exhausting retries: no
            // label, no latency observation; counted in `abandoned`.
            if let Some((outcome, labels)) = report.outcome {
                if outcome.timed_out {
                    timeouts += 1;
                } else {
                    let e = best_lat.entry(qi).or_insert(f64::INFINITY);
                    *e = e.min(outcome.latency_secs);
                }
                lats.push(outcome.latency_secs);
                label_jobs.push((qi, labels));
            }
        }
        env.charge_execution_batch(&charged);
        // Backoff waits are wall the training run really spends sitting
        // idle before a retry — charged raw (the retrying slot cannot
        // overlap its own backoff). Zero, and bit-neutral, fault-free.
        env.charge_raw(iter_res.backoff_secs_charged);
        if cfg.fallback_window > 0 {
            // Planner errors count as failures: a query that could not
            // even plan is as failed as one that timed out.
            window.push(
                (timeouts as f64 + iter_res.abandoned as f64 + iter_res.planner_errors as f64)
                    / split.train.len() as f64,
            );
            if window.len() > cfg.fallback_window {
                window.remove(0);
            }
        }

        // (c) Featurize all subtree labels on the pool, (d) record into
        // the buffer serially in the same (query, subtree) order as the
        // serial loop — the experience stream is order-sensitive
        // (dedup/best-label retention), the featurization is pure.
        let t_feat = Instant::now();
        let featurized = pool.map(&label_jobs, |_, (qi, labels)| {
            let q = &workload.queries[*qi];
            let qk = query_key(q);
            let memo = MemoEstimator::new(&est);
            labels
                .iter()
                .map(|l| Experience {
                    query_key: qk,
                    // Frozen key — see `record_sim_labels`.
                    fingerprint: l.plan.canonical_hash(),
                    features: featurizer.featurize_enc(enc, q, &l.plan, &memo),
                    plan: l.plan.clone(),
                    label_secs: l.latency_secs,
                    censored: l.censored,
                    source: LabelSource::Real,
                })
                .collect::<Vec<_>>()
        });
        breakdown.featurize_secs += t_feat.elapsed().as_secs_f64();
        for exps in featurized {
            for e in exps {
                buffer.record(e);
            }
        }
        // The residual wrapper subtracts the frozen base's predictions
        // and fits only the correction.
        let report = model.fit(
            buffer.train_set(LabelSource::Real),
            &cfg.finetune_sgd,
            &mut rng,
        );
        env.charge_update(report.steps);
        breakdown.forward_secs += report.forward_secs;
        breakdown.backward_secs += report.backward_secs;

        let (test_median, val_median, val_geo) = eval_point(&*model);
        if val_geo < best_val || best_val.is_nan() {
            best_val = val_geo;
            best_model = model.clone_box();
            best_is_residual = true;
        }
        stats.merge(&iter_res);
        trajectory.push(IterationStats {
            iteration: iter,
            sim_hours: env.elapsed_secs() / 3600.0,
            train_median_secs: median(&lats),
            test_median_secs: test_median,
            timeouts,
            buffer_real: buffer.count(LabelSource::Real),
            buffer_sim: buffer.count(LabelSource::Simulated),
            fit_mse: report.mse,
            val_median_secs: val_median,
            val_geo_mean_secs: val_geo,
            faults: iter_res.faults_injected,
            retries: iter_res.retries,
            abandoned: iter_res.abandoned,
            fallback: use_fallback,
        });

        if cfg.checkpoint_every > 0 && iter % cfg.checkpoint_every == 0 {
            if let Some(path) = &cfg.checkpoint_path {
                let mut best_lat_sorted: Vec<(usize, f64)> =
                    best_lat.iter().map(|(&k, &v)| (k, v)).collect();
                best_lat_sorted.sort_by_key(|&(k, _)| k);
                let data = CheckpointData {
                    cfg_fingerprint: cfg_fp,
                    iteration: iter,
                    rng_state: rng.state(),
                    model_state: model.state_vec(),
                    best_is_residual,
                    best_model_state: best_model.state_vec(),
                    best_val,
                    best_lat: best_lat_sorted,
                    fallback_window: window.clone(),
                    buffer: buffer
                        .sorted_entries()
                        .iter()
                        .map(|e| BufferEntry {
                            query_key: e.query_key,
                            fingerprint: e.fingerprint,
                            plan: e.plan.encode_compact(),
                            label_secs: e.label_secs,
                            censored: e.censored,
                            source: e.source,
                        })
                        .collect(),
                    env: env.snapshot(),
                    trajectory: trajectory.clone(),
                    resilience: stats,
                };
                data.save_atomic(path)
                    .unwrap_or_else(|e| panic!("checkpoint write {}: {e}", path.display()));
            }
        }
        // Test hook: the process "dies" right after this iteration's
        // checkpoint hit disk.
        if cfg.halt_after == Some(iter) {
            break;
        }
    }

    TrainOutcome {
        model: best_model,
        trajectory,
        buffer,
        breakdown,
        resilience: stats,
    }
}
