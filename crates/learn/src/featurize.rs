//! Featurization of `(query, partial plan)` states (§7).
//!
//! A [`Featurizer`] maps any subplan of any query over one database to a
//! fixed-length vector, the input of the value model. Channels follow
//! the paper's §7 state encoding, adapted to a linear model:
//!
//! * **table one-hots** — per catalog table, how many of the query's
//!   aliased references the subplan covers, and the same for the whole
//!   query (so the model sees both "where am I" and "where must I end
//!   up");
//! * **selectivity channels** — per catalog table, the summed estimated
//!   filter selectivity of the *query's* references (the paper's
//!   query-level `[table → selectivity]` vector; plan-independent);
//! * **join-graph edges** — per unordered catalog-table pair, how many
//!   equi-join edges the subplan has absorbed and how many the query has
//!   in total;
//! * **cardinality and cost channels** — log-scaled estimated output
//!   cardinality, `C_out` so far, and expert physical cost of the
//!   subplan;
//! * **operator and shape channels** — join/scan operator counts, tree
//!   depth, plan shape, and the engine mode (bushy hints or not).
//!
//! Besides the **flat** encoding above (one vector per state, consumed
//! by the linear model), the featurizer emits the **tree** encoding for
//! the §6 tree-convolution network: per-node feature rows
//! ([`Featurizer::node_features`] — operator one-hots, output/input
//! log-cardinalities, selectivity, own operator work, table coverage)
//! in the binary-tree tensor layout ([`Featurizer::featurize_tree`]).
//! [`FlatState`] is the flat encoding's incremental form: scan states
//! start the chain and [`Featurizer::flat_join_state`] composes a
//! join's vector from its children in O(tables + edges), bit-identical
//! to a from-scratch featurization — the beam's O(1) scoring hook.
//!
//! Features are a pure function of `(query, plan, estimates)`: two
//! fingerprint-equal subplans of the same query always featurize
//! identically, and the vector length is constant across queries — the
//! invariants the training loop relies on for experience dedup.

use crate::model::FeatureEncoding;
use crate::treeconv::encode_tree;
use balsa_card::CardEstimator;
use balsa_cost::{join_cost, physical_cost, scan_cost, OpWeights, SubtreeCost};
use balsa_query::{JoinOp, Plan, PlanShape, Query, ScanOp};
use balsa_storage::Database;
use std::sync::Arc;

/// Number of scalar (non-per-table, non-per-pair) channels.
const SCALAR_CHANNELS: usize = 17;

/// Number of non-per-table channels in the per-node encoding.
const NODE_SCALAR_CHANNELS: usize = 13;

/// Maps `(query, partial plan)` states to fixed-length feature vectors.
pub struct Featurizer {
    db: Arc<Database>,
    weights: OpWeights,
    bushy_engine: bool,
    num_tables: usize,
}

impl Featurizer {
    /// Creates a featurizer for `db`, using `weights` for the expert
    /// cost channel and `bushy_engine` as the engine-mode channel.
    pub fn new(db: Arc<Database>, weights: OpWeights, bushy_engine: bool) -> Self {
        let num_tables = db.catalog().num_tables();
        Self {
            db,
            weights,
            bushy_engine,
            num_tables,
        }
    }

    /// Number of unordered catalog-table pairs.
    fn num_pairs(&self) -> usize {
        self.num_tables * (self.num_tables.saturating_sub(1)) / 2
    }

    /// The (constant) feature-vector length.
    pub fn dim(&self) -> usize {
        3 * self.num_tables + 2 * self.num_pairs() + SCALAR_CHANNELS
    }

    /// Index of the unordered pair `(a, b)` in the edge channels.
    fn pair_index(&self, a: usize, b: usize) -> usize {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        // Row-major upper triangle: pairs (0,1..T), (1,2..T), ...
        lo * self.num_tables - lo * (lo + 1) / 2 + (hi - lo - 1)
    }

    /// Featurizes subplan `plan` of `query`, reading cardinalities and
    /// selectivities from `est`. Pure: identical inputs give identical
    /// vectors.
    pub fn featurize(&self, query: &Query, plan: &Plan, est: &dyn CardEstimator) -> Vec<f64> {
        let t = self.num_tables;
        let p = self.num_pairs();
        let mut x = vec![0.0; self.dim()];
        let mask = plan.mask();

        // Per-table coverage and selectivity channels.
        for (qt, qtab) in query.tables.iter().enumerate() {
            let tid = qtab.table;
            let sel = est.selectivity(query, qt);
            x[t + tid] += 1.0; // query reference count
            x[2 * t + tid] += sel;
            if mask.contains(qt) {
                x[tid] += 1.0; // plan coverage count
            }
        }

        // Join-graph edge channels (plan-absorbed and query-total).
        for e in &query.joins {
            let ta = query.tables[e.left_qt].table;
            let tb = query.tables[e.right_qt].table;
            if ta == tb {
                continue; // self-join pair has no off-diagonal slot
            }
            let pi = self.pair_index(ta, tb);
            if mask.contains(e.left_qt) && mask.contains(e.right_qt) {
                x[3 * t + pi] += 1.0;
            }
            x[3 * t + p + pi] += 1.0;
        }

        // Cardinality and cost channels (log-scaled). Besides the totals
        // (`C_out`, expert cost), the *bottleneck* channels — the largest
        // estimated intermediate and the most expensive single operator —
        // carry most of the latency signal. Accumulated bottom-up in the
        // same association order as the incremental composition
        // ([`Featurizer::flat_join_state`]), so composed and from-scratch
        // vectors are bit-identical.
        let base = 3 * t + 2 * p;
        let out_card = est.cardinality(query, mask).max(0.0);
        let (cout, max_card) = self.card_channels(query, plan, est);
        let mut nodes = Vec::new();
        let expert = physical_cost(&self.db, query, plan, est, &self.weights, Some(&mut nodes));
        let max_node_work = nodes.iter().map(|n| n.work).fold(0.0f64, f64::max);
        x[base] = out_card.ln_1p();
        x[base + 1] = cout.ln_1p();
        x[base + 2] = expert.max(0.0).ln_1p();
        x[base + 15] = max_card.ln_1p();
        x[base + 16] = max_node_work.max(0.0).ln_1p();

        // Operator, shape, and progress channels.
        let (h, m, nl) = plan.join_op_counts();
        let (seq, idx) = plan.scan_op_counts();
        let n_query = query.num_tables() as f64;
        x[base + 3] = plan.num_tables() as f64 / n_query.max(1.0);
        x[base + 4] = plan.num_joins() as f64 / 16.0;
        x[base + 5] = h as f64 / 16.0;
        x[base + 6] = m as f64 / 16.0;
        x[base + 7] = nl as f64 / 16.0;
        x[base + 8] = seq as f64 / 16.0;
        x[base + 9] = idx as f64 / 16.0;
        x[base + 10] = plan.depth() as f64 / 16.0;
        let shape = plan.shape();
        x[base + 11] = (shape == PlanShape::LeftDeep) as u8 as f64;
        x[base + 12] = (shape == PlanShape::Bushy) as u8 as f64;
        x[base + 13] = self.bushy_engine as u8 as f64;
        x[base + 14] = 1.0; // bias channel
        x
    }

    /// `(C_out, max intermediate)` of a subtree, accumulated children
    /// first (`left + right + own`) so composition reproduces it exactly.
    fn card_channels(&self, query: &Query, plan: &Plan, est: &dyn CardEstimator) -> (f64, f64) {
        let own = est.cardinality(query, plan.mask()).max(0.0);
        match plan {
            Plan::Scan { .. } => (own, own),
            Plan::Join { left, right, .. } => {
                let (lc, lm) = self.card_channels(query, left, est);
                let (rc, rm) = self.card_channels(query, right, est);
                (lc + rc + own, lm.max(rm).max(own))
            }
        }
    }

    /// Encodes `plan` under `enc` — the dispatch point for model-specific
    /// state encodings.
    pub fn featurize_enc(
        &self,
        enc: FeatureEncoding,
        query: &Query,
        plan: &Plan,
        est: &dyn CardEstimator,
    ) -> Vec<f64> {
        match enc {
            FeatureEncoding::Flat => self.featurize(query, plan, est),
            FeatureEncoding::Tree => self.featurize_tree(query, plan, est),
        }
    }

    /// The per-node encoding dimension of the tree-tensor layout.
    pub fn node_dim(&self) -> usize {
        NODE_SCALAR_CHANNELS + self.num_tables
    }

    /// Featurizes ONE plan node (not its subtree): operator one-hots,
    /// leaf flag, coverage, log-cardinality and selectivity of the
    /// node's output, input cardinalities, the node's own estimated
    /// operator work, and per-catalog-table coverage counts. This is the
    /// per-node row of the §6 tree-convolution input — everything is
    /// O(tables + edges) per node, so incremental beam scoring stays
    /// O(1) in the subtree size.
    pub fn node_features(&self, query: &Query, node: &Plan, est: &dyn CardEstimator) -> Vec<f64> {
        let mut x = vec![0.0; self.node_dim()];
        match node {
            Plan::Join {
                op, left, right, ..
            } => {
                let slot = match op {
                    JoinOp::Hash => 0,
                    JoinOp::Merge => 1,
                    JoinOp::NestLoop => 2,
                };
                x[slot] = 1.0;
                // Input cardinalities and this operator's own estimated
                // work. The children's summaries are synthesized from
                // their output cardinalities alone (no sort orders, zero
                // accumulated work), so this is the node's marginal work
                // with merge sorts always paid — an O(1) approximation of
                // the expert's per-node cost channel.
                let lcard = est.cardinality(query, left.mask()).max(0.0);
                let rcard = est.cardinality(query, right.mask()).max(0.0);
                let bare = |rows: f64| SubtreeCost {
                    work: 0.0,
                    out_rows: rows,
                    sorted_on: Vec::new(),
                };
                let sc = join_cost(
                    &self.db,
                    query,
                    *op,
                    left,
                    &bare(lcard),
                    right,
                    &bare(rcard),
                    est,
                    &self.weights,
                );
                x[10] = lcard.ln_1p();
                x[11] = rcard.ln_1p();
                x[12] = sc.work.max(0.0).ln_1p();
            }
            Plan::Scan { qt, op } => {
                let slot = match op {
                    ScanOp::Seq => 3,
                    ScanOp::Index => 4,
                };
                x[slot] = 1.0;
                x[5] = 1.0; // leaf flag
                let sc = scan_cost(&self.db, query, *qt as usize, *op, est, &self.weights);
                x[12] = sc.work.max(0.0).ln_1p();
            }
        }
        let mask = node.mask();
        x[6] = node.num_tables() as f64 / query.num_tables().max(1) as f64;
        x[7] = est.cardinality(query, mask).max(0.0).ln_1p();
        for (qt, qtab) in query.tables.iter().enumerate() {
            if mask.contains(qt) {
                x[8] += est.selectivity(query, qt);
                x[NODE_SCALAR_CHANNELS + qtab.table] += 1.0;
            }
        }
        x[9] = 1.0; // bias channel
        x
    }

    /// Encodes `plan` in the flat binary-tree tensor layout consumed by
    /// [`crate::TreeConvValueModel`]: per-node feature rows in post-order
    /// plus child indices ([`crate::treeconv::encode_tree`]). Pure, like
    /// [`Featurizer::featurize`].
    pub fn featurize_tree(&self, query: &Query, plan: &Plan, est: &dyn CardEstimator) -> Vec<f64> {
        let mut feats = Vec::new();
        let mut children = Vec::new();
        plan.visit_tensor(&mut |node, kids| {
            feats.push(self.node_features(query, node, est));
            children.push(kids);
        });
        encode_tree(&feats, &children)
    }

    /// Incremental flat-encoding state for a scan leaf — the start of the
    /// O(1)-per-join composition chain ([`Featurizer::flat_join_state`]).
    pub fn flat_scan_state(
        &self,
        query: &Query,
        scan: &Plan,
        est: &dyn CardEstimator,
    ) -> FlatState {
        let (qt, op) = match scan {
            Plan::Scan { qt, op } => (*qt as usize, *op),
            Plan::Join { .. } => panic!("flat_scan_state on a join"),
        };
        let x = self.featurize(query, scan, est);
        let card = est.cardinality(query, scan.mask()).max(0.0);
        let expert = scan_cost(&self.db, query, qt, op, est, &self.weights);
        FlatState {
            max_node_work: expert.work,
            x,
            cout: card,
            max_card: card,
            expert,
            depth: 1,
            left_deep: true,
            right_deep: true,
            is_leaf: true,
        }
    }

    /// Composes the flat-encoding state of a join from its children's
    /// states without re-walking the subtree: O(tables + edges) per
    /// candidate instead of O(subtree). Produces a vector bit-identical
    /// to [`Featurizer::featurize`] on the same join.
    pub fn flat_join_state(
        &self,
        query: &Query,
        join: &Plan,
        l: &FlatState,
        r: &FlatState,
        est: &dyn CardEstimator,
    ) -> FlatState {
        let (op, left, right, mask) = match join {
            Plan::Join {
                op,
                left,
                right,
                mask,
                ..
            } => (*op, left, right, *mask),
            Plan::Scan { .. } => panic!("flat_join_state on a scan"),
        };
        let t = self.num_tables;
        let p = self.num_pairs();
        let base = 3 * t + 2 * p;

        // Query-level channels (x[t..3t], query-total edges, engine mode,
        // bias) carry over from either child; start from the left's.
        let mut x = l.x.clone();

        // Plan coverage counts add.
        for (tid, slot) in x.iter_mut().enumerate().take(t) {
            *slot = l.x[tid] + r.x[tid];
        }
        // Absorbed join-graph edges: recompute against the joined mask
        // (O(edges); identical accumulation to `featurize`).
        for slot in &mut x[3 * t..3 * t + p] {
            *slot = 0.0;
        }
        for e in &query.joins {
            let ta = query.tables[e.left_qt].table;
            let tb = query.tables[e.right_qt].table;
            if ta == tb {
                continue;
            }
            if mask.contains(e.left_qt) && mask.contains(e.right_qt) {
                x[3 * t + self.pair_index(ta, tb)] += 1.0;
            }
        }

        // Cardinality and cost channels, composed in the same association
        // order as `featurize`'s bottom-up accumulation.
        let out_card = est.cardinality(query, mask).max(0.0);
        let cout = l.cout + r.cout + out_card;
        let max_card = l.max_card.max(r.max_card).max(out_card);
        let expert = join_cost(
            &self.db,
            query,
            op,
            left,
            &l.expert,
            right,
            &r.expert,
            est,
            &self.weights,
        );
        let node_work = expert.work - l.expert.work - r.expert.work;
        let max_node_work = l.max_node_work.max(r.max_node_work).max(node_work);
        x[base] = out_card.ln_1p();
        x[base + 1] = cout.ln_1p();
        x[base + 2] = expert.work.max(0.0).ln_1p();
        x[base + 15] = max_card.ln_1p();
        x[base + 16] = max_node_work.max(0.0).ln_1p();

        // Operator, shape, and progress channels. Counts divide by 16
        // (exact dyadic), so sums of children's channels equal the
        // from-scratch counts.
        let n_query = query.num_tables() as f64;
        let num_tables = mask.count();
        x[base + 3] = num_tables as f64 / n_query.max(1.0);
        x[base + 4] = num_tables.saturating_sub(1) as f64 / 16.0;
        for c in 5..=9 {
            x[base + c] = l.x[base + c] + r.x[base + c];
        }
        let op_slot = match op {
            JoinOp::Hash => 5,
            JoinOp::Merge => 6,
            JoinOp::NestLoop => 7,
        };
        x[base + op_slot] += 1.0 / 16.0;
        let depth = l.depth.max(r.depth) + 1;
        x[base + 10] = depth as f64 / 16.0;
        // Shape flags compose exactly like `Plan::shape`'s recursion:
        // left-deep when the right child is a leaf atop a left-deep
        // spine; bushy when neither deep form holds (left-deep wins when
        // both hold, as in `PlanShape`).
        let left_deep = r.is_leaf && l.left_deep;
        let right_deep = l.is_leaf && r.right_deep;
        x[base + 11] = left_deep as u8 as f64;
        x[base + 12] = (!left_deep && !right_deep) as u8 as f64;

        FlatState {
            x,
            cout,
            max_card,
            max_node_work,
            expert,
            depth,
            left_deep,
            right_deep,
            is_leaf: false,
        }
    }

    /// Builds a [`FlatState`] for an arbitrary subtree from scratch (the
    /// fallback when no composed child states are available).
    pub fn flat_state(&self, query: &Query, plan: &Plan, est: &dyn CardEstimator) -> FlatState {
        match plan {
            Plan::Scan { .. } => self.flat_scan_state(query, plan, est),
            Plan::Join { left, right, .. } => {
                let l = self.flat_state(query, left, est);
                let r = self.flat_state(query, right, est);
                self.flat_join_state(query, plan, &l, &r, est)
            }
        }
    }
}

/// The incremental state of the flat encoding for one subtree: the
/// feature vector itself plus the compositional scalars the next join up
/// needs. Threaded through beam search via the
/// [`balsa_cost::ScoredTree::ext`] child hook, it turns per-candidate
/// featurization from O(subtree) into O(1).
#[derive(Debug, Clone)]
pub struct FlatState {
    /// The subtree's flat feature vector (equals
    /// [`Featurizer::featurize`] exactly).
    pub x: Vec<f64>,
    /// Summed estimated cardinality over all nodes (`C_out`).
    cout: f64,
    /// Largest estimated intermediate cardinality.
    max_card: f64,
    /// Most expensive single operator (expert work).
    max_node_work: f64,
    /// Expert physical summary of the subtree (compositional).
    expert: SubtreeCost,
    /// Tree height.
    depth: u32,
    /// Whether every join's right input (so far) is a base table.
    left_deep: bool,
    /// Whether every join's left input (so far) is a base table.
    right_deep: bool,
    /// Whether this subtree is a single scan.
    is_leaf: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use balsa_card::HistogramEstimator;
    use balsa_query::workloads::job_workload;
    use balsa_query::{JoinOp, ScanOp};
    use balsa_storage::{mini_imdb, DataGenConfig};

    fn fixture() -> (Arc<Database>, balsa_query::Workload) {
        let db = Arc::new(mini_imdb(DataGenConfig {
            scale: 0.02,
            ..Default::default()
        }));
        let w = job_workload(db.catalog(), 7);
        (db, w)
    }

    #[test]
    fn pair_index_is_a_bijection() {
        let (db, _) = fixture();
        let f = Featurizer::new(db, OpWeights::postgres_like(), true);
        let t = f.num_tables;
        let mut seen = vec![false; f.num_pairs()];
        for a in 0..t {
            for b in (a + 1)..t {
                let i = f.pair_index(a, b);
                assert_eq!(i, f.pair_index(b, a), "order-independent");
                assert!(!seen[i], "pair ({a},{b}) collides at {i}");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn length_is_stable_across_queries_and_subplans() {
        let (db, w) = fixture();
        let f = Featurizer::new(db.clone(), OpWeights::postgres_like(), true);
        let est = HistogramEstimator::new(&db);
        let d = f.dim();
        for q in w.queries.iter().take(10) {
            let full = Plan::scan(0, ScanOp::Seq);
            assert_eq!(f.featurize(q, &full, &est).len(), d, "{}", q.name);
            // A two-table join subplan, when the graph allows one.
            if let Some(e) = q.joins.first() {
                let j = Plan::join(
                    JoinOp::Hash,
                    Plan::scan(e.left_qt, ScanOp::Seq),
                    Plan::scan(e.right_qt, ScanOp::Seq),
                );
                assert_eq!(f.featurize(q, &j, &est).len(), d);
            }
        }
    }

    #[test]
    fn fingerprint_equal_subplans_featurize_identically() {
        let (db, w) = fixture();
        let f = Featurizer::new(db.clone(), OpWeights::postgres_like(), true);
        let est = HistogramEstimator::new(&db);
        let q = w.queries.iter().find(|q| q.num_tables() >= 3).unwrap();
        let e = q.joins[0];
        let build = || {
            Plan::join(
                JoinOp::Merge,
                Plan::scan(e.left_qt, ScanOp::Seq),
                Plan::scan(e.right_qt, ScanOp::Index),
            )
        };
        let (a, b) = (build(), build());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(f.featurize(q, &a, &est), f.featurize(q, &b, &est));
    }

    #[test]
    fn features_distinguish_operators_and_coverage() {
        let (db, w) = fixture();
        let f = Featurizer::new(db.clone(), OpWeights::postgres_like(), true);
        let est = HistogramEstimator::new(&db);
        let q = w.queries.iter().find(|q| q.num_tables() >= 3).unwrap();
        let e = q.joins[0];
        let hash = Plan::join(
            JoinOp::Hash,
            Plan::scan(e.left_qt, ScanOp::Seq),
            Plan::scan(e.right_qt, ScanOp::Seq),
        );
        let merge = Plan::join(
            JoinOp::Merge,
            Plan::scan(e.left_qt, ScanOp::Seq),
            Plan::scan(e.right_qt, ScanOp::Seq),
        );
        assert_ne!(f.featurize(q, &hash, &est), f.featurize(q, &merge, &est));
        let leaf = Plan::scan(e.left_qt, ScanOp::Seq);
        assert_ne!(f.featurize(q, &hash, &est), f.featurize(q, &leaf, &est));
    }

    /// The O(1) composition chain ([`Featurizer::flat_join_state`])
    /// produces vectors **bit-identical** to from-scratch featurization,
    /// across random plans of both shapes — the invariant that lets the
    /// beam's incremental scoring path replace per-candidate re-walks.
    #[test]
    fn composed_flat_features_equal_from_scratch() {
        use balsa_search::{random_plan, SearchMode};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let (db, w) = fixture();
        let f = Featurizer::new(db.clone(), OpWeights::postgres_like(), true);
        let est = HistogramEstimator::new(&db);
        let mut rng = SmallRng::seed_from_u64(99);
        for q in w.queries.iter().take(12) {
            for mode in [SearchMode::Bushy, SearchMode::LeftDeep] {
                let plan = random_plan(&db, q, mode, &mut rng);
                // Compose bottom-up over every subtree and compare each
                // level against the from-scratch encode.
                fn check(
                    f: &Featurizer,
                    q: &balsa_query::Query,
                    p: &Plan,
                    est: &dyn balsa_card::CardEstimator,
                ) -> crate::featurize::FlatState {
                    let st = match p {
                        Plan::Scan { .. } => f.flat_scan_state(q, p, est),
                        Plan::Join { left, right, .. } => {
                            let l = check(f, q, left, est);
                            let r = check(f, q, right, est);
                            f.flat_join_state(q, p, &l, &r, est)
                        }
                    };
                    assert_eq!(
                        st.x,
                        f.featurize(q, p, est),
                        "{}: composed != scratch for {p}",
                        q.name
                    );
                    st
                }
                check(&f, q, &plan, &est);
            }
        }
    }

    /// The tree encoding is self-describing, sized `2 + n(2 + d)`, and
    /// its per-node rows match [`Featurizer::node_features`] in
    /// post-order.
    #[test]
    fn tree_encoding_layout_and_node_rows() {
        let (db, w) = fixture();
        let f = Featurizer::new(db.clone(), OpWeights::postgres_like(), true);
        let est = HistogramEstimator::new(&db);
        let q = w.queries.iter().find(|q| q.num_tables() >= 3).unwrap();
        let e = q.joins[0];
        let plan = Plan::join(
            JoinOp::Hash,
            Plan::scan(e.left_qt, ScanOp::Seq),
            Plan::scan(e.right_qt, ScanOp::Index),
        );
        let x = f.featurize_tree(q, &plan, &est);
        let d = f.node_dim();
        assert_eq!(x[0] as usize, 3);
        assert_eq!(x[1] as usize, d);
        assert_eq!(x.len(), 2 + 3 * (2 + d));
        let post = plan.subtrees_post_order();
        for (i, sub) in post.iter().enumerate() {
            let row = &x[2 + i * (2 + d) + 2..2 + i * (2 + d) + 2 + d];
            assert_eq!(row, &f.node_features(q, sub, &est)[..], "node {i}");
            assert!(row.iter().all(|v| v.is_finite()));
        }
        // Root child slots point at the two leaves.
        let root_rec = 2 + 2 * (2 + d);
        assert_eq!((x[root_rec], x[root_rec + 1]), (1.0, 2.0));
        // Operator one-hots distinguish scan kinds and the join.
        let seq = f.node_features(q, &post[0], &est);
        let idx = f.node_features(q, &post[1], &est);
        let join = f.node_features(q, &post[2], &est);
        assert_eq!((seq[3], seq[4], seq[5]), (1.0, 0.0, 1.0));
        assert_eq!((idx[3], idx[4], idx[5]), (0.0, 1.0, 1.0));
        assert_eq!((join[0], join[5]), (1.0, 0.0));
    }

    /// `featurize_enc` dispatches to the two encodings.
    #[test]
    fn featurize_enc_dispatch() {
        use crate::model::FeatureEncoding;
        let (db, w) = fixture();
        let f = Featurizer::new(db.clone(), OpWeights::postgres_like(), true);
        let est = HistogramEstimator::new(&db);
        let q = &w.queries[0];
        let p = Plan::scan(0, ScanOp::Seq);
        assert_eq!(
            f.featurize_enc(FeatureEncoding::Flat, q, &p, &est),
            f.featurize(q, &p, &est)
        );
        assert_eq!(
            f.featurize_enc(FeatureEncoding::Tree, q, &p, &est),
            f.featurize_tree(q, &p, &est)
        );
    }
}
