//! Featurization of `(query, partial plan)` states (§7).
//!
//! A [`Featurizer`] maps any subplan of any query over one database to a
//! fixed-length vector, the input of the value model. Channels follow
//! the paper's §7 state encoding, adapted to a linear model:
//!
//! * **table one-hots** — per catalog table, how many of the query's
//!   aliased references the subplan covers, and the same for the whole
//!   query (so the model sees both "where am I" and "where must I end
//!   up");
//! * **selectivity channels** — per catalog table, the summed estimated
//!   filter selectivity of the *query's* references (the paper's
//!   query-level `[table → selectivity]` vector; plan-independent);
//! * **join-graph edges** — per unordered catalog-table pair, how many
//!   equi-join edges the subplan has absorbed and how many the query has
//!   in total;
//! * **cardinality and cost channels** — log-scaled estimated output
//!   cardinality, `C_out` so far, and expert physical cost of the
//!   subplan;
//! * **operator and shape channels** — join/scan operator counts, tree
//!   depth, plan shape, and the engine mode (bushy hints or not).
//!
//! Features are a pure function of `(query, plan, estimates)`: two
//! fingerprint-equal subplans of the same query always featurize
//! identically, and the vector length is constant across queries — the
//! invariants the training loop relies on for experience dedup.

use balsa_card::CardEstimator;
use balsa_cost::{physical_cost, OpWeights};
use balsa_query::{Plan, PlanShape, Query};
use balsa_storage::Database;
use std::sync::Arc;

/// Number of scalar (non-per-table, non-per-pair) channels.
const SCALAR_CHANNELS: usize = 17;

/// Maps `(query, partial plan)` states to fixed-length feature vectors.
pub struct Featurizer {
    db: Arc<Database>,
    weights: OpWeights,
    bushy_engine: bool,
    num_tables: usize,
}

impl Featurizer {
    /// Creates a featurizer for `db`, using `weights` for the expert
    /// cost channel and `bushy_engine` as the engine-mode channel.
    pub fn new(db: Arc<Database>, weights: OpWeights, bushy_engine: bool) -> Self {
        let num_tables = db.catalog().num_tables();
        Self {
            db,
            weights,
            bushy_engine,
            num_tables,
        }
    }

    /// Number of unordered catalog-table pairs.
    fn num_pairs(&self) -> usize {
        self.num_tables * (self.num_tables.saturating_sub(1)) / 2
    }

    /// The (constant) feature-vector length.
    pub fn dim(&self) -> usize {
        3 * self.num_tables + 2 * self.num_pairs() + SCALAR_CHANNELS
    }

    /// Index of the unordered pair `(a, b)` in the edge channels.
    fn pair_index(&self, a: usize, b: usize) -> usize {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        // Row-major upper triangle: pairs (0,1..T), (1,2..T), ...
        lo * self.num_tables - lo * (lo + 1) / 2 + (hi - lo - 1)
    }

    /// Featurizes subplan `plan` of `query`, reading cardinalities and
    /// selectivities from `est`. Pure: identical inputs give identical
    /// vectors.
    pub fn featurize(&self, query: &Query, plan: &Plan, est: &dyn CardEstimator) -> Vec<f64> {
        let t = self.num_tables;
        let p = self.num_pairs();
        let mut x = vec![0.0; self.dim()];
        let mask = plan.mask();

        // Per-table coverage and selectivity channels.
        for (qt, qtab) in query.tables.iter().enumerate() {
            let tid = qtab.table;
            let sel = est.selectivity(query, qt);
            x[t + tid] += 1.0; // query reference count
            x[2 * t + tid] += sel;
            if mask.contains(qt) {
                x[tid] += 1.0; // plan coverage count
            }
        }

        // Join-graph edge channels (plan-absorbed and query-total).
        for e in &query.joins {
            let ta = query.tables[e.left_qt].table;
            let tb = query.tables[e.right_qt].table;
            if ta == tb {
                continue; // self-join pair has no off-diagonal slot
            }
            let pi = self.pair_index(ta, tb);
            if mask.contains(e.left_qt) && mask.contains(e.right_qt) {
                x[3 * t + pi] += 1.0;
            }
            x[3 * t + p + pi] += 1.0;
        }

        // Cardinality and cost channels (log-scaled). Besides the totals
        // (`C_out`, expert cost), the *bottleneck* channels — the largest
        // estimated intermediate and the most expensive single operator —
        // carry most of the latency signal.
        let base = 3 * t + 2 * p;
        let out_card = est.cardinality(query, mask).max(0.0);
        let mut cout = 0.0;
        let mut max_card = 0.0f64;
        plan.visit(&mut |node| {
            let c = est.cardinality(query, node.mask()).max(0.0);
            cout += c;
            max_card = max_card.max(c);
        });
        let mut nodes = Vec::new();
        let expert = physical_cost(&self.db, query, plan, est, &self.weights, Some(&mut nodes));
        let max_node_work = nodes.iter().map(|n| n.work).fold(0.0f64, f64::max);
        x[base] = out_card.ln_1p();
        x[base + 1] = cout.ln_1p();
        x[base + 2] = expert.max(0.0).ln_1p();
        x[base + 15] = max_card.ln_1p();
        x[base + 16] = max_node_work.max(0.0).ln_1p();

        // Operator, shape, and progress channels.
        let (h, m, nl) = plan.join_op_counts();
        let (seq, idx) = plan.scan_op_counts();
        let n_query = query.num_tables() as f64;
        x[base + 3] = plan.num_tables() as f64 / n_query.max(1.0);
        x[base + 4] = plan.num_joins() as f64 / 16.0;
        x[base + 5] = h as f64 / 16.0;
        x[base + 6] = m as f64 / 16.0;
        x[base + 7] = nl as f64 / 16.0;
        x[base + 8] = seq as f64 / 16.0;
        x[base + 9] = idx as f64 / 16.0;
        x[base + 10] = plan.depth() as f64 / 16.0;
        let shape = plan.shape();
        x[base + 11] = (shape == PlanShape::LeftDeep) as u8 as f64;
        x[base + 12] = (shape == PlanShape::Bushy) as u8 as f64;
        x[base + 13] = self.bushy_engine as u8 as f64;
        x[base + 14] = 1.0; // bias channel
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balsa_card::HistogramEstimator;
    use balsa_query::workloads::job_workload;
    use balsa_query::{JoinOp, ScanOp};
    use balsa_storage::{mini_imdb, DataGenConfig};

    fn fixture() -> (Arc<Database>, balsa_query::Workload) {
        let db = Arc::new(mini_imdb(DataGenConfig {
            scale: 0.02,
            ..Default::default()
        }));
        let w = job_workload(db.catalog(), 7);
        (db, w)
    }

    #[test]
    fn pair_index_is_a_bijection() {
        let (db, _) = fixture();
        let f = Featurizer::new(db, OpWeights::postgres_like(), true);
        let t = f.num_tables;
        let mut seen = vec![false; f.num_pairs()];
        for a in 0..t {
            for b in (a + 1)..t {
                let i = f.pair_index(a, b);
                assert_eq!(i, f.pair_index(b, a), "order-independent");
                assert!(!seen[i], "pair ({a},{b}) collides at {i}");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn length_is_stable_across_queries_and_subplans() {
        let (db, w) = fixture();
        let f = Featurizer::new(db.clone(), OpWeights::postgres_like(), true);
        let est = HistogramEstimator::new(&db);
        let d = f.dim();
        for q in w.queries.iter().take(10) {
            let full = Plan::scan(0, ScanOp::Seq);
            assert_eq!(f.featurize(q, &full, &est).len(), d, "{}", q.name);
            // A two-table join subplan, when the graph allows one.
            if let Some(e) = q.joins.first() {
                let j = Plan::join(
                    JoinOp::Hash,
                    Plan::scan(e.left_qt, ScanOp::Seq),
                    Plan::scan(e.right_qt, ScanOp::Seq),
                );
                assert_eq!(f.featurize(q, &j, &est).len(), d);
            }
        }
    }

    #[test]
    fn fingerprint_equal_subplans_featurize_identically() {
        let (db, w) = fixture();
        let f = Featurizer::new(db.clone(), OpWeights::postgres_like(), true);
        let est = HistogramEstimator::new(&db);
        let q = w.queries.iter().find(|q| q.num_tables() >= 3).unwrap();
        let e = q.joins[0];
        let build = || {
            Plan::join(
                JoinOp::Merge,
                Plan::scan(e.left_qt, ScanOp::Seq),
                Plan::scan(e.right_qt, ScanOp::Index),
            )
        };
        let (a, b) = (build(), build());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(f.featurize(q, &a, &est), f.featurize(q, &b, &est));
    }

    #[test]
    fn features_distinguish_operators_and_coverage() {
        let (db, w) = fixture();
        let f = Featurizer::new(db.clone(), OpWeights::postgres_like(), true);
        let est = HistogramEstimator::new(&db);
        let q = w.queries.iter().find(|q| q.num_tables() >= 3).unwrap();
        let e = q.joins[0];
        let hash = Plan::join(
            JoinOp::Hash,
            Plan::scan(e.left_qt, ScanOp::Seq),
            Plan::scan(e.right_qt, ScanOp::Seq),
        );
        let merge = Plan::join(
            JoinOp::Merge,
            Plan::scan(e.left_qt, ScanOp::Seq),
            Plan::scan(e.right_qt, ScanOp::Seq),
        );
        assert_ne!(f.featurize(q, &hash, &est), f.featurize(q, &merge, &est));
        let leaf = Plan::scan(e.left_qt, ScanOp::Seq);
        assert_ne!(f.featurize(q, &hash, &est), f.featurize(q, &leaf, &est));
    }
}
