//! Vectorized execution over row-id tuples.
//!
//! Intermediates are represented columnar: one `Vec<u32>` of base-table
//! row ids per participating query-table. Joins are always *evaluated*
//! as hash joins (build on the smaller input) regardless of the physical
//! operator a plan requests — the physical operator only affects the
//! *charged* work (see `balsa-cost::physical`). Multi-edge (cyclic) join
//! conditions are enforced by post-filtering on the remaining edges.

use balsa_query::{CmpOp, Predicate, Query, TableMask};
use balsa_storage::{Database, NULL_SENTINEL};
use std::collections::HashMap;

/// Hard cap on materialized intermediate rows. Queries on the synthetic
/// databases stay far below this; the cap guards against pathological
/// cross-product-like blowups.
pub const MAX_INTERMEDIATE_ROWS: usize = 50_000_000;

/// Error raised when an intermediate exceeds [`MAX_INTERMEDIATE_ROWS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overflow;

/// A materialized intermediate result: row-id tuples over `qts`.
#[derive(Debug, Clone)]
pub struct Intermediate {
    /// Participating query-tables, ascending.
    pub qts: Vec<u8>,
    /// One column of base-table row ids per entry of `qts`.
    pub cols: Vec<Vec<u32>>,
}

impl Intermediate {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.cols.first().map(Vec::len).unwrap_or(0)
    }

    /// Whether the intermediate has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mask of participating query-tables.
    pub fn mask(&self) -> TableMask {
        self.qts.iter().fold(TableMask::EMPTY, |m, &qt| {
            m.union(TableMask::single(qt as usize))
        })
    }

    /// Position of `qt` within this intermediate.
    fn pos(&self, qt: usize) -> usize {
        self.qts
            .iter()
            .position(|&x| x as usize == qt)
            .expect("qt not in intermediate")
    }

    /// Approximate memory footprint in tuple slots (rows × columns).
    pub fn slots(&self) -> usize {
        self.len() * self.cols.len().max(1)
    }
}

/// Evaluates a predicate against a value.
#[inline]
fn eval_pred(pred: &Predicate, v: i64) -> bool {
    if v == NULL_SENTINEL {
        // SQL semantics: predicates on NULL are not true.
        return false;
    }
    match pred {
        Predicate::Cmp(op, c) => match op {
            CmpOp::Eq => v == *c,
            CmpOp::Lt => v < *c,
            CmpOp::Le => v <= *c,
            CmpOp::Gt => v > *c,
            CmpOp::Ge => v >= *c,
        },
        Predicate::Between(lo, hi) => v >= *lo && v <= *hi,
        Predicate::InList(vs) => vs.contains(&v),
    }
}

/// Scans one base table, applying all of the query's filters on it.
pub fn scan_base(db: &Database, query: &Query, qt: usize) -> Intermediate {
    let tid = query.tables[qt].table;
    let table = db.table(tid);
    let filters: Vec<_> = query.filters_on(qt).collect();
    let mut ids: Vec<u32> = Vec::new();
    'rows: for row in 0..table.num_rows() {
        for f in &filters {
            if !eval_pred(&f.pred, table.value(row, f.col)) {
                continue 'rows;
            }
        }
        ids.push(row as u32);
    }
    Intermediate {
        qts: vec![qt as u8],
        cols: vec![ids],
    }
}

/// Hash-joins two intermediates on all query edges crossing them.
///
/// The first crossing edge is the hash key; remaining edges are verified
/// per candidate pair. Build side is the smaller input.
pub fn hash_join(
    db: &Database,
    query: &Query,
    a: &Intermediate,
    b: &Intermediate,
) -> Result<Intermediate, Overflow> {
    let edges = query.edges_between(a.mask(), b.mask());
    assert!(
        !edges.is_empty(),
        "no join edge between inputs (cross product)"
    );

    // Normalize so `build` is the smaller side.
    let (build, probe) = if a.len() <= b.len() { (a, b) } else { (b, a) };

    // Key extraction helpers: for an edge, which side holds which endpoint.
    let key_cols = |side: &Intermediate| -> Vec<(usize, usize, usize)> {
        // (column position in side, table id, column id) per edge
        edges
            .iter()
            .map(|e| {
                if side.mask().contains(e.left_qt) {
                    (
                        side.pos(e.left_qt),
                        query.tables[e.left_qt].table,
                        e.left_col,
                    )
                } else {
                    (
                        side.pos(e.right_qt),
                        query.tables[e.right_qt].table,
                        e.right_col,
                    )
                }
            })
            .collect()
    };
    let build_keys = key_cols(build);
    let probe_keys = key_cols(probe);

    // Value of edge k for row r of a side.
    #[inline]
    fn key_val(
        db: &Database,
        side: &Intermediate,
        keys: &[(usize, usize, usize)],
        k: usize,
        r: usize,
    ) -> i64 {
        let (pos, tid, col) = keys[k];
        db.table(tid).column(col).get(side.cols[pos][r] as usize)
    }

    // Build a hash table on the first edge key.
    let mut ht: HashMap<i64, Vec<u32>> = HashMap::with_capacity(build.len());
    for r in 0..build.len() {
        let v = key_val(db, build, &build_keys, 0, r);
        if v != NULL_SENTINEL {
            ht.entry(v).or_default().push(r as u32);
        }
    }

    let ncols = build.cols.len() + probe.cols.len();
    let mut out_qts: Vec<u8> = build.qts.iter().chain(probe.qts.iter()).copied().collect();
    let mut out_cols: Vec<Vec<u32>> = vec![Vec::new(); ncols];
    let mut out_rows = 0usize;

    for pr in 0..probe.len() {
        let v = key_val(db, probe, &probe_keys, 0, pr);
        if v == NULL_SENTINEL {
            continue;
        }
        let Some(matches) = ht.get(&v) else { continue };
        'cand: for &br in matches {
            // Verify remaining edges.
            for k in 1..edges.len() {
                let bv = key_val(db, build, &build_keys, k, br as usize);
                let pv = key_val(db, probe, &probe_keys, k, pr);
                if bv == NULL_SENTINEL || bv != pv {
                    continue 'cand;
                }
            }
            out_rows += 1;
            if out_rows > MAX_INTERMEDIATE_ROWS {
                return Err(Overflow);
            }
            for (c, col) in build.cols.iter().enumerate() {
                out_cols[c].push(col[br as usize]);
            }
            for (c, col) in probe.cols.iter().enumerate() {
                out_cols[build.cols.len() + c].push(col[pr]);
            }
        }
    }

    // Keep qts sorted with columns aligned.
    let mut order: Vec<usize> = (0..out_qts.len()).collect();
    order.sort_by_key(|&i| out_qts[i]);
    let out_qts_sorted: Vec<u8> = order.iter().map(|&i| out_qts[i]).collect();
    let out_cols_sorted: Vec<Vec<u32>> = order
        .iter()
        .map(|&i| std::mem::take(&mut out_cols[i]))
        .collect();
    out_qts = out_qts_sorted;

    Ok(Intermediate {
        qts: out_qts,
        cols: out_cols_sorted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use balsa_query::{Filter, JoinEdge, QueryTable};
    use balsa_storage::{mini_imdb, DataGenConfig};

    fn db() -> Database {
        mini_imdb(DataGenConfig {
            scale: 0.05,
            ..Default::default()
        })
    }

    fn title_mc_query(db: &Database) -> Query {
        let t = db.catalog().table_id("title").unwrap();
        let mc = db.catalog().table_id("movie_companies").unwrap();
        let movie_id = db.catalog().table(mc).column_id("movie_id").unwrap();
        Query {
            id: 0,
            name: "q".into(),
            template: 0,
            tables: vec![
                QueryTable {
                    table: t,
                    alias: "t".into(),
                },
                QueryTable {
                    table: mc,
                    alias: "mc".into(),
                },
            ],
            joins: vec![JoinEdge {
                left_qt: 0,
                left_col: 0,
                right_qt: 1,
                right_col: movie_id,
            }],
            filters: vec![],
        }
    }

    #[test]
    fn scan_without_filters_returns_all_rows() {
        let db = db();
        let q = title_mc_query(&db);
        let s = scan_base(&db, &q, 0);
        assert_eq!(s.len(), db.table(q.tables[0].table).num_rows());
    }

    #[test]
    fn scan_with_filter_matches_manual_count() {
        let db = db();
        let mut q = title_mc_query(&db);
        let year = db
            .catalog()
            .table(q.tables[0].table)
            .column_id("production_year")
            .unwrap();
        q.filters.push(Filter {
            qt: 0,
            col: year,
            pred: Predicate::Between(2000, 2010),
        });
        let s = scan_base(&db, &q, 0);
        let table = db.table(q.tables[0].table);
        let expect = (0..table.num_rows())
            .filter(|&r| (2000..=2010).contains(&table.value(r, year)))
            .count();
        assert_eq!(s.len(), expect);
    }

    #[test]
    fn fk_join_matches_child_count() {
        // Every movie_companies row joins exactly one title.
        let db = db();
        let q = title_mc_query(&db);
        let a = scan_base(&db, &q, 0);
        let b = scan_base(&db, &q, 1);
        let j = hash_join(&db, &q, &a, &b).unwrap();
        assert_eq!(j.len(), db.table(q.tables[1].table).num_rows());
        assert_eq!(j.qts, vec![0, 1]);
    }

    #[test]
    fn join_against_brute_force_on_tiny_data() {
        let db = mini_imdb(DataGenConfig {
            scale: 0.01,
            ..Default::default()
        });
        let q = title_mc_query(&db);
        let a = scan_base(&db, &q, 0);
        let b = scan_base(&db, &q, 1);
        let j = hash_join(&db, &q, &a, &b).unwrap();
        // Brute force count.
        let t = db.table(q.tables[0].table);
        let mc = db.table(q.tables[1].table);
        let movie_id = db
            .catalog()
            .table(q.tables[1].table)
            .column_id("movie_id")
            .unwrap();
        let mut brute = 0;
        for i in 0..t.num_rows() {
            for k in 0..mc.num_rows() {
                if t.value(i, 0) == mc.value(k, movie_id) {
                    brute += 1;
                }
            }
        }
        assert_eq!(j.len(), brute);
    }

    #[test]
    fn multi_edge_join_post_filters() {
        // Self-referencing cycle: join movie_link to title on BOTH
        // movie_id and linked_movie_id simultaneously -> only self-links.
        let db = db();
        let t = db.catalog().table_id("title").unwrap();
        let ml = db.catalog().table_id("movie_link").unwrap();
        let m_id = db.catalog().table(ml).column_id("movie_id").unwrap();
        let lm_id = db.catalog().table(ml).column_id("linked_movie_id").unwrap();
        let q = Query {
            id: 0,
            name: "cycle".into(),
            template: 0,
            tables: vec![
                QueryTable {
                    table: t,
                    alias: "t".into(),
                },
                QueryTable {
                    table: ml,
                    alias: "ml".into(),
                },
            ],
            joins: vec![
                JoinEdge {
                    left_qt: 0,
                    left_col: 0,
                    right_qt: 1,
                    right_col: m_id,
                },
                JoinEdge {
                    left_qt: 0,
                    left_col: 0,
                    right_qt: 1,
                    right_col: lm_id,
                },
            ],
            filters: vec![],
        };
        let a = scan_base(&db, &q, 0);
        let b = scan_base(&db, &q, 1);
        let j = hash_join(&db, &q, &a, &b).unwrap();
        let tbl = db.table(ml);
        let expect = (0..tbl.num_rows())
            .filter(|&r| tbl.value(r, m_id) == tbl.value(r, lm_id))
            .count();
        assert_eq!(j.len(), expect);
    }

    #[test]
    fn filtered_join_is_subset() {
        let db = db();
        let mut q = title_mc_query(&db);
        let year = db
            .catalog()
            .table(q.tables[0].table)
            .column_id("production_year")
            .unwrap();
        let a0 = scan_base(&db, &q, 0);
        let b = scan_base(&db, &q, 1);
        let full = hash_join(&db, &q, &a0, &b).unwrap();
        q.filters.push(Filter {
            qt: 0,
            col: year,
            pred: Predicate::Cmp(CmpOp::Ge, 2005),
        });
        let a1 = scan_base(&db, &q, 0);
        let filtered = hash_join(&db, &q, &a1, &b).unwrap();
        assert!(filtered.len() < full.len());
        assert!(!filtered.is_empty());
    }
}
